"""Trace replay — a scaled day of the campus trace through every provider.

Not a single paper figure, but the synthesis the paper motivates with
Fig 11: replay the diurnal trace (burst, decline, night rise) against
all four providers and compare cold starts, latency, and boot churn.
"""

import time

from repro.core import (
    FixedKeepAliveProvider,
    HistogramKeepAliveProvider,
    HotC,
    HotCConfig,
)
from repro.faas.platform import FaasPlatform
from repro.workloads import TracePattern, WorkloadGenerator, youtube_campus_trace
from repro.workloads.apps import default_catalog, qr_encoder_app

#: One trace minute replayed as 2 simulated seconds, 1% of the volume:
#: keeps the bench fast while preserving the burst/decline/rise shape.
SLOT_MS = 2_000.0
SCALE = 0.01
SEGMENT = (680, 820)  # covers the pre-burst level, T710 burst, and decline


def run_provider(name: str, seed: int = 0):
    factories = {
        "cold-boot": None,
        "hotc": lambda e: HotC(e, HotCConfig(control_interval_ms=10_000.0)),
        "fixed-15min": lambda e: FixedKeepAliveProvider(e),
        "histogram": HistogramKeepAliveProvider,
    }
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        provider_factory=factories[name],
        jitter_sigma=0.03,
    )
    spec = qr_encoder_app(name="svc", language="python")
    platform.deploy(spec)
    platform.sim.process(platform.engine.ensure_image(spec.image))
    platform.run()

    counts = youtube_campus_trace(seed=3).segment(*SEGMENT)
    pattern = TracePattern(counts, slot_ms=SLOT_MS, scale=SCALE)
    run_until = None
    if name == "hotc":
        platform.provider.start_control_loop()
        run_until = platform.sim.now + len(counts) * SLOT_MS + 120_000.0
    start = time.perf_counter()
    result = WorkloadGenerator(platform).run(pattern, "svc", run_until=run_until)
    if name == "hotc":
        platform.provider.stop_control_loop()
        platform.run()
    wall_s = time.perf_counter() - start
    return result, platform, wall_s


def run_all(seed: int = 0):
    return {
        name: run_provider(name, seed)
        for name in ("cold-boot", "hotc", "fixed-15min", "histogram")
    }


def test_bench_trace_replay(benchmark):
    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    stats = {}
    for name, (result, platform, wall_s) in outcomes.items():
        stats[name] = {
            "cold": result.total_cold(),
            "mean": result.mean_latency(),
            "boots": platform.engine.stats.boots,
            "requests": result.total_requests,
            "wall_s": wall_s,
        }
        print(
            f"  {name:<12} requests={stats[name]['requests']:>3} "
            f"cold={stats[name]['cold']:>3} mean={stats[name]['mean']:6.1f} ms "
            f"boots={stats[name]['boots']:>3} wall={wall_s:6.3f} s"
        )
    total_wall = sum(s["wall_s"] for s in stats.values())
    print(f"  {'total':<12} replay wall-clock = {total_wall:.3f} s")
    # Replay wall-clock is the end-to-end number the sim fast path
    # moves; each provider's scaled day must stay comfortably sub-minute.
    for name, provider_stats in stats.items():
        assert provider_stats["wall_s"] < 60.0, (name, provider_stats["wall_s"])

    # Everyone served the same trace.
    assert len({s["requests"] for s in stats.values()}) == 1
    # HotC: far fewer cold starts and far lower latency than cold-boot.
    assert stats["hotc"]["cold"] < 0.25 * stats["cold-boot"]["cold"]
    assert stats["hotc"]["mean"] < 0.5 * stats["cold-boot"]["mean"]
    # The keep-alive baselines fall between the two extremes.
    for baseline in ("fixed-15min", "histogram"):
        assert stats[baseline]["cold"] <= stats["cold-boot"]["cold"]
        assert stats["hotc"]["cold"] <= stats[baseline]["cold"] * 1.5
