"""Fig 9 — QR web application latency without and with HotC."""

import numpy as np

from repro.experiments import run_fig09


def test_bench_fig09(benchmark, render):
    figure = benchmark.pedantic(
        run_fig09, kwargs={"seed": 0, "requests": 40}, rounds=1, iterations=1
    )
    render(figure)

    table = figure.get_table("fig9-summary")
    default_col = dict(zip(table.column("metric"), table.column("default")))
    hotc_col = dict(zip(table.column("metric"), table.column("hotc")))

    # Paper: without HotC every request pays the runtime setup.
    assert default_col["cold starts"] == 40
    # With HotC only the first request per configuration is cold.
    assert hotc_col["cold starts"] == 3
    # Paper: latency drops dramatically once runtimes are pooled; the QR
    # transformation itself is ~60 ms.
    assert hotc_col["steady-state latency (ms)"] < 0.25 * default_col["mean latency (ms)"]
    assert 60 <= hotc_col["steady-state latency (ms)"] <= 120

    # Per-request series: HotC's early requests look like the default,
    # later ones are far below it.
    _, default_latency = figure.get_series("default-latency").as_arrays()
    _, hotc_latency = figure.get_series("hotc-latency").as_arrays()
    assert hotc_latency[0] > 0.7 * default_latency[0]          # first is cold
    assert np.mean(hotc_latency[10:]) < 0.3 * np.mean(default_latency[10:])
