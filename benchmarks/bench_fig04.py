"""Fig 4 — language cold/hot ratios and network-mode setup costs."""

from repro.experiments import run_fig04


def test_bench_fig04(benchmark, render):
    figure = benchmark.pedantic(
        run_fig04, kwargs={"seed": 0, "runs": 5}, rounds=1, iterations=1
    )
    render(figure)

    languages = figure.get_table("fig4ab-language-cold-hot")
    ratios = dict(zip(languages.column("language"), languages.column("cold/hot")))
    colds = dict(zip(languages.column("language"), languages.column("cold (ms)")))
    hots = dict(zip(languages.column("language"), languages.column("hot (ms)")))

    # Paper: Go cold execution is 3.06x its hot execution.
    assert 2.8 <= ratios["go"] <= 3.3
    # Paper: cold start doubles Java's already long execution (~1.07s hot).
    assert 1.8 <= ratios["java"] <= 2.3
    assert 900 <= hots["java"] <= 1_300
    # Java has the longest absolute times; Go the shortest hot run.
    assert colds["java"] == max(colds.values())
    assert hots["go"] == min(hots.values())

    networks = figure.get_table("fig4c-network-startup")
    setup = dict(zip(networks.column("mode"), networks.column("network setup (ms)")))
    # Paper: bridge/host close to none; container mode about half.
    assert abs(setup["bridge"] - setup["none"]) < 0.3 * setup["none"]
    assert 0.35 <= setup["container"] / setup["none"] <= 0.65
    # Paper: overlay up to 23x the multi-host host mode.
    assert 18 <= setup["overlay"] / setup["multihost-host"] <= 25
    assert setup["routing"] > 10 * setup["multihost-host"]
