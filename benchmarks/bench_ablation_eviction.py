"""Ablation — pool eviction strategies under a tight container cap.

The paper evicts the *oldest* live container.  With a skewed workload
(one hot runtime type, several cold ones) and a pool cap forcing
evictions, LRU should protect the hot type best, oldest-first is the
paper's simple default, and largest-first optimises memory rather than
hit ratio.
"""


from repro.core.hotc import HotC, HotCConfig
from repro.core.pool import PoolLimits
from repro.faas.platform import FaasPlatform
from repro.faas.function import FunctionSpec
from repro.workloads.apps import default_catalog


def run_strategy(eviction: str, seed: int = 0):
    config = HotCConfig(
        limits=PoolLimits(max_containers=3), eviction=eviction
    )
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        provider_factory=lambda engine: HotC(engine, config),
        jitter_sigma=0.0,
    )
    hot = FunctionSpec(name="hot", image="python:3.6", exec_ms=10)
    platform.deploy(hot)
    for index in range(4):
        platform.deploy(
            FunctionSpec(
                name=f"cold-{index}",
                image="python:3.6",
                exec_ms=10,
                env=(("VARIANT", str(index)),),
            )
        )
    platform.sim.process(platform.engine.ensure_image("python:3.6"))
    platform.run()

    # Skewed stream: the hot function between every cold one.
    delay = 0.0
    for cycle in range(12):
        platform.submit("hot", delay=delay)
        delay += 2_000.0
        platform.submit(f"cold-{cycle % 4}", delay=delay)
        delay += 2_000.0
    platform.run()
    return platform


def run_all(seed: int = 0):
    return {
        strategy: run_strategy(strategy, seed)
        for strategy in ("oldest", "lru", "largest")
    }


def test_bench_ablation_eviction(benchmark):
    platforms = benchmark.pedantic(run_all, rounds=1, iterations=1)
    stats = {
        name: platform.provider.pool.stats for name, platform in platforms.items()
    }
    print()
    for name, stat in stats.items():
        print(
            f"  {name:<8} hits={stat.hits:>3} misses={stat.misses:>3} "
            f"hit-ratio={stat.hit_ratio:.2f} evictions={stat.evictions_capacity}"
        )

    # Every strategy respects the cap and evicts.
    for name, platform in platforms.items():
        assert platform.provider.pool.total_live <= 3
        assert stats[name].evictions_capacity > 0
    # LRU keeps the hot runtime warm at least as well as the others.
    assert stats["lru"].hit_ratio >= stats["oldest"].hit_ratio
    assert stats["lru"].hit_ratio >= stats["largest"].hit_ratio
