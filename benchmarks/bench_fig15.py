"""Fig 15 — HotC's resource overhead."""

import numpy as np

from repro.experiments import run_fig15


def test_bench_fig15(benchmark, render):
    figure = benchmark.pedantic(run_fig15, kwargs={"seed": 0}, rounds=1, iterations=1)
    render(figure)

    # Fig 15a on the server: 10 live containers cost <1% CPU, ~0.7MB each.
    server = figure.get_table("fig15a-t430-server")
    by_count = {row[0]: row for row in server.rows}
    assert by_count[10][1] < 1.0                       # cpu delta %
    assert abs(by_count[10][2] - 7.0) < 0.5            # mem delta MB
    assert by_count[500][1] < 5.0                      # even 500 are cheap
    # Memory grows linearly with the pool size.
    counts = np.array([row[0] for row in server.rows], dtype=float)
    mems = np.array([row[2] for row in server.rows], dtype=float)
    nonzero = counts > 0
    per_container = mems[nonzero] / counts[nonzero]
    assert np.allclose(per_container, 0.7, atol=0.1)

    # Fig 15b: execution dominates; the idle live container is tiny.
    lifecycle = figure.get_table("fig15b-summary")
    rows = {row[0]: row for row in lifecycle.rows}
    executing = rows["app executing (6-13s)"]
    idle = rows["container live, app stopped"]
    assert executing[1] > 100 * idle[1]    # memory
    assert executing[2] > 10 * idle[2]     # cpu
