"""Fig 5 / Section III — the six-moment pipeline breakdown."""

from repro.experiments import run_fig05


def test_bench_fig05(benchmark, render):
    figure = benchmark.pedantic(
        run_fig05, kwargs={"seed": 0, "warm_requests": 5}, rounds=1, iterations=1
    )
    render(figure)

    for host in ("t430-server", "raspberry-pi3", "jetson-tx2"):
        table = figure.get_table(f"breakdown-{host}")
        cold = dict(zip(table.column("segment"), table.column("cold (ms)")))
        warm = dict(zip(table.column("segment"), table.column("warm (ms)")))

        # Paper: function initiation (2->3) dominates the cold request.
        total_cold = sum(cold.values())
        assert cold["function_init"] > 0.6 * total_cold
        # Warm requests collapse the initiation segment.
        assert warm["function_init"] < 0.1 * cold["function_init"]
        # Forwarding stages are small in both arms.
        assert cold["gateway_forward"] < 0.05 * total_cold
