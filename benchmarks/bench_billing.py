"""Billing — the monetary cost of cold starts across policies.

Section I argues cold starts "incur unnecessary costs" because FaaS
bills by request duration; Section III-B adds that periodic warm-up
pings carry their own fees.  This bench prices a steady workload under
four policies with a Lambda-style billing model.
"""


from repro.core import (
    FixedKeepAliveProvider,
    HotC,
    NoReuseProvider,
    PeriodicWarmupProvider,
)
from repro.faas.platform import FaasPlatform
from repro.metrics import BillingModel
from repro.workloads.apps import default_catalog, qr_encoder_app

N_REQUESTS = 30
INTERVAL_MS = 20_000.0  # one request every 20 s over 10 minutes


def run_policy(name: str, seed: int = 0):
    factories = {
        "cold-boot": NoReuseProvider,
        "hotc": HotC,
        "fixed-keepalive": lambda e: FixedKeepAliveProvider(e),
        "periodic-warmup": lambda e: PeriodicWarmupProvider(
            e, period_ms=60_000.0, ping_ms=10.0
        ),
    }
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        provider_factory=factories[name],
        jitter_sigma=0.0,
    )
    spec = qr_encoder_app(name="svc", language="python")
    platform.deploy(spec)
    platform.sim.process(platform.engine.ensure_image(spec.image))
    platform.run()
    for index in range(N_REQUESTS):
        platform.submit("svc", delay=index * INTERVAL_MS)
    run_until = None
    if name == "periodic-warmup":
        # The ping loop never drains on its own.
        run_until = platform.sim.now + N_REQUESTS * INTERVAL_MS + 120_000.0
    platform.run(until=run_until)
    ping_count = getattr(platform.provider, "pings", 0)
    if name == "periodic-warmup":
        platform.provider._running = False
    report = BillingModel().report(
        platform.traces, mem_mb=spec.mem_mb, ping_count=ping_count, ping_ms=10.0
    )
    return report


def run_all(seed: int = 0):
    return {
        name: run_policy(name, seed)
        for name in ("cold-boot", "hotc", "fixed-keepalive", "periodic-warmup")
    }


def test_bench_billing(benchmark):
    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for name, report in reports.items():
        print(
            f"  {name:<16} billed={report.billed_ms:8.0f} ms "
            f"overhead={100 * report.overhead_fraction:4.1f}% "
            f"cost=${report.total_usd * 1e6:7.2f}e-6 "
            f"(pings ${report.ping_cost_usd * 1e6:.2f}e-6)"
        )

    # Cold boots bill their initiation time on every request.
    assert reports["cold-boot"].overhead_fraction > 0.5
    # HotC pays initiation once: the cheapest bill.
    assert reports["hotc"].total_usd < 0.5 * reports["cold-boot"].total_usd
    assert reports["hotc"].total_usd == min(r.total_usd for r in reports.values())
    # Periodic warm-up avoids most cold starts but pays ping fees on top.
    warmup = reports["periodic-warmup"]
    assert warmup.ping_cost_usd > 0
    assert warmup.total_usd > reports["hotc"].total_usd
