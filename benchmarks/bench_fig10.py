"""Fig 10 — prediction strategies and parameter sensitivity."""

from repro.experiments import run_fig10


def test_bench_fig10(benchmark, render):
    figure = benchmark.pedantic(
        run_fig10, kwargs={"seed": 0, "length": 40}, rounds=1, iterations=1
    )
    render(figure)

    errors = figure.get_table("fig10a-errors")
    overall = dict(zip(errors.column("strategy"), errors.column("overall MAPE %")))
    jump = dict(zip(errors.column("strategy"), errors.column("jump-window MAPE %")))

    # Paper: the ES+Markov combination beats plain exponential smoothing.
    assert overall["es+markov"] < overall["exp-smoothing"]
    # And it also beats the Markov-only ablation overall.
    assert overall["es+markov"] < overall["markov-only"] + 5
    # Around the 8->19 jump the correction reduces the relative error
    # (paper: 29% -> 10%).
    assert jump["es+markov"] < jump["exp-smoothing"]

    sensitivity = figure.get_table("fig10b-sensitivity")
    by_config = dict(
        zip(sensitivity.column("configuration"), sensitivity.column("MAPE %"))
    )
    # Paper: on this volatile series a large alpha tracks better than a
    # small one, but pushing alpha to the extreme does not keep helping.
    assert by_config["alpha=0.8"] < by_config["alpha=0.1"]
    assert by_config["alpha=0.95"] >= by_config["alpha=0.8"]
    # Paper: mean-of-history initial values help the early predictions.
    assert by_config["init=mean5 (early)"] <= by_config["init=first (early)"] + 1
