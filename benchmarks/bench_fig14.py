"""Fig 14 — exponential request flows and 10x bursts."""

from repro.experiments import run_fig14


def test_bench_fig14(benchmark, render):
    figure = benchmark.pedantic(run_fig14, kwargs={"seed": 0}, rounds=1, iterations=1)
    render(figure)

    # Paper Fig 14a: at least half of the exponentially increasing
    # requests can reuse instances from the previous wave.
    note = next(n for n in figure.notes if "warm share" in n)
    # The note embeds the measured warm shares; re-derive from series
    # instead: increasing HotC latency stays below increasing default.
    _, inc_default = figure.get_series("exp-increasing-default").as_arrays()
    _, inc_hotc = figure.get_series("exp-increasing-hotc").as_arrays()
    assert inc_hotc[1:].mean() < inc_default[1:].mean()

    # Decreasing flow: everything after round 1 is warm under HotC.
    _, dec_hotc = figure.get_series("exp-decreasing-hotc").as_arrays()
    assert all(dec_hotc[1:] < 0.35 * dec_hotc[0])

    # Paper Fig 14b: ~9% reduction at the first burst; up to 73% later.
    table = figure.get_table("fig14b-burst-reductions")
    reductions = list(table.column("reduction %"))
    assert 4 <= reductions[0] <= 15
    assert max(reductions[1:]) >= 60
    assert max(reductions) <= 80
    # Improvements grow (or persist) across bursts.
    assert reductions[1] > reductions[0]
