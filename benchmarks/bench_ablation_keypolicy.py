"""Ablation — key granularity and the partial-key fallback.

The paper's default key uses every runtime parameter; its future work
proposes matching on a subset and applying the configuration delta.
With a workload of many env-var variants over one image:

* ``full``            — every variant cold-starts its own container;
* ``full+fallback``   — first variant cold, later variants reuse and
  reconfigure (partial hits);
* ``image-only``      — all variants share containers outright (the
  aggressive end of the spectrum).
"""


from repro.core.hotc import HotC, HotCConfig
from repro.core.keys import KeyPolicy
from repro.faas.platform import FaasPlatform
from repro.faas.function import FunctionSpec
from repro.workloads.apps import default_catalog

N_VARIANTS = 6


def run_policy(key_policy: KeyPolicy, fallback, seed: int = 0):
    config = HotCConfig(key_policy=key_policy, fallback_key_policy=fallback)
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        provider_factory=lambda engine: HotC(engine, config),
        jitter_sigma=0.0,
    )
    for index in range(N_VARIANTS):
        platform.deploy(
            FunctionSpec(
                name=f"fn-{index}",
                image="python:3.6",
                exec_ms=20,
                env=(("VARIANT", str(index)),),
            )
        )
    platform.sim.process(platform.engine.ensure_image("python:3.6"))
    platform.run()
    for index in range(N_VARIANTS):
        platform.submit(f"fn-{index}", delay=index * 2_000.0)
    platform.run()
    return platform


def run_all(seed: int = 0):
    return {
        "full": run_policy(KeyPolicy.FULL, None, seed),
        "full+fallback": run_policy(KeyPolicy.FULL, KeyPolicy.RELAXED, seed),
        "image-only": run_policy(KeyPolicy.IMAGE_ONLY, None, seed),
    }


def test_bench_ablation_keypolicy(benchmark):
    platforms = benchmark.pedantic(run_all, rounds=1, iterations=1)
    cold = {n: p.traces.cold_count() for n, p in platforms.items()}
    mean = {n: p.traces.mean_latency() for n, p in platforms.items()}
    print()
    for name, platform in platforms.items():
        partial = getattr(platform.provider, "partial_hits", 0)
        print(
            f"  {name:<14} cold={cold[name]} partial={partial} "
            f"mean={mean[name]:.0f} ms"
        )

    # Full keys: every env variant is its own runtime type.
    assert cold["full"] == N_VARIANTS
    # The fallback turns all but the first into reconfigure-reuses.
    assert cold["full+fallback"] == 1
    assert platforms["full+fallback"].provider.partial_hits == N_VARIANTS - 1
    # Image-only collapses everything with zero reconfiguration.
    assert cold["image-only"] == 1
    # Latency ordering: image-only <= fallback < full.
    assert mean["image-only"] <= mean["full+fallback"] + 5
    assert mean["full+fallback"] < 0.5 * mean["full"]
