"""Fig 1 — Lambda-style latency spikes and the long-tail CDF."""

import numpy as np

from repro.experiments import run_fig01


def test_bench_fig01(benchmark, render):
    figure = benchmark.pedantic(run_fig01, kwargs={"seed": 0}, rounds=1, iterations=1)
    render(figure)

    table = figure.get_table("fig1a-summary")
    metrics = dict(zip(table.column("metric"), table.column("value")))

    # Paper: the first request of every burst is cold (5 bursts).
    assert metrics["cold starts"] == 5
    # Paper: highest ~41.8% over lowest, ~31.7% over mean.
    assert 1.30 <= metrics["max/min"] <= 1.55
    assert 1.20 <= metrics["max/mean"] <= 1.45
    # Paper Fig 1b: serverless has a long tail, local does not.
    assert metrics["p99/p50 serverless"] > 1.2
    assert metrics["p99/p50 local"] < 1.1

    # The per-request series spikes exactly at burst starts.
    _, latency = figure.get_series("serverless-latency").as_arrays()
    spikes = latency[::10]
    others = np.delete(latency, slice(None, None, 10))
    assert spikes.min() > others.max()
