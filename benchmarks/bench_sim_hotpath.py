"""Simulation hot-loop microbenchmark: fast-path engine vs. the seed engine.

Every figure reproduction, ablation bench, and chaos soak in this repo
bottoms out in :mod:`repro.sim`'s generator-process engine, so its event
loop is the invocation fast path of the whole artifact.  This benchmark
drives timeout-dominated workloads through the optimized engine and
through :mod:`repro.sim.naive` (the seed implementation, kept verbatim
as an executable baseline) and writes a before/after comparison to
``BENCH_sim.json``.

Workloads:

* ``timeout_hotloop`` — N processes each sleeping in a tight loop; the
  pure timeout fast path (lazy names, free-listed entries, batched
  drain).  This is the gated number.
* ``timeout_churn`` — every round races a short timeout against a long
  one and cancels the loser, so >50% of the heap turns dead and the
  lazy-cancellation compaction has to keep pop O(log live).
* ``callback_chain`` — self-rescheduling plain callbacks through
  ``Simulator.schedule`` (the pinned, non-recycled entry path).

Run:
    PYTHONPATH=src python benchmarks/bench_sim_hotpath.py
    PYTHONPATH=src python benchmarks/bench_sim_hotpath.py --check

``--check`` is the fast quality-gate mode wired into the tier-1 pytest
run (``tests/test_sim_hotpath_gate.py``): it reruns a reduced workload
on both engines and fails unless the optimized engine clears
``MIN_HOTLOOP_SPEEDUP`` on the timeout-dominated microbench, so future
PRs cannot quietly regress the event loop.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(SRC))

from repro.sim import Simulator  # noqa: E402
from repro.sim.naive import NaiveSimulator  # noqa: E402

#: Full-run workload sizes.
HOTLOOP_PROCS = 100
HOTLOOP_ROUNDS = 2_000
CHURN_PROCS = 50
CHURN_ROUNDS = 1_000
CHAIN_CALLBACKS = 100
CHAIN_ROUNDS = 1_000

#: ``--check`` gate: reduced sizes, best-of-N timing, minimum speedup of
#: the optimized engine over the seed engine on the timeout hot loop.
CHECK_SCALE = 0.25
CHECK_REPEATS = 3
MIN_HOTLOOP_SPEEDUP = 3.0


def bench_timeout_hotloop(sim_class, procs=HOTLOOP_PROCS, rounds=HOTLOOP_ROUNDS):
    """Events/sec with every process sleeping in a tight timeout loop."""
    sim = sim_class()

    def worker(sim, period):
        for _ in range(rounds):
            yield sim.timeout(period)

    for index in range(procs):
        sim.process(worker(sim, 1.0 + (index % 7) * 0.25))
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.steps / elapsed


def bench_timeout_churn(sim_class, procs=CHURN_PROCS, rounds=CHURN_ROUNDS):
    """Events/sec when every round cancels a losing long timeout."""
    sim = sim_class()

    def worker(sim):
        for _ in range(rounds):
            loser = sim.timeout(1_000.0)
            yield sim.timeout(1.0)
            loser.cancel()

    for _ in range(procs):
        sim.process(worker(sim))
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.steps / elapsed


def bench_callback_chain(sim_class, chains=CHAIN_CALLBACKS, rounds=CHAIN_ROUNDS):
    """Events/sec for self-rescheduling plain ``schedule()`` callbacks."""
    sim = sim_class()
    remaining = [rounds] * chains

    def tick(index):
        remaining[index] -= 1
        if remaining[index] > 0:
            sim.schedule(1.0, tick, index)

    for index in range(chains):
        sim.schedule(1.0, tick, index)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.steps / elapsed


def run_suite(sim_class, scale=1.0, repeats=1):
    """All hot-loop measurements for one engine, in events/sec (best of N).

    Each workload is warmed until ~0.3s of it has executed before any
    run is recorded: first-run costs (bytecode specialisation, inline
    caches, allocator growth) take a few hundred milliseconds of
    cumulative execution to settle, and measuring before that point
    under-reports the steady-state engine by ~25%.  The collector is
    paused while timing so a GC cycle triggered by unrelated garbage
    can't torpedo a single run.
    """
    import gc

    _WARMUP_S = 0.3

    def best(fn, *sizes):
        sized = tuple(max(1, int(size * scale)) for size in sizes)
        warmup_until = time.perf_counter() + _WARMUP_S
        while time.perf_counter() < warmup_until:
            fn(sim_class, *sized)
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            return max(fn(sim_class, *sized) for _ in range(repeats))
        finally:
            if gc_was_enabled:
                gc.enable()

    return {
        "implementation": sim_class.__name__,
        "timeout_hotloop_events_per_sec": round(
            best(bench_timeout_hotloop, HOTLOOP_PROCS, HOTLOOP_ROUNDS), 1
        ),
        "timeout_churn_events_per_sec": round(
            best(bench_timeout_churn, CHURN_PROCS, CHURN_ROUNDS), 1
        ),
        "callback_chain_events_per_sec": round(
            best(bench_callback_chain, CHAIN_CALLBACKS, CHAIN_ROUNDS), 1
        ),
    }


def run_comparison(scale=1.0, repeats=3):
    """Before (seed) / after (fast-path) measurements plus speedups."""
    before = run_suite(NaiveSimulator, scale=scale, repeats=repeats)
    after = run_suite(Simulator, scale=scale, repeats=repeats)
    speedup = {
        metric: round(after[metric] / before[metric], 2)
        for metric in before
        if metric != "implementation" and before[metric] > 0
    }
    return {"before": before, "after": after, "speedup": speedup}


def measure_parallel_runner(jobs=4, seeds=(0, 1, 2)):
    """Wall-clock of the full figure matrix, serial vs. ``jobs`` workers.

    ``output_identical`` is the hard guarantee (figures are produced by
    the same single-task code path either way); the wall-clock speedup
    only materialises with spare cores — on a single-core host, spawn
    overhead makes ``jobs>1`` strictly slower, so ``host_cpus`` is
    recorded alongside and consumers must not gate speedup without it.
    """
    import os

    from repro.experiments.runner import run_matrix

    start = time.perf_counter()
    serial = run_matrix(seeds=seeds, jobs=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_matrix(seeds=seeds, jobs=jobs)
    parallel_s = time.perf_counter() - start

    identical = all(
        serial[seed][name].render() == parallel[seed][name].render()
        for seed in serial
        for name in serial[seed]
    )
    return {
        "seeds": list(seeds),
        "figures_per_seed": len(next(iter(serial.values()))),
        "jobs": jobs,
        "host_cpus": os.cpu_count(),
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
        "output_identical": identical,
    }


def run_check(scale=CHECK_SCALE, repeats=CHECK_REPEATS, attempts=3):
    """Fast gate: both engines at reduced scale, asserting the speedup.

    Returns the comparison; raises AssertionError when the optimized
    engine no longer clears ``MIN_HOTLOOP_SPEEDUP`` on the timeout loop.
    A sub-floor attempt is retried up to ``attempts`` times: on a busy
    single-core host a background burst can depress one whole
    measurement round, and a genuine complexity regression fails every
    attempt, so retrying filters noise without masking regressions.
    """
    comparison = None
    hotloop = churn = 0.0
    for _ in range(attempts):
        candidate = run_comparison(scale=scale, repeats=repeats)
        candidate_hotloop = candidate["speedup"]["timeout_hotloop_events_per_sec"]
        candidate_churn = candidate["speedup"]["timeout_churn_events_per_sec"]
        if comparison is None or candidate_hotloop > hotloop:
            comparison, hotloop = candidate, candidate_hotloop
            churn = candidate_churn
        if hotloop >= MIN_HOTLOOP_SPEEDUP and churn >= 1.0:
            break
    assert hotloop >= MIN_HOTLOOP_SPEEDUP, (
        f"sim hot loop regressed: {hotloop:.2f}x over the seed engine is "
        f"below the required {MIN_HOTLOOP_SPEEDUP}x on the timeout microbench"
    )
    assert churn >= 1.0, (
        f"cancellation churn regressed below the seed engine: {churn:.2f}x"
    )
    return comparison


def main(argv=None):
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fast speedup-gate mode (no JSON written)",
    )
    parser.add_argument(
        "--no-runner",
        action="store_true",
        help="skip the (slow) parallel experiment-runner wall-clock section",
    )
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[1] / "BENCH_sim.json",
    )
    args = parser.parse_args(argv)

    if args.check:
        comparison = run_check()
        print(json.dumps(comparison, indent=2))
        print("sim hot-loop speedup OK")
        return 0

    comparison = run_comparison()
    # The gate-scale numbers (what --check and CI enforce) ride along in
    # the committed JSON: smaller heaps concentrate the per-event wins,
    # so this is where the >= 3x floor is measured and asserted.
    comparison["check_gate"] = {
        "scale": CHECK_SCALE,
        "min_hotloop_speedup": MIN_HOTLOOP_SPEEDUP,
        **run_check(),
    }
    if not args.no_runner:
        comparison["experiment_runner"] = measure_parallel_runner(jobs=args.jobs)
    args.output.write_text(json.dumps(comparison, indent=2) + "\n")
    print(json.dumps(comparison, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
