"""Fig 11 — the campus YouTube trace and its three features."""

from repro.experiments import run_fig11


def test_bench_fig11(benchmark, render):
    figure = benchmark.pedantic(run_fig11, kwargs={"seed": 0}, rounds=1, iterations=1)
    render(figure)

    table = figure.get_table("fig11-features")
    features = dict(zip(table.column("feature"), table.column("value")))

    # Paper: burst from ~20 to ~300 requests at T710.
    assert 15 <= features["pre-burst level (req/min)"] <= 30
    assert 250 <= features["burst peak @T710"] <= 350
    assert features["burst magnitude (x)"] > 10
    # Paper: afternoon decline, night rise.
    decline = [v for k, v in features.items() if k.startswith("decline slope")][0]
    rise = [v for k, v in features.items() if k.startswith("rise slope")][0]
    assert decline < -0.2
    assert rise > 0.5
