"""Ablation — the keep-alive window trade-off (Section III-B).

"AWS adopts a fixed keep-alive policy ... it disregards actual
invocation frequency and patterns, and also wastes lots of resources."
This bench sweeps the window against a 4-minute request stream and
shows the cliff: windows shorter than the inter-arrival gap pay every
cold start; longer ones pay idle capacity instead.
"""


from repro.analysis import keep_alive_sensitivity

WINDOWS = (
    60_000.0,          # 1 min  — lapses every time
    3 * 60_000.0,      # 3 min  — still short of the 4-min gap
    5 * 60_000.0,      # 5 min  — just covers it
    15 * 60_000.0,     # AWS default
    60 * 60_000.0,     # an hour — pure waste beyond the 5-min mark
)


def run_sweep(seed: int = 0):
    return keep_alive_sensitivity(
        windows_ms=WINDOWS,
        inter_arrival_ms=4 * 60_000.0,
        n_requests=20,
        seed=seed,
    )


def test_bench_ablation_keepalive(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    for window in WINDOWS:
        stats = sweep[window]
        print(
            f"  window={window / 60_000:5.0f} min  cold={stats['cold']:4.0f}  "
            f"held={stats['held_container_minutes']:6.1f} container-min"
        )

    # The cliff sits at the inter-arrival gap.
    assert sweep[60_000.0]["cold"] == 20
    assert sweep[3 * 60_000.0]["cold"] == 20
    assert sweep[5 * 60_000.0]["cold"] == 1
    # Beyond the cliff, longer windows buy nothing but held capacity.
    assert sweep[60 * 60_000.0]["cold"] == sweep[5 * 60_000.0]["cold"]
    assert (
        sweep[60 * 60_000.0]["held_container_minutes"]
        >= sweep[5 * 60_000.0]["held_container_minutes"]
    )
