"""Fig 2 — Dockerfile survey: image dominance and category shares."""

from repro.experiments import run_fig02


def test_bench_fig02(benchmark, render):
    figure = benchmark.pedantic(
        run_fig02, kwargs={"seed": 0, "n_projects": 2_000}, rounds=1, iterations=1
    )
    render(figure)

    shares = figure.get_table("fig2a-image-shares")
    all_shares = shares.column("all projects %")
    top_shares = shares.column("top-100 %")

    # Paper: a few commonly used images dominate both panels.
    assert sum(all_shares[:5]) > 45
    assert sum(top_shares[:5]) > 45
    # Shares sorted descending over the "all" panel.
    assert list(all_shares) == sorted(all_shares, reverse=True)

    categories = figure.get_table("fig2b-category-shares")
    by_name = dict(zip(categories.column("category"), categories.column("all projects %")))
    # Paper: OS and language bases dominate the configurations.
    assert by_name["os"] + by_name["language"] > 60
    assert by_name["os"] > by_name["application"]
