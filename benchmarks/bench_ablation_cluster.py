"""Ablation — multi-host placement (Section VII load-balancing).

Reuse-aware routing vs round-robin on a 3-host cluster under a steady
single-function stream plus a parallel burst: reuse-aware should serve
the steady stream from one warm host and spread only the genuinely
concurrent cold boots.
"""


from repro.core import make_cluster_platform
from repro.faas.function import FunctionSpec
from repro.workloads.apps import default_catalog


def run_placement(placement: str, seed: int = 0):
    catalog = default_catalog()
    platform = make_cluster_platform(
        catalog.make_registry(),
        n_hosts=3,
        seed=seed,
        placement=placement,
        jitter_sigma=0.0,
    )
    platform.deploy(FunctionSpec(name="fn", image="python:3.6", exec_ms=20))
    for engine in [h.engine for h in platform.provider.hosts]:
        platform.sim.process(engine.ensure_image("python:3.6"))
    platform.run()

    # Steady stream...
    for index in range(12):
        platform.submit("fn", delay=index * 3_000.0)
    # ...then a 9-wide parallel burst.
    for _ in range(9):
        platform.submit("fn", delay=40_000.0)
    platform.run()
    return platform


def run_both(seed: int = 0):
    return {
        placement: run_placement(placement, seed)
        for placement in ("reuse-aware", "round-robin")
    }


def test_bench_ablation_cluster(benchmark):
    platforms = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    for placement, platform in platforms.items():
        print(
            f"  {placement:<12} cold={platform.traces.cold_count():>2} "
            f"mean={platform.traces.mean_latency():.0f} ms "
            f"pools={platform.provider.pool_sizes()}"
        )

    import numpy as np

    reuse = platforms["reuse-aware"]
    rr = platforms["round-robin"]
    # Steady phase (the first 12 completions): reuse-aware pins the
    # stream to one warm host (1 cold), round-robin cold-starts once per
    # host it rotates through (3 cold).
    reuse_steady = np.array([t.cold_start for t in reuse.traces.traces[:12]])
    rr_steady = np.array([t.cold_start for t in rr.traces.traces[:12]])
    assert reuse_steady.sum() == 1
    assert rr_steady.sum() == 3
    reuse_mean = np.mean([t.total_latency for t in reuse.traces.traces[:12]])
    rr_mean = np.mean([t.total_latency for t in rr.traces.traces[:12]])
    assert reuse_mean < rr_mean
    # The parallel burst still forces capacity onto multiple hosts even
    # for reuse-aware routing (load balancing, not pinning).
    assert sum(1 for size in reuse.provider.pool_sizes() if size > 0) >= 2
