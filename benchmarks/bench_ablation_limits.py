"""Ablation — pool limits: container cap and memory threshold.

Sweeps ``max_containers`` under a many-type workload and the memory
threshold on a small host, verifying both guards work and quantifying
the reuse lost to tighter limits.
"""


from repro.core.hotc import HotC, HotCConfig
from repro.core.pool import PoolLimits
from repro.faas.platform import FaasPlatform
from repro.faas.function import FunctionSpec
from repro.hardware.profiles import RASPBERRY_PI3
from repro.workloads.apps import default_catalog

N_TYPES = 8


def run_with_cap(max_containers: int, seed: int = 0):
    config = HotCConfig(limits=PoolLimits(max_containers=max_containers))
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        provider_factory=lambda engine: HotC(engine, config),
        jitter_sigma=0.0,
    )
    for index in range(N_TYPES):
        platform.deploy(
            FunctionSpec(
                name=f"fn-{index}",
                image="python:3.6",
                exec_ms=10,
                env=(("T", str(index)),),
            )
        )
    platform.sim.process(platform.engine.ensure_image("python:3.6"))
    platform.run()
    # Two passes over all types: the second pass reuses what survived.
    delay = 0.0
    for _ in range(2):
        for index in range(N_TYPES):
            platform.submit(f"fn-{index}", delay=delay)
            delay += 1_500.0
    platform.run()
    return platform


def run_memory_threshold(threshold: float, seed: int = 0):
    config = HotCConfig(
        limits=PoolLimits(memory_threshold=threshold),
    )
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        profile=RASPBERRY_PI3,
        provider_factory=lambda engine: HotC(engine, config),
        jitter_sigma=0.0,
    )
    # 400 MB / 2000-millicore executions on a 1 GB / 4-core Pi: at most
    # two run concurrently (CPU bound), holding up to 800 MB — above a
    # 0.2 threshold (205 MB) while the releases happen, below 0.9.
    platform.deploy(
        FunctionSpec(
            name="fat",
            image="python:3.6",
            exec_ms=2_000,
            mem_mb=400,
            cpu_millicores=2_000,
        )
    )
    platform.sim.process(platform.engine.ensure_image("python:3.6"))
    platform.run()
    for _ in range(6):
        platform.submit("fat")
    platform.run()
    return platform


def run_sweep(seed: int = 0):
    caps = {cap: run_with_cap(cap, seed) for cap in (2, 4, 8)}
    thresholds = {t: run_memory_threshold(t, seed) for t in (0.2, 0.9)}
    return caps, thresholds


def test_bench_ablation_limits(benchmark):
    caps, thresholds = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    hits = {}
    for cap, platform in caps.items():
        stats = platform.provider.pool.stats
        hits[cap] = stats.hits
        print(
            f"  cap={cap}  hits={stats.hits:>2} evictions="
            f"{stats.evictions_capacity:>2} live={platform.provider.pool.total_live}"
        )
    for threshold, platform in thresholds.items():
        stats = platform.provider.pool.stats
        print(
            f"  mem-threshold={threshold}  pressure-evictions="
            f"{stats.evictions_pressure}"
        )

    # A cap >= the working set preserves all second-pass reuse.
    assert hits[8] == N_TYPES
    # Tighter caps lose reuse monotonically and stay within the cap.
    assert hits[2] <= hits[4] <= hits[8]
    for cap, platform in caps.items():
        assert platform.provider.pool.total_live <= cap
    # The aggressive memory threshold triggers pressure evictions on the
    # 1GB Pi; the permissive one does not.
    aggressive = thresholds[0.2].provider.pool.stats.evictions_pressure
    permissive = thresholds[0.9].provider.pool.stats.evictions_pressure
    assert aggressive > 0
    assert permissive == 0
