"""Ablation — image distribution strategies vs HotC (Section III-B).

Quantifies the industry practices the paper surveys (lazy image pulls,
P2P distribution) on a 5-host rollout of a 410 MB image, and shows the
punchline of Section III-B: those optimisations attack the *pull* part
of the cold start, while the runtime-initialisation part they cannot
touch is exactly what HotC removes.
"""


from repro.containers import (
    ContainerConfig,
    ContainerEngine,
    DistributionNetwork,
    ExecSpec,
    FullPullStrategy,
    LazyPullStrategy,
    P2PPullStrategy,
)
from repro.sim import Simulator
from repro.workloads.apps import default_catalog

IMAGE = "tensorflow/tensorflow:1.13"
N_HOSTS = 5


def rollout(strategy_factory, seed: int = 0):
    """Sequential cold rollout of IMAGE onto N_HOSTS; returns per-host
    boot-to-first-response times."""
    sim = Simulator()
    registry = default_catalog().make_registry()
    times = []
    shared = strategy_factory()
    for index in range(N_HOSTS):
        engine = ContainerEngine(
            sim,
            registry,
            rng=None,
            name=f"host-{index}",
            pull_strategy=shared if not callable(shared) else shared,
        )
        start = sim.now

        def first_response(engine=engine):
            yield from engine.ensure_image(IMAGE)
            container = yield from engine.boot_container(
                ContainerConfig(image=IMAGE)
            )
            yield from engine.execute(
                container, ExecSpec(app_id="fn", language="python", exec_ms=50)
            )

        proc = sim.process(first_response())
        sim.run()
        assert proc.ok, proc.value
        times.append(sim.now - start)
    return times


def run_all(seed: int = 0):
    return {
        "full-pull": rollout(lambda: FullPullStrategy(), seed),
        "lazy-pull": rollout(lambda: LazyPullStrategy(), seed),
        "p2p": rollout(
            lambda: P2PPullStrategy(DistributionNetwork()), seed
        ),
    }


def test_bench_ablation_imagepull(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for name, times in results.items():
        print(
            f"  {name:<10} first-host={times[0]:7.0f} ms  "
            f"last-host={times[-1]:7.0f} ms"
        )

    full = results["full-pull"]
    lazy = results["lazy-pull"]
    p2p = results["p2p"]
    # Lazy pull cuts every host's first response substantially.
    assert all(l < 0.6 * f for l, f in zip(lazy, full))
    # P2P: the first host pays full price (plus coordination); later
    # hosts ride the seeds.
    assert p2p[0] >= full[0]
    # Seeds parallelise the transfer but not the CPU-bound decompress,
    # so the gain saturates around the decompress floor.
    assert p2p[-1] < 0.65 * full[-1]
    assert p2p[-1] < p2p[0]
    # The floor that remains on every host (container boot + runtime
    # init + exec, no pull at all) is what HotC attacks instead.
    sim = Simulator()
    registry = default_catalog().make_registry()
    engine = ContainerEngine(sim, registry, rng=None)
    proc = sim.process(engine.ensure_image(IMAGE))
    sim.run()
    start = sim.now
    def warm_path():
        container = yield from engine.boot_container(ContainerConfig(image=IMAGE))
        yield from engine.execute(
            container, ExecSpec(app_id="fn", language="python", exec_ms=50)
        )
    proc = sim.process(warm_path())
    sim.run()
    pull_free_floor = sim.now - start
    print(f"  pull-free cold-start floor (HotC's target): {pull_free_floor:.0f} ms")
    assert min(min(lazy), min(p2p)) > 0.8 * pull_free_floor
