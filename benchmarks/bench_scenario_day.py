"""Planet-scale scenario benchmark: the ``day-1m`` trace day.

The scenario runner promises that a simulated day of one million
requests over 1 000 runtime keys and 3 hosts (the bundled ``day-1m``
spec) completes in well under a minute of wall clock, with streaming
per-tenant accounting the whole way.  This benchmark measures that
promise and gates it:

* ``--smoke`` runs the bundled ``day-smoke`` spec (~20k requests) under
  a generous budget — the fast mode wired into the tier-1 pytest run
  (``tests/test_scenario_gate.py``) and the CI scenario smoke step.
* ``--check`` runs the full ``day-1m`` spec and fails unless it clears
  ``DAY_1M_BUDGET_S`` wall seconds and ``DAY_1M_MIN_REQUESTS`` realised
  requests — the nightly-scale CI gate.

Run:
    PYTHONPATH=src python benchmarks/bench_scenario_day.py
    PYTHONPATH=src python benchmarks/bench_scenario_day.py --check
    PYTHONPATH=src python benchmarks/bench_scenario_day.py --smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(SRC))

from repro.scenarios import bundled_spec, run_scenario  # noqa: E402

#: Hard wall-clock ceiling for the ``day-1m`` gate (the ISSUE budget).
DAY_1M_BUDGET_S = 60.0
#: Realised-request floor.  The spec's expected total is exactly 1e6;
#: Poisson fluctuation is ~1e3, so 10 sigma of headroom keeps the gate
#: seed-robust while still catching any volume-accounting regression.
DAY_1M_MIN_REQUESTS = 990_000
#: ``--smoke`` budget for ``day-smoke`` (~20k requests; runs in ~2 s —
#: the ceiling only exists to catch order-of-magnitude regressions).
SMOKE_BUDGET_S = 30.0
SMOKE_MIN_REQUESTS = 18_000


def run_day(name: str, seed: int = 0):
    """Run one bundled trace day; returns (report, wall_seconds)."""
    spec = bundled_spec(name, seed=seed)
    start = time.perf_counter()
    report = run_scenario(spec)
    return report, time.perf_counter() - start


def measure(name: str, seed: int = 0):
    """One run of ``name`` summarised as a JSON-ready dict."""
    report, wall_s = run_day(name, seed=seed)
    arm = report.arms[0]
    processed = arm.requests + arm.failed + arm.shed
    return {
        "scenario": name,
        "seed": seed,
        "wall_s": round(wall_s, 2),
        "requests": arm.requests,
        "processed": processed,
        "requests_per_wall_s": round(processed / wall_s, 1),
        "cold": arm.cold,
        "cold_ratio": round(arm.cold_ratio, 5),
        "p50_ms": arm.p50_ms,
        "p99_ms": arm.p99_ms,
        "p999_ms": arm.p999_ms,
        "overflow": arm.overflow,
        "tenants": len(arm.tenants),
        "sim_days": round(arm.sim_time_ms / 86_400_000.0, 3),
    }


def check_gate(name: str, budget_s: float, min_requests: int, seed: int = 0):
    """Run ``name`` and enforce the wall/volume gate; returns the summary."""
    summary = measure(name, seed=seed)
    failures = []
    if summary["wall_s"] > budget_s:
        failures.append(
            f"wall {summary['wall_s']}s exceeds the {budget_s}s budget"
        )
    if summary["processed"] < min_requests:
        failures.append(
            f"processed {summary['processed']} requests, "
            f"floor is {min_requests}"
        )
    if summary["tenants"] < 1:
        failures.append("report carries no tenant rows")
    if failures:
        raise AssertionError(f"{name} gate failed: " + "; ".join(failures))
    return summary


def run_check(seed: int = 0):
    """The nightly gate: ``day-1m`` under budget at full scale."""
    return check_gate(
        "day-1m", DAY_1M_BUDGET_S, DAY_1M_MIN_REQUESTS, seed=seed
    )


def run_smoke(seed: int = 0):
    """The fast gate: ``day-smoke`` under a generous budget."""
    return check_gate(
        "day-smoke", SMOKE_BUDGET_S, SMOKE_MIN_REQUESTS, seed=seed
    )


def main(argv=None) -> int:
    """CLI entry point: full measurement, ``--check``, or ``--smoke``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--check", action="store_true", help="gate day-1m (nightly scale)"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="gate day-smoke (fast)"
    )
    parser.add_argument(
        "--out", default=None, help="write the summary JSON here"
    )
    args = parser.parse_args(argv)
    if args.check:
        summary = run_check(seed=args.seed)
    elif args.smoke:
        summary = run_smoke(seed=args.seed)
    else:
        summary = {
            "day_smoke": measure("day-smoke", seed=args.seed),
            "day_1m": measure("day-1m", seed=args.seed),
        }
    rendered = json.dumps(summary, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        pathlib.Path(args.out).write_text(rendered + "\n", encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
