"""Ablation — smoothing coefficient and initial-value policy (Fig 10b+).

Sweeps alpha over the paper's discussed range on the volatile demand
series and checks the guidance of Section IV-C(2): small alpha for
stable series, large for volatile ones; mean-of-history initialisation
for short series.
"""

import numpy as np

from repro.core.predictor.combined import CombinedPredictor
from repro.experiments.fig10_prediction import demand_series
from repro.metrics.errors import mean_absolute_percentage_error

ALPHAS = (0.1, 0.2, 0.3, 0.5, 0.8, 0.9, 0.95)


def sweep(seed: int = 0, length: int = 60):
    series = demand_series(seed=seed, length=length)
    errors = {}
    for alpha in ALPHAS:
        forecasts = CombinedPredictor(alpha=alpha, init="auto").fit_series(series)
        errors[alpha] = mean_absolute_percentage_error(series[1:], forecasts[:-1])
    early = {}
    for init in ("first", "mean5"):
        forecasts = CombinedPredictor(alpha=0.8, init=init).fit_series(series)
        early[init] = mean_absolute_percentage_error(series[1:6], forecasts[:5])
    # A genuinely stable series for the "small alpha" guidance.
    rng = np.random.default_rng(seed + 1)
    stable = 10.0 + rng.normal(0, 0.4, size=length)
    stable_errors = {}
    for alpha in (0.1, 0.8):
        forecasts = CombinedPredictor(alpha=alpha, init="auto").fit_series(stable)
        stable_errors[alpha] = mean_absolute_percentage_error(
            stable[1:], forecasts[:-1], floor=1.0
        )
    return errors, early, stable_errors


def test_bench_ablation_alpha(benchmark):
    errors, early, stable_errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for alpha, error in errors.items():
        print(f"  alpha={alpha:<5} MAPE={100 * error:5.1f}%")
    print(f"  early MAPE: init=first {100 * early['first']:.1f}%, "
          f"init=mean5 {100 * early['mean5']:.1f}%")
    print(f"  stable series: alpha=0.1 {100 * stable_errors[0.1]:.2f}%, "
          f"alpha=0.8 {100 * stable_errors[0.8]:.2f}%")

    # Volatile series: the paper's alpha=0.8 beats the small alphas.
    assert errors[0.8] < errors[0.1]
    assert errors[0.8] < errors[0.3]
    # Pushing to the extreme does not keep improving.
    assert errors[0.95] >= errors[0.8]
    # Stable series: a small alpha is at least competitive (Sec IV-C(2)).
    assert stable_errors[0.1] <= stable_errors[0.8] * 1.1
    # Mean-of-first-five init helps the early forecasts.
    assert early["mean5"] <= early["first"] * 1.05
