"""Fig 13 — linear increasing and decreasing request flows."""

import numpy as np

from repro.experiments import run_fig13


def test_bench_fig13(benchmark, render):
    figure = benchmark.pedantic(run_fig13, kwargs={"seed": 0}, rounds=1, iterations=1)
    render(figure)

    table = figure.get_table("fig13-summary")
    rows = {row[0]: row for row in table.rows}

    # Paper: increasing — only the +2 increment cold-starts each round:
    # 10 rounds x 2 = 20 cold with HotC vs 110 (all) without.
    increasing = rows["increasing"]
    assert increasing[3] == 110
    assert increasing[4] == 20

    # Paper: decreasing — after round 1 a hot container is always
    # available; all cold starts happen in the first round.
    decreasing = rows["decreasing"]
    assert decreasing[4] == 20  # the 20 requests of round 1

    # HotC's increasing latency stays well below the default's.
    _, default_series = figure.get_series("increasing-default").as_arrays()
    _, hotc_series = figure.get_series("increasing-hotc").as_arrays()
    assert np.mean(hotc_series) < 0.5 * np.mean(default_series)

    # Decreasing with HotC: rounds 2+ are all-warm and flat.
    _, decreasing_hotc = figure.get_series("decreasing-hotc").as_arrays()
    assert np.all(decreasing_hotc[1:] < 0.3 * decreasing_hotc[0])
