"""Fig 16 (extension) — inter-key repurposing vs corpus concentration."""

from repro.experiments import run_fig16


def test_bench_fig16(benchmark, render):
    figure = benchmark.pedantic(run_fig16, kwargs={"seed": 0}, rounds=1, iterations=1)
    render(figure)

    summary = figure.get_table("fig16-summary")
    cold_off = summary.column("cold (off)")
    cold_on = summary.column("cold (on)")
    repurposed = summary.column("repurposed")
    # Repurposing eliminates cold starts at every concentration level
    # and never adds any.
    assert all(on < off for off, on in zip(cold_off, cold_on))
    assert all(count > 0 for count in repurposed)
    # The head-heavy top-starred slice shares more bases, so it
    # repurposes the most (the Fig 2 connection).
    concentration = summary.column("head-concentration")
    assert concentration[-1] >= concentration[0]
    assert repurposed[-1] >= repurposed[0]
    # Mean latency improves with repurposing on.
    latency_off = summary.column("mean latency off (ms)")
    latency_on = summary.column("mean latency on (ms)")
    assert all(on < off for off, on in zip(latency_off, latency_on))

    # The breakdown table keeps the paper's hit accounting exact-key.
    breakdown = figure.get_table("fig16-reuse-breakdown")
    counters = {(row[0], row[1]): row[2] for row in breakdown.rows}
    assert counters[("pool", "cold_starts_eliminated")] == (
        counters[("pool", "relaxed_hits")] + counters[("pool", "repurposed")]
    )
    assert counters[("pool", "exact_hit_ratio")] <= 1.0
