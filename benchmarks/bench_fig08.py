"""Fig 8 — image-recognition execution time with and without HotC."""

from repro.experiments import run_fig08


def test_bench_fig08(benchmark, render):
    figure = benchmark.pedantic(
        run_fig08, kwargs={"seed": 0, "runs": 10}, rounds=1, iterations=1
    )
    render(figure)

    # Paper reductions: server −33.2% (v3), −23.9% (TF-API);
    #                   Pi     −26.6% (v3), −20.6% (TF-API).
    bands = {
        ("fig8-t430-server", "v3-app"): (30, 37),
        ("fig8-t430-server", "tf-api-app"): (21, 28),
        ("fig8-raspberry-pi3", "v3-app"): (22, 31),
        ("fig8-raspberry-pi3", "tf-api-app"): (17, 27),
    }
    for (table_name, app), (low, high) in bands.items():
        table = figure.get_table(table_name)
        reductions = dict(zip(table.column("app"), table.column("reduction %")))
        assert low <= reductions[app] <= high, (table_name, app, reductions[app])

    # Shape: v3-app benefits more than tf-api-app on both hosts, and the
    # server benefits more than the Pi for v3 (cold start is a smaller
    # share of the Pi's much longer execution).
    server = figure.get_table("fig8-t430-server")
    pi = figure.get_table("fig8-raspberry-pi3")
    server_red = dict(zip(server.column("app"), server.column("reduction %")))
    pi_red = dict(zip(pi.column("app"), pi.column("reduction %")))
    assert server_red["v3-app"] > server_red["tf-api-app"]
    assert pi_red["v3-app"] > pi_red["tf-api-app"]
    assert server_red["v3-app"] > pi_red["v3-app"]
