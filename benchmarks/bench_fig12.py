"""Fig 12 — serial and parallel request latency."""

import numpy as np

from repro.experiments import run_fig12


def test_bench_fig12(benchmark, render):
    figure = benchmark.pedantic(run_fig12, kwargs={"seed": 0}, rounds=1, iterations=1)
    render(figure)

    table = figure.get_table("fig12-summary")
    rows = {row[0]: row for row in table.rows}

    # Paper Fig 12a: with HotC only the very first serial request is cold.
    serial = rows["serial"]
    assert serial[4] == 1          # cold: hotc
    assert serial[3] == 20         # cold: default (every request)
    assert serial[2] < 0.3 * serial[1]

    # Paper Fig 12b: HotC's average latency ~9% of the default case.
    parallel = rows["parallel"]
    ratio = parallel[2] / parallel[1]
    assert 0.05 <= ratio <= 0.25
    # Each of the ten per-thread configurations cold-starts exactly once.
    assert parallel[4] == 10

    # The serial HotC series drops after round 1 and stays flat.
    _, hotc_series = figure.get_series("serial-hotc").as_arrays()
    assert hotc_series[0] > 3 * hotc_series[1]
    assert np.std(hotc_series[1:]) < 0.2 * np.mean(hotc_series[1:])
