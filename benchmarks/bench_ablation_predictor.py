"""Ablation — predictor variants driving the adaptive pool.

Compares three HotC configurations on the Fig 14b burst workload:

* ``reuse-only``   — no prediction loop at all (pure Algorithm 1),
* ``es-only``      — exponential smoothing without the Markov correction,
* ``es+markov``    — the paper's combined predictor.

The combined predictor should cut the later-burst cold starts that the
other two configurations cannot anticipate.
"""


from repro.core.hotc import HotC, HotCConfig
from repro.faas.platform import FaasPlatform
from repro.workloads.apps import default_catalog, qr_encoder_app
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.patterns import BurstPattern

ROUND_MS = 30_000.0


def run_variant(markov: bool, prewarm: bool, seed: int = 0):
    config = HotCConfig(
        control_interval_ms=ROUND_MS if prewarm else 0.0,
        markov_correction=markov,
        prewarm=prewarm,
    )
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        provider_factory=lambda engine: HotC(engine, config),
        jitter_sigma=0.05,
    )
    spec = qr_encoder_app(name="qr", language="python")
    platform.deploy(spec)
    platform.sim.process(platform.engine.ensure_image(spec.image))
    platform.run()
    pattern = BurstPattern(n_rounds=16, round_ms=ROUND_MS, burst_rounds=(4, 8, 12))
    run_until = None
    if prewarm:
        platform.provider.start_control_loop()
        run_until = platform.sim.now + 16 * ROUND_MS + 240_000.0
    result = WorkloadGenerator(platform).run(pattern, "qr", run_until=run_until)
    if prewarm:
        platform.provider.stop_control_loop()
        platform.run()
    return result, platform.provider.pool.total_live


def run_all_variants(seed: int = 0):
    return {
        "reuse-only": run_variant(markov=False, prewarm=False, seed=seed),
        "es-only": run_variant(markov=False, prewarm=True, seed=seed),
        "es+markov": run_variant(markov=True, prewarm=True, seed=seed),
    }


def test_bench_ablation_predictor(benchmark):
    results = benchmark.pedantic(run_all_variants, rounds=1, iterations=1)
    cold = {name: result[0].total_cold() for name, result in results.items()}
    final_pool = {name: result[1] for name, result in results.items()}
    later_burst_latency = {
        name: float(result[0].mean_latency_per_round()[[8, 12]].mean())
        for name, result in results.items()
    }
    print()
    for name in results:
        print(
            f"  {name:<11} cold={cold[name]:>3}  "
            f"later-burst latency={later_burst_latency[name]:.0f} ms  "
            f"final pool={final_pool[name]}"
        )

    # ES alone scales the pool down between bursts and pays nearly full
    # cold starts at every burst; the Markov correction keeps the pool
    # provisioned (the Fig 14b mechanism).
    assert cold["es+markov"] < 0.6 * cold["es-only"]
    assert later_burst_latency["es+markov"] < 0.6 * later_burst_latency["es-only"]
    # Reuse-only never reclaims anything, so it trivially wins cold
    # starts — but the predictor gets close while shrinking the pool.
    assert cold["es+markov"] <= 1.5 * cold["reuse-only"]
    assert final_pool["es+markov"] < final_pool["reuse-only"]
