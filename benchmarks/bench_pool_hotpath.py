"""Pool hot-path microbenchmark: indexed pool vs. the seed list scans.

Drives >= 100k acquire/release/evict cycles at 500 live containers
against both :class:`~repro.core.pool.ContainerRuntimePool` (indexed)
and :class:`~repro.core.naivepool.NaiveContainerRuntimePool` (the seed
implementation, kept as an executable baseline) and writes a
before/after comparison to ``BENCH_pool.json``.

Run:
    PYTHONPATH=src python benchmarks/bench_pool_hotpath.py
    PYTHONPATH=src python benchmarks/bench_pool_hotpath.py --check

``--check`` is the fast quality-gate mode wired into the tier-1 pytest
run (``tests/test_pool_hotpath_gate.py``): it runs a reduced cycle
count on the indexed pool only and fails if per-op costs exceed a
generous budget, so future PRs cannot quietly regress the hot path.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(SRC))

from repro.containers.container import Container, ContainerConfig  # noqa: E402
from repro.core.keys import runtime_key  # noqa: E402
from repro.core.naivepool import NaiveContainerRuntimePool  # noqa: E402
from repro.core.pool import ContainerRuntimePool, PoolLimits  # noqa: E402

#: Benchmark scale (the paper's pool cap: 500 live containers).
N_LIVE = 500
N_KEYS = 20
N_CYCLES = 100_000
N_EVICT_CALLS = 20_000

#: Quality-gate budgets (generous on purpose: they exist to catch
#: gross complexity regressions, not micro-variance between machines).
CHECK_CYCLES = 20_000
ACQUIRE_RELEASE_BUDGET_US = 50.0
EVICTION_CANDIDATE_BUDGET_US = 100.0
#: The indexed pool's extra bookkeeping (O(1) counters, deferred
#: eviction index) may cost at most this much relative to the seed
#: pool's bare list scan on the acquire/release cycle.
MAX_ACQUIRE_RELEASE_VS_NAIVE = 1.5


def build_pool(pool_class, n_live=N_LIVE, n_keys=N_KEYS, eviction="lru"):
    """A pool pre-filled with ``n_live`` available containers."""
    pool = pool_class(limits=PoolLimits(max_containers=n_live), eviction=eviction)
    keys = [
        runtime_key(ContainerConfig(image=f"img{i}:1", mem_mb=64.0 + i))
        for i in range(n_keys)
    ]
    for index in range(n_live):
        key_index = index % n_keys
        container = Container(
            f"c{index:06d}",
            ContainerConfig(image=f"img{key_index}:1", mem_mb=64.0 + key_index),
            created_at=float(index),
        )
        pool.register(container, keys[key_index], now=float(index), available=True)
    return pool, keys


def bench_acquire_release(pool, keys, cycles):
    """Seconds per acquire+release pair under bursty drain/refill load.

    Each key is drained to a miss and then refilled, so successive
    acquires must skip over the already-busy entries — the load shape a
    concurrent burst produces, and the one where a list scan degrades
    to O(key size) per lookup.
    """
    done = 0
    now = 0.0
    start = time.perf_counter()
    while done < cycles:
        for key in keys:
            taken = []
            while True:
                now += 1.0
                container = pool.acquire(key, now=now)
                if container is None:
                    break
                taken.append(container)
            for container in taken:
                pool.release(container, now=now)
            done += len(taken)
            if done >= cycles:
                break
    return (time.perf_counter() - start) / done


def bench_eviction_candidate(pool, calls):
    """Seconds per eviction_candidate call at full pool occupancy."""
    start = time.perf_counter()
    for _ in range(calls):
        pool.eviction_candidate()
    return (time.perf_counter() - start) / calls


def bench_snapshot(pool, calls=2_000):
    """Seconds per snapshot() call (predictor input)."""
    start = time.perf_counter()
    for _ in range(calls):
        pool.snapshot()
    return (time.perf_counter() - start) / calls


def run_suite(pool_class, cycles=N_CYCLES, evict_calls=N_EVICT_CALLS, n_live=N_LIVE):
    """All hot-path measurements for one implementation, in microseconds."""
    pool, keys = build_pool(pool_class, n_live=n_live)
    acquire_release_s = bench_acquire_release(pool, keys, cycles)
    eviction_s = bench_eviction_candidate(pool, evict_calls)
    snapshot_s = bench_snapshot(pool)
    return {
        "implementation": pool_class.__name__,
        "n_live": n_live,
        "n_keys": N_KEYS,
        "cycles": cycles,
        "acquire_release_us_per_cycle": round(acquire_release_s * 1e6, 4),
        "eviction_candidate_us_per_call": round(eviction_s * 1e6, 4),
        "snapshot_us_per_call": round(snapshot_s * 1e6, 4),
    }


def run_comparison(cycles=N_CYCLES, evict_calls=N_EVICT_CALLS):
    """Before (seed) / after (indexed) measurements plus speedups."""
    before = run_suite(NaiveContainerRuntimePool, cycles, evict_calls)
    after = run_suite(ContainerRuntimePool, cycles, evict_calls)
    speedup = {
        metric: round(before[metric] / after[metric], 2)
        for metric in (
            "acquire_release_us_per_cycle",
            "eviction_candidate_us_per_call",
            "snapshot_us_per_call",
        )
        if after[metric] > 0
    }
    return {"before": before, "after": after, "speedup": speedup}


def run_check(cycles=CHECK_CYCLES):
    """Fast gate: per-op budgets plus the acquire/release-vs-naive ratio.

    Returns the indexed-pool measurements; raises AssertionError on a
    budget breach or when the indexed pool's acquire/release cycle costs
    more than ``MAX_ACQUIRE_RELEASE_VS_NAIVE`` times the seed pool's.
    """
    results = run_suite(ContainerRuntimePool, cycles=cycles, evict_calls=cycles)
    acquire_us = results["acquire_release_us_per_cycle"]
    evict_us = results["eviction_candidate_us_per_call"]
    assert acquire_us < ACQUIRE_RELEASE_BUDGET_US, (
        f"pool acquire/release regressed: {acquire_us:.2f}us per cycle "
        f"exceeds the {ACQUIRE_RELEASE_BUDGET_US}us budget"
    )
    assert evict_us < EVICTION_CANDIDATE_BUDGET_US, (
        f"eviction_candidate regressed: {evict_us:.2f}us per call "
        f"exceeds the {EVICTION_CANDIDATE_BUDGET_US}us budget"
    )
    # Best-of-3 on both sides for the ratio: single runs jitter by tens
    # of percent at these sub-microsecond costs, and the gate compares
    # complexity, not machine noise.
    def best_cycle_us(pool_class):
        return min(
            bench_acquire_release(*build_pool(pool_class), cycles) * 1e6
            for _ in range(3)
        )

    best_indexed_us = best_cycle_us(ContainerRuntimePool)
    naive_us = best_cycle_us(NaiveContainerRuntimePool)
    results["naive_acquire_release_us_per_cycle"] = round(naive_us, 4)
    ratio = best_indexed_us / naive_us if naive_us else 0.0
    results["acquire_release_vs_naive"] = round(ratio, 2)
    assert ratio <= MAX_ACQUIRE_RELEASE_VS_NAIVE, (
        f"indexed pool acquire/release costs {ratio:.2f}x the naive list "
        f"scan; budget is {MAX_ACQUIRE_RELEASE_VS_NAIVE}x"
    )
    return results


def main(argv=None):
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fast budget-gate mode (no JSON written)",
    )
    parser.add_argument("--cycles", type=int, default=N_CYCLES)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[1] / "BENCH_pool.json",
    )
    args = parser.parse_args(argv)

    if args.check:
        results = run_check()
        print(json.dumps(results, indent=2))
        print("pool hot-path budgets OK")
        return 0

    comparison = run_comparison(cycles=args.cycles)
    args.output.write_text(json.dumps(comparison, indent=2) + "\n")
    print(json.dumps(comparison, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
