"""Benchmark harness configuration.

Each ``bench_figXX.py`` regenerates one paper figure under
pytest-benchmark and asserts the paper's *shape* (who wins, by roughly
what factor, where crossovers fall) — absolute values differ because the
substrate is a simulator, not the authors' testbed.

Run:  pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def render(capsys):
    """Print a figure's rendering so benchmark logs show the rows."""

    def _render(figure):
        with capsys.disabled():
            print()
            print(figure.render())

    return _render
