"""repro — reproduction of HotC (CLUSTER 2021).

"Tackling Cold Start of Serverless Applications by Efficient and
Adaptive Container Runtime Reusing" — Suo, Son, Cheng, Chen, Baidya.

The package is layered bottom-up:

- :mod:`repro.sim` — deterministic discrete-event simulation kernel.
- :mod:`repro.hardware` — host profiles and latency calibration.
- :mod:`repro.containers` — Docker-like container engine substrate.
- :mod:`repro.faas` — OpenFaaS-like serverless platform substrate.
- :mod:`repro.core` — the paper's contribution: HotC middleware,
  runtime pool, adaptive predictor, and baseline keep-alive policies.
- :mod:`repro.workloads` — application catalog and request patterns.
- :mod:`repro.metrics` — latency/error/resource metrics.
- :mod:`repro.analysis` — motivation-study analyses (Dockerfiles, cold
  start breakdowns).
- :mod:`repro.experiments` — one module per paper figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
