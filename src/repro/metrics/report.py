"""Figure-ready result containers and plain-text table rendering.

Every experiment module returns a :class:`Figure` holding named
:class:`Series` (for line plots) and/or :class:`Table` objects (for bar
charts); the benchmark harness prints them so the paper's rows/series
can be compared by eye.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Figure",
    "Series",
    "Table",
    "failure_table",
    "format_table",
    "reuse_depth_histogram",
    "reuse_table",
]

Number = Union[int, float]


@dataclass(frozen=True)
class Series:
    """One plottable series: aligned x and y arrays."""

    name: str
    x: Tuple[float, ...]
    y: Tuple[float, ...]
    x_label: str = "x"
    y_label: str = "y"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r}: x has {len(self.x)} points, "
                f"y has {len(self.y)}"
            )

    @staticmethod
    def from_arrays(name: str, x, y, x_label: str = "x", y_label: str = "y") -> "Series":
        """Build from any array-likes."""
        return Series(
            name=name,
            x=tuple(float(v) for v in np.asarray(x).ravel()),
            y=tuple(float(v) for v in np.asarray(y).ravel()),
            x_label=x_label,
            y_label=y_label,
        )

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(x, y)`` as numpy arrays."""
        return np.array(self.x), np.array(self.y)


@dataclass(frozen=True)
class Table:
    """A small result table: column headers plus value rows."""

    name: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Union[str, Number], ...], ...]

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"table {self.name!r}: row {row!r} does not match "
                    f"columns {self.columns!r}"
                )

    def column(self, name: str) -> Tuple:
        """All values of one column."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; columns: {self.columns}"
            ) from None
        return tuple(row[index] for row in self.rows)


@dataclass
class Figure:
    """Everything one paper figure's reproduction produced."""

    figure_id: str
    title: str
    series: List[Series] = field(default_factory=list)
    tables: List[Table] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_series(self, series: Series) -> "Figure":
        """Attach a series."""
        self.series.append(series)
        return self

    def add_table(self, table: Table) -> "Figure":
        """Attach a table."""
        self.tables.append(table)
        return self

    def note(self, text: str) -> "Figure":
        """Attach a free-text observation (paper-vs-measured remarks)."""
        self.notes.append(text)
        return self

    def get_series(self, name: str) -> Series:
        """Find a series by name."""
        for series in self.series:
            if series.name == name:
                return series
        known = ", ".join(s.name for s in self.series)
        raise KeyError(f"no series {name!r} in {self.figure_id}; have: {known}")

    def get_table(self, name: str) -> Table:
        """Find a table by name."""
        for table in self.tables:
            if table.name == name:
                return table
        known = ", ".join(t.name for t in self.tables)
        raise KeyError(f"no table {name!r} in {self.figure_id}; have: {known}")

    def render(self) -> str:
        """Human-readable text rendering of the whole figure."""
        lines = [f"=== {self.figure_id}: {self.title} ==="]
        for table in self.tables:
            lines.append(f"-- {table.name} --")
            lines.append(format_table(table.columns, table.rows))
        for series in self.series:
            lines.append(
                f"-- series {series.name} ({series.x_label} -> {series.y_label}) --"
            )
            pairs = ", ".join(
                f"({x:g}, {y:.4g})" for x, y in zip(series.x, series.y)
            )
            lines.append(pairs if pairs else "(empty)")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def failure_table(
    fault_stats=None,
    engine_stats: Sequence = (),
    cluster_stats=None,
    traces=None,
    name: str = "failures",
) -> Table:
    """Injected vs. observed vs. recovered failure counters as a Table.

    Duck-typed so any combination of sources works: ``fault_stats`` is a
    :class:`~repro.faults.plan.FaultStats` (what the plan injected),
    ``engine_stats`` an iterable of
    :class:`~repro.containers.engine.EngineStats` (what each engine saw
    and what the middleware did about it), ``cluster_stats`` a
    :class:`~repro.core.cluster.ClusterStats` (failovers), and
    ``traces`` a :class:`~repro.faas.tracing.TraceCollector` (terminal
    request outcomes).  Missing sources contribute zero rows.
    """

    def engine_sum(attr: str) -> int:
        return sum(int(getattr(s, attr, 0)) for s in engine_stats)

    rows: List[Tuple[Union[str, Number], ...]] = []
    if fault_stats is not None:
        for kind, count in sorted(fault_stats.as_dict().items()):
            rows.append(("injected", kind, int(count)))
    for attr in ("boot_failures", "transient_errors", "exec_crashes"):
        rows.append(("observed", attr, engine_sum(attr)))
    for attr in (
        "boot_retries",
        "hedged_boots",
        "breaker_opens",
        "breaker_fastfails",
        "request_retries",
        "requests_failed",
        "requests_deadline",
    ):
        rows.append(("recovery", attr, engine_sum(attr)))
    if cluster_stats is not None:
        rows.append(
            ("recovery", "failovers", int(getattr(cluster_stats, "failovers", 0)))
        )
        rows.append(
            ("recovery", "hosts_lost", int(getattr(cluster_stats, "hosts_lost", 0)))
        )
    if traces is not None:
        for outcome, count in sorted(traces.outcome_counts().items()):
            rows.append(("outcome", outcome, int(count)))
    return Table(
        name=name,
        columns=("class", "counter", "count"),
        rows=tuple(rows),
    )


#: Reuse-depth histogram bucket edges: [lo, hi) per label, last open.
_DEPTH_BUCKETS = (
    ("0", 0, 1),
    ("1", 1, 2),
    ("2-3", 2, 4),
    ("4-7", 4, 8),
    ("8-15", 8, 16),
    ("16-31", 16, 32),
    ("32-63", 32, 64),
    ("64+", 64, None),
)


def reuse_depth_histogram(traces) -> dict:
    """Bucketed reuse-depth counts over terminal traces, plus the max.

    Depth is ``trace.reuse_count`` — how many requests the serving
    container had executed before this one.  Deep tails are where
    container aging lives (leaks, drift), so the run report surfaces
    the distribution, not just the hit ratio.  Traces without the field
    (older captures) count as depth 0.
    """
    counts = [0] * len(_DEPTH_BUCKETS)
    max_depth = 0
    seen = 0
    for trace in traces:
        depth = int(getattr(trace, "reuse_count", 0) or 0)
        seen += 1
        if depth > max_depth:
            max_depth = depth
        for index, (_, lo, hi) in enumerate(_DEPTH_BUCKETS):
            if depth >= lo and (hi is None or depth < hi):
                counts[index] += 1
                break
    histogram = {
        label: counts[index]
        for index, (label, _, _) in enumerate(_DEPTH_BUCKETS)
        if counts[index]
    }
    if seen:
        histogram["max"] = max_depth
    return histogram


def reuse_table(
    pool_stats: Sequence = (),
    engine_stats: Sequence = (),
    cluster_stats=None,
    traces=None,
    name: str = "reuse",
) -> Table:
    """The three-way reuse hierarchy as a Table.

    Breaks cold starts eliminated via the relaxed fallback and
    inter-key repurposing out from exact-key hits, so the paper's
    hit-ratio definition (exact-key reuse over lookups) stays intact
    next to the extended reuse paths.  Duck-typed like
    :func:`failure_table`: ``pool_stats`` is an iterable of
    :class:`~repro.core.pool.PoolStats`, ``engine_stats`` of
    :class:`~repro.containers.engine.EngineStats`, ``cluster_stats`` a
    :class:`~repro.core.cluster.ClusterStats`, ``traces`` a
    :class:`~repro.faas.tracing.TraceCollector`.  Missing sources
    contribute zero rows.
    """

    def total(stats: Sequence, attr: str) -> int:
        return sum(int(getattr(s, attr, 0)) for s in stats)

    rows: List[Tuple[Union[str, Number], ...]] = []
    if pool_stats:
        hits = total(pool_stats, "hits")
        misses = total(pool_stats, "misses")
        relaxed = total(pool_stats, "relaxed_hits")
        repurposed = total(pool_stats, "repurposed")
        lookups = hits + misses
        rows.append(("pool", "exact_hits", hits))
        rows.append(("pool", "misses", misses))
        rows.append(("pool", "relaxed_hits", relaxed))
        rows.append(("pool", "repurposed", repurposed))
        rows.append(("pool", "cold_starts_eliminated", relaxed + repurposed))
        rows.append(
            ("pool", "exact_hit_ratio", round(hits / lookups, 4) if lookups else 0.0)
        )
    if engine_stats:
        rows.append(("engine", "boots", total(engine_stats, "boots")))
        rows.append(("engine", "cold_execs", total(engine_stats, "cold_execs")))
        rows.append(("engine", "warm_execs", total(engine_stats, "warm_execs")))
        rows.append(("engine", "relaxed_hits", total(engine_stats, "relaxed_hits")))
        rows.append(("engine", "repurposes", total(engine_stats, "repurposes")))
    if cluster_stats is not None:
        rows.append(
            ("cluster", "reuse_routed", int(getattr(cluster_stats, "reuse_routed", 0)))
        )
        rows.append(
            ("cluster", "cold_routed", int(getattr(cluster_stats, "cold_routed", 0)))
        )
        rows.append(
            ("cluster", "relaxed_hits", int(getattr(cluster_stats, "relaxed_hits", 0)))
        )
        rows.append(
            ("cluster", "repurposes", int(getattr(cluster_stats, "repurposes", 0)))
        )
    if traces is not None:
        reuse_counts: dict = {}
        for trace in traces:
            kind = getattr(trace, "reuse", "") or "cold"
            reuse_counts[kind] = reuse_counts.get(kind, 0) + 1
        for kind, count in sorted(reuse_counts.items()):
            rows.append(("requests", kind, int(count)))
        for label, count in reuse_depth_histogram(traces).items():
            rows.append(("reuse_depth", label, int(count)))
    return Table(
        name=name,
        columns=("source", "counter", "count"),
        rows=tuple(rows),
    )


def _format_cell(value: Union[str, Number]) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        return f"{value:.4g}"
    return str(value)


def format_table(
    columns: Sequence[str], rows: Sequence[Sequence[Union[str, Number]]]
) -> str:
    """Render an aligned plain-text table."""
    header = [str(c) for c in columns]
    body = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = [render_row(header), render_row(["-" * w for w in widths])]
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)
