"""Metrics: latency statistics, prediction errors, resource monitoring,
and figure-ready report formatting."""

from repro.metrics.latency import (
    EMPTY_SUMMARY,
    LatencySummary,
    empirical_cdf,
    percentile,
    summarize_latencies,
    tail_ratio,
)
from repro.metrics.errors import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    relative_errors,
    root_mean_square_error,
    symmetric_mean_absolute_percentage_error,
)
from repro.metrics.monitor import ResourceMonitor
from repro.metrics.billing import BillingModel, CostReport
from repro.metrics.report import (
    Figure,
    Series,
    Table,
    failure_table,
    format_table,
    reuse_table,
)

__all__ = [
    "BillingModel",
    "CostReport",
    "EMPTY_SUMMARY",
    "Figure",
    "LatencySummary",
    "ResourceMonitor",
    "Series",
    "Table",
    "empirical_cdf",
    "failure_table",
    "reuse_table",
    "format_table",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "percentile",
    "relative_errors",
    "root_mean_square_error",
    "summarize_latencies",
    "symmetric_mean_absolute_percentage_error",
    "tail_ratio",
]
