"""Periodic resource sampling (drives Fig 15's usage timelines)."""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.containers.engine import ContainerEngine

__all__ = ["ResourceMonitor"]


class ResourceMonitor:
    """Samples a host's resource ledger on a fixed period.

    The samples land in the engine's
    :class:`~repro.sim.resources.ResourceTimeline`; convenience accessors
    convert them into the percentage series Fig 15 plots.
    """

    def __init__(self, engine: ContainerEngine, period_ms: float = 1_000.0) -> None:
        if period_ms <= 0:
            raise ValueError("period_ms must be positive")
        self.engine = engine
        self.period_ms = period_ms
        self._running = False
        self._generation = 0

    def start(self) -> None:
        """Begin sampling; takes an immediate first sample. Idempotent.

        A stop/start cycle bumps the generation counter so a stale loop
        still pending its next sample exits instead of doubling the
        sampling rate.
        """
        if self._running:
            return
        self._running = True
        self._generation += 1
        self.engine.sample_resources()
        self.engine.sim.process(
            self._loop(self._generation), name="resource-monitor"
        )

    def stop(self) -> None:
        """Stop after the pending sample."""
        self._running = False

    def _loop(self, generation: int) -> Generator:
        while self._running and generation == self._generation:
            yield self.engine.sim.timeout(self.period_ms)
            if not self._running or generation != self._generation:
                break
            self.engine.sample_resources()

    # -- series accessors ---------------------------------------------------
    @property
    def times_s(self) -> np.ndarray:
        """Sample times in seconds."""
        return self.engine.resources.timeline.times / 1_000.0

    @property
    def cpu_percent(self) -> np.ndarray:
        """CPU usage as percent of host capacity."""
        total = self.engine.resources.cpu_millicores_total
        return 100.0 * self.engine.resources.timeline.cpu / total

    @property
    def mem_mb(self) -> np.ndarray:
        """Memory usage in MB."""
        return self.engine.resources.timeline.mem

    @property
    def mem_percent(self) -> np.ndarray:
        """Memory usage as percent of host memory."""
        total = self.engine.resources.mem_mb_total
        return 100.0 * self.engine.resources.timeline.mem / total

    @property
    def swap_mb(self) -> np.ndarray:
        """Swap usage in MB."""
        return self.engine.resources.timeline.swap
