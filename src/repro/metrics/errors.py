"""Prediction error metrics (Fig 10's relative-error analysis)."""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "relative_errors",
    "root_mean_square_error",
    "symmetric_mean_absolute_percentage_error",
]


def _paired(actual, predicted):
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ValueError(f"shape mismatch: actual {a.shape} vs predicted {p.shape}")
    if a.size == 0:
        raise ValueError("need at least one point")
    if np.any(~np.isfinite(a)) or np.any(~np.isfinite(p)):
        raise ValueError("inputs must be finite")
    return a, p


def relative_errors(actual, predicted, floor: float = 1.0) -> np.ndarray:
    """|predicted - actual| / max(|actual|, floor), element-wise.

    The ``floor`` guards near-zero actuals (a container count of zero
    would otherwise make any prediction an infinite error) — the same
    convention the paper's percentages imply.
    """
    if floor <= 0:
        raise ValueError("floor must be positive")
    a, p = _paired(actual, predicted)
    return np.abs(p - a) / np.maximum(np.abs(a), floor)


def mean_absolute_percentage_error(actual, predicted, floor: float = 1.0) -> float:
    """Mean of :func:`relative_errors`, as a fraction (0.29 = 29%)."""
    return float(np.mean(relative_errors(actual, predicted, floor)))


def mean_absolute_error(actual, predicted) -> float:
    """Mean absolute error."""
    a, p = _paired(actual, predicted)
    return float(np.mean(np.abs(p - a)))


def root_mean_square_error(actual, predicted) -> float:
    """Root mean squared error."""
    a, p = _paired(actual, predicted)
    return float(np.sqrt(np.mean((p - a) ** 2)))


def symmetric_mean_absolute_percentage_error(actual, predicted) -> float:
    """sMAPE as a fraction in [0, 1]: mean of |p-a| / (|a| + |p|).

    Pairs where both sides are zero contribute zero error (a perfect
    forecast of no demand), avoiding the 0/0 singularity of the naive
    formula.  Unlike MAPE this is bounded and treats over- and
    under-forecasts symmetrically, which suits bursty demand series
    where actuals regularly touch zero.
    """
    a, p = _paired(actual, predicted)
    denom = np.abs(a) + np.abs(p)
    out = np.zeros_like(denom)
    nonzero = denom > 0
    out[nonzero] = np.abs(p - a)[nonzero] / denom[nonzero]
    return float(np.mean(out))
