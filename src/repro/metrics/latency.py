"""Latency statistics: percentiles, CDFs, tail ratios (Fig 1b and friends)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "LatencySummary",
    "empirical_cdf",
    "percentile",
    "summarize_latencies",
    "tail_ratio",
]


def _as_array(values) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError("latencies must be a 1-D sequence")
    if array.size == 0:
        raise ValueError("latencies must be non-empty")
    if np.any(~np.isfinite(array)):
        raise ValueError("latencies must be finite")
    if np.any(array < 0):
        raise ValueError("latencies must be >= 0")
    return array


def percentile(values, q: float) -> float:
    """The q-th percentile (0..100), linear interpolation."""
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(_as_array(values), q))


def empirical_cdf(values) -> Tuple[np.ndarray, np.ndarray]:
    """``(x, p)`` of the empirical CDF: P[X <= x[i]] = p[i].

    The Fig 1b long-tail comparison plots exactly this.
    """
    array = np.sort(_as_array(values))
    probabilities = np.arange(1, array.size + 1, dtype=float) / array.size
    return array, probabilities


def tail_ratio(values, tail_q: float = 99.0, reference_q: float = 50.0) -> float:
    """p``tail_q`` / p``reference_q`` — the long-tail severity measure.

    For the paper's local-function baseline this is ~1 ("99% of latency
    is almost the same"); cold starts inflate it.
    """
    reference = percentile(values, reference_q)
    if reference == 0:
        raise ValueError("reference percentile is zero")
    return percentile(values, tail_q) / reference


@dataclass(frozen=True)
class LatencySummary:
    """Standard latency digest of one experiment arm."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    @property
    def max_over_min(self) -> float:
        """Fig 1a's "highest vs lowest" comparison."""
        return self.maximum / self.minimum if self.minimum > 0 else float("inf")

    @property
    def max_over_mean(self) -> float:
        """Fig 1a's "highest vs average" comparison."""
        return self.maximum / self.mean if self.mean > 0 else float("inf")


def summarize_latencies(values) -> LatencySummary:
    """Compute the digest for a latency sample."""
    array = _as_array(values)
    return LatencySummary(
        count=int(array.size),
        mean=float(array.mean()),
        p50=float(np.percentile(array, 50)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
        minimum=float(array.min()),
        maximum=float(array.max()),
    )
