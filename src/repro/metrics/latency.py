"""Latency statistics: percentiles, CDFs, tail ratios (Fig 1b and friends)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "EMPTY_SUMMARY",
    "LatencySummary",
    "empirical_cdf",
    "percentile",
    "summarize_latencies",
    "tail_ratio",
]


def _as_array(values, allow_empty: bool = False) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError("latencies must be a 1-D sequence")
    if array.size == 0 and not allow_empty:
        raise ValueError("latencies must be non-empty")
    if np.any(~np.isfinite(array)):
        raise ValueError("latencies must be finite")
    if np.any(array < 0):
        raise ValueError("latencies must be >= 0")
    return array


def percentile(values, q: float) -> float:
    """The q-th percentile (0..100), linear interpolation."""
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(_as_array(values), q))


def empirical_cdf(values) -> Tuple[np.ndarray, np.ndarray]:
    """``(x, p)`` of the empirical CDF: P[X <= x[i]] = p[i].

    The Fig 1b long-tail comparison plots exactly this.
    """
    array = np.sort(_as_array(values))
    probabilities = np.arange(1, array.size + 1, dtype=float) / array.size
    return array, probabilities


def tail_ratio(values, tail_q: float = 99.0, reference_q: float = 50.0) -> float:
    """p``tail_q`` / p``reference_q`` — the long-tail severity measure.

    For the paper's local-function baseline this is ~1 ("99% of latency
    is almost the same"); cold starts inflate it.
    """
    reference = percentile(values, reference_q)
    if reference == 0:
        raise ValueError("reference percentile is zero")
    return percentile(values, tail_q) / reference


@dataclass(frozen=True)
class LatencySummary:
    """Standard latency digest of one experiment arm.

    A summary with ``count == 0`` (an all-shed or all-failed arm) is a
    legal value: every statistic is NaN and the ratio properties return
    NaN rather than dividing by nothing, so report tables can carry
    explicit ``n=0`` rows.
    """

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    @property
    def max_over_min(self) -> float:
        """Fig 1a's "highest vs lowest" comparison (NaN when empty)."""
        if self.count == 0:
            return float("nan")
        return self.maximum / self.minimum if self.minimum > 0 else float("inf")

    @property
    def max_over_mean(self) -> float:
        """Fig 1a's "highest vs average" comparison (NaN when empty)."""
        if self.count == 0:
            return float("nan")
        return self.maximum / self.mean if self.mean > 0 else float("inf")


#: The digest of a sample with no successful observations.
EMPTY_SUMMARY = LatencySummary(
    count=0,
    mean=float("nan"),
    p50=float("nan"),
    p90=float("nan"),
    p99=float("nan"),
    minimum=float("nan"),
    maximum=float("nan"),
)


def summarize_latencies(values, allow_empty: bool = False) -> LatencySummary:
    """Compute the digest for a latency sample.

    An empty sample raises by default (matching :func:`percentile`);
    with ``allow_empty=True`` it yields :data:`EMPTY_SUMMARY` instead —
    the explicit ``n=0`` row an all-shed tenant reports.  A
    single-sample input is well-defined: every percentile, the minimum
    and the maximum all equal that one observation.
    """
    array = _as_array(values, allow_empty=allow_empty)
    if array.size == 0:
        return EMPTY_SUMMARY
    return LatencySummary(
        count=int(array.size),
        mean=float(array.mean()),
        p50=float(np.percentile(array, 50)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
        minimum=float(array.min()),
        maximum=float(array.max()),
    )
