"""FaaS billing model: what cold starts cost in money, not just time.

Section I: "As the FaaS platforms usually charge based on the length of
the request, the cold start might incur unnecessary costs for the
users."  Section III-B adds that keep-warm pinging "might also
introduce unnecessary fees".

The model follows the Lambda-style scheme: each request is billed for
its *function-side duration* (initialisation included — that is the
point) rounded up to a billing quantum, multiplied by the memory size;
warm-up pings are billed like ordinary invocations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.faas.tracing import RequestTrace

__all__ = ["BillingModel", "CostReport"]


@dataclass(frozen=True)
class CostReport:
    """Billed cost decomposition for one experiment arm."""

    requests: int
    billed_ms: float
    exec_ms: float
    overhead_ms: float
    cost_usd: float
    ping_cost_usd: float = 0.0

    @property
    def total_usd(self) -> float:
        """Request cost plus keep-warm ping fees."""
        return self.cost_usd + self.ping_cost_usd

    @property
    def overhead_fraction(self) -> float:
        """Share of the billed time that was not business logic."""
        return self.overhead_ms / self.billed_ms if self.billed_ms else 0.0


@dataclass(frozen=True)
class BillingModel:
    """Lambda-style duration x memory pricing.

    Parameters
    ----------
    usd_per_gb_second:
        Price per GB-second of billed duration (AWS-like default).
    billing_quantum_ms:
        Durations round up to this quantum (1 ms on modern Lambda,
        100 ms historically — the paper's era).
    """

    usd_per_gb_second: float = 0.0000166667
    billing_quantum_ms: float = 100.0

    def __post_init__(self) -> None:
        if self.usd_per_gb_second <= 0:
            raise ValueError("usd_per_gb_second must be positive")
        if self.billing_quantum_ms <= 0:
            raise ValueError("billing_quantum_ms must be positive")

    def billed_duration_ms(self, trace: RequestTrace) -> float:
        """The function-side duration the provider bills: (2) -> (5).

        Includes initiation — cold starts are paid for.
        """
        duration = trace.t5_watchdog_out - trace.t2_watchdog_in
        quanta = math.ceil(duration / self.billing_quantum_ms - 1e-12)
        return max(1, quanta) * self.billing_quantum_ms

    def request_cost_usd(self, trace: RequestTrace, mem_mb: float) -> float:
        """Billed cost of one request at a given memory size."""
        if mem_mb <= 0:
            raise ValueError("mem_mb must be positive")
        gb_seconds = (mem_mb / 1024.0) * (self.billed_duration_ms(trace) / 1000.0)
        return gb_seconds * self.usd_per_gb_second

    def report(
        self,
        traces: Iterable[RequestTrace],
        mem_mb: float,
        ping_count: int = 0,
        ping_ms: float = 100.0,
    ) -> CostReport:
        """Aggregate cost over an experiment arm.

        ``ping_count``/``ping_ms`` bill the keep-warm pings of a
        periodic-warm-up policy at the same rate.
        """
        traces = list(traces)
        if not traces:
            raise ValueError("no traces to bill")
        billed = sum(self.billed_duration_ms(t) for t in traces)
        executed = sum(t.function_exec_ms for t in traces)
        cost = sum(self.request_cost_usd(t, mem_mb) for t in traces)
        ping_quanta = math.ceil(ping_ms / self.billing_quantum_ms)
        ping_cost = (
            ping_count
            * ping_quanta
            * self.billing_quantum_ms
            / 1000.0
            * (mem_mb / 1024.0)
            * self.usd_per_gb_second
        )
        return CostReport(
            requests=len(traces),
            billed_ms=float(billed),
            exec_ms=float(executed),
            overhead_ms=float(billed - executed),
            cost_usd=float(cost),
            ping_cost_usd=float(ping_cost),
        )
