"""Run-report entry point: ``python -m repro.metrics <out-dir>``.

Runs a fully instrumented HotC workload — the Fig 14b burst pattern with
the adaptive control loop on — with an :class:`~repro.obs.Observatory`
and a periodic :class:`~repro.obs.Snapshotter` attached, then writes the
complete observability bundle to ``<out-dir>``:

* ``metrics.prom``     — Prometheus text exposition of all metrics
* ``events.jsonl``     — the typed event log, one JSON object per line
* ``snapshots.jsonl``  — periodic registry snapshots at sim time
* ``trace.json``       — Chrome trace-event JSON (load in Perfetto)
* ``accuracy.txt/.json`` — per-key forecast accuracy (MAE / sMAPE)
* ``summary.json``     — run totals (events, outcomes, latency digest)
"""

from __future__ import annotations

import argparse
import sys

from repro.core.hotc import HotC, HotCConfig
from repro.faas.platform import FaasPlatform
from repro.obs import Observatory, Snapshotter, write_run_report
from repro.workloads.apps import default_catalog, qr_encoder_app
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.patterns import BurstPattern


def run_instrumented_workload(
    seed: int = 0,
    n_rounds: int = 12,
    round_ms: float = 30_000.0,
    snapshot_period_ms: float = 5_000.0,
):
    """Run the burst workload with full observability attached.

    Returns ``(platform, observatory, snapshotter)`` after the run has
    drained; the provider's control loop is stopped and the platform
    shut down.
    """
    catalog = default_catalog()

    def provider_factory(engine):
        return HotC(engine, HotCConfig(control_interval_ms=round_ms))

    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        provider_factory=provider_factory,
        jitter_sigma=0.05,
    )
    observatory = Observatory()
    platform.attach_observatory(observatory)
    snapshotter = Snapshotter(
        platform.sim, observatory, period_ms=snapshot_period_ms
    )

    spec = qr_encoder_app(name="qr-python", language="python")
    platform.deploy(spec)
    platform.sim.process(platform.engine.ensure_image(spec.image))
    platform.run()

    pattern = BurstPattern(
        n_rounds=n_rounds,
        round_ms=round_ms,
        burst_rounds=tuple(r for r in (4, 8) if r < n_rounds),
    )
    snapshotter.start()
    platform.provider.start_control_loop()
    last_round = max(time for time, _ in pattern.rounds())
    run_until = platform.sim.now + last_round + 4 * round_ms + 120_000.0
    WorkloadGenerator(platform).run(pattern, spec.name, run_until=run_until)
    platform.provider.stop_control_loop()
    snapshotter.stop()
    platform.run()
    platform.shutdown()
    return platform, observatory, snapshotter


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics",
        description="Run an instrumented HotC workload and write the "
        "observability bundle (Prometheus text, JSONL snapshots, "
        "Perfetto trace, forecast-accuracy table).",
    )
    parser.add_argument("out", help="output directory (created if missing)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--rounds", type=int, default=12, help="workload rounds (default 12)"
    )
    parser.add_argument(
        "--round-ms",
        type=float,
        default=30_000.0,
        help="round / control interval length in sim ms (default 30000)",
    )
    parser.add_argument(
        "--snapshot-ms",
        type=float,
        default=5_000.0,
        help="registry snapshot period in sim ms (default 5000)",
    )
    args = parser.parse_args(argv)

    platform, observatory, snapshotter = run_instrumented_workload(
        seed=args.seed,
        n_rounds=args.rounds,
        round_ms=args.round_ms,
        snapshot_period_ms=args.snapshot_ms,
    )
    paths = write_run_report(
        args.out,
        observatory,
        traces=platform.traces,
        controller=platform.provider.controller,
        snapshotter=snapshotter,
    )
    outcomes = platform.traces.outcome_counts()
    print(f"requests: {len(platform.traces)} ({outcomes})")
    print(f"events:   {observatory.events.total_appended}")
    for name, path in sorted(paths.items()):
        print(f"wrote {name}: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
