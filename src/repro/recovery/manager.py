"""Control-plane crash/recovery orchestration.

:class:`RecoveryManager` sits between the fault plan and a *provider*
(a :class:`~repro.core.hotc.HotC` or
:class:`~repro.core.cluster.ClusterHotC`) and owns the crash/recover
protocol:

* **checkpoint** — every ``checkpoint_every_ticks`` control ticks the
  provider's recoverable state is snapshotted into a versioned,
  bounded :class:`~repro.recovery.checkpoint.CheckpointStore`.
* **crash** — the provider forgets all indexed control-plane state
  (pool metadata, busy counters, predictors, breakers, learned AIMD
  limits).  Containers, in-flight requests and in-flight boots are
  data-plane and keep running; new acquires fail fast until recovery.
* **recover** — the provider restores learned state from the latest
  checkpoint, then runs an anti-entropy sweep against the engine's
  live containers (ground truth): leased containers are re-adopted as
  busy, idle reusable ones rejoin the pool (or are retired if over
  capacity), checkpoint entries with no live container are purged as
  phantoms.  Every divergence becomes a typed :class:`RepairEvent`.
* **audit** — on every control tick the provider's
  ``check_consistency`` runs as a background invariant auditor, so a
  reconciliation bug surfaces at the next tick instead of at the end
  of a run.

The manager is strictly opt-in: nothing constructs one unless the
caller does, and an attached-but-never-crashed manager only adds
synchronous bookkeeping on control ticks (no extra sim events), so
request traces are unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.events import EventKind
from repro.recovery.checkpoint import Checkpoint, CheckpointStore

__all__ = ["RecoveryConfig", "RecoveryManager", "RepairEvent", "RepairKind"]


class RepairKind(enum.Enum):
    """What the anti-entropy sweep did about one divergence."""

    #: A leased live container was re-registered as busy.
    ADOPTED_BUSY = "adopted_busy"
    #: An idle reusable container rejoined the pool as available.
    ADOPTED_IDLE = "adopted_idle"
    #: A container mid-cleanup was re-registered unavailable; its
    #: in-flight recycle process will release it when done.
    ADOPTED_RECYCLING = "adopted_recycling"
    #: An idle container found over the capacity limit was retired.
    RETIRED_ORPHAN = "retired_orphan"
    #: A checkpoint entry had no live container behind it.
    PURGED_PHANTOM = "purged_phantom"
    #: A live container in a state the sweep cannot explain.
    ANOMALY = "anomaly"


@dataclass(frozen=True)
class RepairEvent:
    """One typed repair performed during recovery."""

    kind: RepairKind
    host: str
    container_id: str
    key: str = ""
    detail: str = ""


@dataclass(frozen=True)
class RecoveryConfig:
    """Tunables of the recovery manager."""

    #: Take a checkpoint every this many control ticks.
    checkpoint_every_ticks: int = 5
    #: Retained checkpoint versions (older ones age out).
    keep_checkpoints: int = 3
    #: Run the consistency auditor on every control tick.
    audit_every_tick: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_every_ticks < 1:
            raise ValueError("checkpoint_every_ticks must be >= 1")


@dataclass
class RecoveryStats:
    """Counters the recovery soak asserts over."""

    checkpoints_taken: int = 0
    crashes: int = 0
    recoveries: int = 0
    audits: int = 0
    repairs: int = 0
    phantoms_purged: int = 0
    orphans_retired: int = 0
    anomalies: int = 0


class RecoveryManager:
    """Checkpoints, crash/recover, and background consistency audits."""

    def __init__(self, provider, config: Optional[RecoveryConfig] = None) -> None:
        self.provider = provider
        self.sim = provider.sim
        self.config = config or RecoveryConfig()
        self.store = CheckpointStore(keep=self.config.keep_checkpoints)
        self.stats = RecoveryStats()
        #: Every repair ever performed, in order.
        self.repairs: List[RepairEvent] = []
        #: Divergences the post-recovery verification could not explain
        #: (the soak asserts this stays empty).
        self.unrepaired: List[str] = []
        self._ticks = 0
        self._last_tick_at: Optional[float] = None
        provider.attach_recovery(self)

    # -- helpers -----------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """Whether the control plane is currently down."""
        return bool(self.provider._crashed)

    @property
    def _obs(self):
        return getattr(self.provider, "obs", None)

    @property
    def _admission(self):
        return getattr(self.provider, "admission", None)

    # -- control-tick hook -------------------------------------------------
    def on_control_tick(self, now: float) -> None:
        """Audit every tick; checkpoint on the configured cadence.

        Cluster hosts share one control tick timestamp, so calls at the
        same sim instant collapse into one.
        """
        if self.crashed:
            return
        if self._last_tick_at is not None and now == self._last_tick_at:
            return
        self._last_tick_at = now
        self._ticks += 1
        if self.config.audit_every_tick:
            self.audit()
        if self._ticks % self.config.checkpoint_every_ticks == 0:
            self.checkpoint(now)

    def audit(self) -> None:
        """Run the provider's invariant checks (raises on violation)."""
        self.provider.check_consistency()
        self.stats.audits += 1

    # -- checkpointing -----------------------------------------------------
    def checkpoint(self, now: Optional[float] = None) -> Checkpoint:
        """Snapshot the provider's recoverable state; returns it."""
        if now is None:
            now = self.sim.now
        hosts = self.provider.snapshot_state()
        limits = {}
        admission = self._admission
        if admission is not None:
            limits = admission.export_limits()
        checkpoint = self.store.save(now, hosts, aimd_limits=limits)
        self.stats.checkpoints_taken += 1
        obs = self._obs
        if obs is not None:
            obs.emit(
                EventKind.CHECKPOINT,
                t=now,
                version=checkpoint.version,
                entries=checkpoint.n_entries,
            )
            obs.counter(
                "checkpoints_total",
                help="Control-plane checkpoints taken",
            ).inc()
        return checkpoint

    # -- crash / recover (called by the fault plan) ------------------------
    def crash(self) -> bool:
        """Wipe the control plane; returns False if already crashed."""
        if self.crashed:
            return False
        now = self.sim.now
        lost = self.provider.crash_control_plane()
        admission = self._admission
        if admission is not None:
            # Learned AIMD limits are control-plane memory too.
            admission.reset_limits()
        self.stats.crashes += 1
        obs = self._obs
        if obs is not None:
            obs.emit(
                EventKind.RECOVERY, t=now, phase="crash", entries_lost=lost
            )
            obs.counter(
                "controller_crashes_total",
                help="Control-plane crashes injected",
            ).inc()
        return True

    def recover(self) -> List[RepairEvent]:
        """Rebuild the control plane from checkpoint + ground truth."""
        if not self.crashed:
            return []
        now = self.sim.now
        checkpoint = self.store.latest()
        repairs = self.provider.recover_from(checkpoint)
        admission = self._admission
        if admission is not None and checkpoint is not None:
            admission.restore_limits(checkpoint.aimd_limits)
        self.repairs.extend(repairs)
        self.stats.recoveries += 1
        self.stats.repairs += len(repairs)
        for repair in repairs:
            if repair.kind is RepairKind.PURGED_PHANTOM:
                self.stats.phantoms_purged += 1
            elif repair.kind is RepairKind.RETIRED_ORPHAN:
                self.stats.orphans_retired += 1
            elif repair.kind is RepairKind.ANOMALY:
                self.stats.anomalies += 1
        problems = self.verify()
        obs = self._obs
        if obs is not None:
            obs.emit(
                EventKind.RECOVERY,
                t=now,
                phase="recover",
                version=checkpoint.version if checkpoint is not None else 0,
                repairs=len(repairs),
                unrepaired=len(problems),
            )
            obs.counter(
                "controller_recoveries_total",
                help="Control-plane recoveries completed",
            ).inc()
            for repair in repairs:
                obs.emit(
                    EventKind.REPAIR,
                    t=now,
                    action=repair.kind.value,
                    host=repair.host,
                    container=repair.container_id,
                    key=repair.key,
                )
                obs.counter(
                    "recovery_repairs_total",
                    help="Anti-entropy repairs by action",
                    action=repair.kind.value,
                ).inc()
        return repairs

    def verify(self) -> List[str]:
        """Post-recovery sweep: invariants plus ground-truth divergence.

        Anything found here means reconciliation missed something; the
        problems are recorded in :attr:`unrepaired` for the soak to
        assert against.
        """
        problems: List[str] = []
        try:
            self.provider.check_consistency()
        except AssertionError as exc:
            problems.append(f"consistency: {exc}")
        problems.extend(self.provider.scan_divergences())
        self.unrepaired.extend(problems)
        return problems
