"""Control-plane checkpointing, crash recovery, and anti-entropy.

The HotC control plane is an index over ground truth that lives
elsewhere: the containers themselves (and their leases) are data-plane
state held by the engines.  This package makes the index crash-safe:

* :mod:`repro.recovery.checkpoint` — versioned snapshots of the
  learned state (pool metadata, predictors, breakers, AIMD limits)
  with bounded retention.
* :mod:`repro.recovery.manager` — the crash/recover protocol plus a
  background auditor that runs the provider's consistency checks on
  every control tick.

Recovery is reconstruction, not replay: after a crash the pool is
rebuilt from ``engine.live_containers()`` (adopting leased containers
as busy and idle ones as available), and the checkpoint is only used
for state that has no ground truth — forecasts, breaker states, AIMD
limits — and to classify divergences as typed repairs.

Strictly opt-in: without a constructed :class:`RecoveryManager` no
checkpoint, audit, or recovery code runs.
"""

from repro.recovery.checkpoint import (
    Checkpoint,
    CheckpointStore,
    HostCheckpoint,
    PoolEntrySnapshot,
)
from repro.recovery.manager import (
    RecoveryConfig,
    RecoveryManager,
    RepairEvent,
    RepairKind,
)

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "HostCheckpoint",
    "PoolEntrySnapshot",
    "RecoveryConfig",
    "RecoveryManager",
    "RepairEvent",
    "RepairKind",
]
