"""Versioned control-plane checkpoints.

A checkpoint is a pure-data snapshot of everything the middleware
*learned* and would otherwise lose in a crash: which containers it was
tracking (and whether they were idle), the first-seen config per
runtime key, the adaptive predictor's state, each key's circuit
breaker, and the admission controller's AIMD limits.

What a checkpoint deliberately does **not** try to be is the truth:
containers boot, die and change hands between checkpoints, so recovery
treats the engine's live-container list as ground truth and uses the
checkpoint only for (a) state that has no ground truth to rebuild from
— predictor, breakers, AIMD limits — and (b) classifying divergences
(phantom entries, post-checkpoint arrivals) during the anti-entropy
sweep.

Predictor and breaker state are stored as deep copies, and deep-copied
again on restore, so a retained checkpoint is never mutated by the
recovered control plane.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "HostCheckpoint",
    "PoolEntrySnapshot",
]


@dataclass(frozen=True)
class PoolEntrySnapshot:
    """One pooled container as the checkpoint saw it."""

    container_id: str
    key: object
    available: bool


@dataclass(frozen=True)
class HostCheckpoint:
    """One host's recoverable control-plane state."""

    host: str
    entries: Tuple[PoolEntrySnapshot, ...]
    #: First-seen config per runtime key (prewarm boots need these).
    configs: Dict[object, object]
    #: Deep copy of the host's AdaptivePoolController.
    controller: object
    #: Deep copies of the per-key circuit breakers.
    breakers: Dict[object, object]
    #: Relaxed-fallback reuse count (a stat the sweep cannot rebuild).
    partial_hits: int = 0


@dataclass(frozen=True)
class Checkpoint:
    """One versioned snapshot of the whole control plane."""

    version: int
    taken_at: float
    hosts: Tuple[HostCheckpoint, ...]
    #: Per-function AIMD concurrency limits.
    aimd_limits: Dict[str, float] = field(default_factory=dict)

    @property
    def n_entries(self) -> int:
        """Pool entries across all hosts (checkpoint size signal)."""
        return sum(len(hc.entries) for hc in self.hosts)


class CheckpointStore:
    """Bounded, versioned checkpoint retention (keep the last ``keep``)."""

    def __init__(self, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.keep = keep
        self._checkpoints: Deque[Checkpoint] = deque(maxlen=keep)
        self._next_version = 1

    def save(
        self,
        taken_at: float,
        hosts: Tuple[HostCheckpoint, ...],
        aimd_limits: Optional[Dict[str, float]] = None,
    ) -> Checkpoint:
        """Store a new checkpoint; returns it (with its version)."""
        checkpoint = Checkpoint(
            version=self._next_version,
            taken_at=taken_at,
            hosts=hosts,
            aimd_limits=dict(aimd_limits or {}),
        )
        self._next_version += 1
        self._checkpoints.append(checkpoint)
        return checkpoint

    def latest(self) -> Optional[Checkpoint]:
        """The most recent checkpoint, or ``None`` before the first."""
        return self._checkpoints[-1] if self._checkpoints else None

    def versions(self) -> Tuple[int, ...]:
        """Versions currently retained, oldest first."""
        return tuple(cp.version for cp in self._checkpoints)

    def __len__(self) -> int:
        return len(self._checkpoints)
