"""Typed, append-only event log + the Observatory facade.

Every interesting state transition along the request path is recorded
as an :class:`ObsEvent` at sim time: boot start/end, pool hit/miss/
evict, cleanup, prewarm, circuit-breaker transitions, host failover,
and the control-loop tick (with forecast-vs-realized demand).  The log
is a bounded ring buffer, so a long-running gateway cannot grow it
without limit — the ``dropped`` counter says how many early events were
displaced.

The :class:`Observatory` bundles the event log with a
:class:`~repro.obs.registry.MetricsRegistry` and is the single object
components hold (as ``obs``, ``None`` by default).  Hook sites follow
one idiom::

    if self.obs is not None:
        self.obs.emit(EventKind.POOL_HIT, t=now, host=..., key=...)

so an unattached run takes exactly one pointer comparison per hook and
allocates nothing.
"""

from __future__ import annotations

import enum
import json
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, Optional, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = ["EventKind", "EventLog", "ObsEvent", "Observatory"]


class EventKind(enum.Enum):
    """The event taxonomy (DESIGN.md §7)."""

    #: Engine started booting a container (cold or prewarm).
    BOOT_START = "boot_start"
    #: Boot finished (``ok`` false on failure, with the error class).
    BOOT_END = "boot_end"
    #: Pool lookup served a warm container.
    POOL_HIT = "pool_hit"
    #: Pool lookup missed; a cold boot follows.
    POOL_MISS = "pool_miss"
    #: An exact-key miss was served by a relaxed-key match instead
    #: (config delta applied to a similar container).
    POOL_RELAXED_HIT = "pool_relaxed_hit"
    #: An idle donor container of a different key was re-specialized
    #: for the requested key (``donor``/``score``/``cost_ms``).
    REPURPOSE = "repurpose"
    #: An idle container was evicted (``reason``: capacity/pressure/scale_down).
    POOL_EVICT = "pool_evict"
    #: Algorithm 2 ran: volume wiped, container recycled into the pool.
    CLEANUP = "cleanup"
    #: The control loop requested a predictive pre-boot.
    PREWARM = "prewarm"
    #: A circuit breaker changed state (``from``/``to``).
    BREAKER = "breaker"
    #: The cluster scheduler re-routed a request off a failed host.
    FAILOVER = "failover"
    #: One control-loop tick: realized demand vs the previous forecast.
    CONTROL_TICK = "control_tick"
    #: A request reached a terminal outcome at the gateway.
    REQUEST_DONE = "request_done"
    #: Admission control accepted a request (``queued`` true when it
    #: waited in the admission queue first).
    ADMIT = "admit"
    #: Admission control rejected a request (``reason``:
    #: queue_full/brownout/shutdown).
    SHED = "shed"
    #: A request blew its deadline (while queued, or out of retry budget).
    DEADLINE_MISS = "deadline_miss"
    #: A host entered brownout (memory pressure / container-cap trip).
    BROWNOUT_ENTER = "brownout_enter"
    #: A host left brownout (pressure cleared past the hysteresis margin).
    BROWNOUT_EXIT = "brownout_exit"
    #: The failure detector marked a host suspect (phi over the suspect
    #: threshold, or persistent gray slowdown).
    HOST_SUSPECT = "host_suspect"
    #: A host was quarantined (``state`` distinguishes ``quarantined``
    #: from the subsequent ``draining``); it stops receiving new work.
    HOST_QUARANTINED = "host_quarantined"
    #: A host came back (``state``: ``probation`` for the gradual
    #: weighted reintroduction, ``healthy`` for full restoration).
    HOST_RECOVERED = "host_recovered"
    #: The recovery manager snapshotted the control-plane state
    #: (``version``/``entries``).
    CHECKPOINT = "checkpoint"
    #: A control-plane crash or recovery completed (``phase``:
    #: ``crash``/``recover``, with repair counts on recover).
    RECOVERY = "recovery"
    #: One anti-entropy repair action (``action``: adopted_busy/
    #: adopted_idle/retired_orphan/purged_phantom/...).
    REPAIR = "repair"
    #: The container health plane demoted a container to SUSPECT
    #: (``reason``: residual/..; it stops serving and donating).
    CONTAINER_SUSPECT = "container_suspect"
    #: A container was quarantined (``reason``: breaker/rss/...); it is
    #: out of every availability index and will never serve again.
    CONTAINER_QUARANTINED = "container_quarantined"
    #: A container's recycle completed: it was destroyed and (outside
    #: brownout) replaced by a paired prewarm (``reason`` carries the
    #: recycle trigger: max_reuses/max_age/leak/suspect/quarantined).
    CONTAINER_RECYCLED = "container_recycled"


@dataclass(frozen=True)
class ObsEvent:
    """One recorded occurrence, stamped with simulated time (ms)."""

    t: float
    kind: EventKind
    host: str = ""
    key: str = ""
    #: Sorted ``(field, value)`` pairs; values are JSON-serialisable.
    data: Tuple[Tuple[str, object], ...] = ()

    def as_dict(self) -> Dict[str, object]:
        """Flat dict form used by the JSONL exporter."""
        record: Dict[str, object] = {"t": self.t, "kind": self.kind.value}
        if self.host:
            record["host"] = self.host
        if self.key:
            record["key"] = self.key
        record.update(self.data)
        return record


class EventLog:
    """Bounded, append-only ring of :class:`ObsEvent`.

    Appending past ``capacity`` displaces the oldest event; ``dropped``
    counts the displaced so exporters can flag truncation explicitly
    instead of silently presenting a partial log as complete.
    """

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: Deque[ObsEvent] = deque(maxlen=capacity)
        self._appended = 0

    def append(self, event: ObsEvent) -> None:
        """Record one event (O(1), displacing the oldest when full)."""
        self._events.append(event)
        self._appended += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ObsEvent]:
        return iter(self._events)

    @property
    def total_appended(self) -> int:
        """Events ever appended (including displaced ones)."""
        return self._appended

    @property
    def dropped(self) -> int:
        """Events displaced by the capacity bound."""
        return self._appended - len(self._events)

    def counts_by_kind(self) -> Dict[str, int]:
        """Retained events per kind value (diagnostics)."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest first."""
        return "".join(
            json.dumps(event.as_dict(), sort_keys=True) + "\n"
            for event in self._events
        )


class Observatory:
    """Registry + event log, shared by every instrumented component.

    One Observatory serves a whole platform (single host or cluster);
    per-host series are distinguished by the ``host`` label/field the
    hook sites stamp.
    """

    def __init__(self, event_capacity: int = 65_536) -> None:
        self.registry = MetricsRegistry()
        self.events = EventLog(capacity=event_capacity)

    def emit(
        self,
        kind: EventKind,
        t: float,
        host: str = "",
        key: str = "",
        **data,
    ) -> None:
        """Append one typed event at sim time ``t``."""
        self.events.append(
            ObsEvent(
                t=t,
                kind=kind,
                host=host,
                key=key,
                data=tuple(sorted(data.items())),
            )
        )

    # -- registry shorthands (keep hook sites one-liners) --------------------
    def counter(self, name: str, **labels):
        """Shorthand for ``registry.counter``."""
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels):
        """Shorthand for ``registry.gauge``."""
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, bounds: Optional[Tuple[float, ...]] = None, **labels):
        """Shorthand for ``registry.histogram``."""
        if bounds is None:
            return self.registry.histogram(name, **labels)
        return self.registry.histogram(name, bounds=bounds, **labels)
