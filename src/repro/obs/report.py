"""Run reports: one call dumps every exporter plus prediction accuracy.

:func:`write_run_report` is the single entry point experiments and the
``python -m repro.metrics`` runner use after a simulation finishes.  It
writes into an output directory:

* ``metrics.prom`` — Prometheus text exposition of the registry,
* ``events.jsonl`` — the typed event log,
* ``snapshots.jsonl`` — the snapshotter's time series (when one ran),
* ``trace.json`` — Chrome trace-event JSON (Perfetto-loadable),
* ``accuracy.txt`` / ``accuracy.json`` — the per-key forecast-accuracy
  table (rolling and overall MAE / sMAPE of the ES+Markov predictor),
* ``summary.json`` — headline numbers (request counts by outcome,
  latency mean/p99 from the obs histograms, event totals).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.obs.events import Observatory
from repro.obs.exporters import Snapshotter, chrome_trace

__all__ = ["prediction_accuracy_table", "format_accuracy_table", "write_run_report"]


def prediction_accuracy_table(
    controller,
    window: int = 50,
) -> List[Dict[str, object]]:
    """Per-key forecast accuracy of an :class:`AdaptivePoolController`.

    ``forecast_history[i]`` predicts ``history[i+1]``, so each key's
    paired series is ``(history[1:], forecast_history[:-1])``.  Rows
    report overall MAE / sMAPE over the whole run and rolling values
    over the last ``window`` pairs (the number the control loop is
    currently living with).  Keys with fewer than two observations have
    no pairs and report ``None``.
    """
    # Imported lazily: repro.metrics pulls in the container engine (for
    # ResourceMonitor), which itself imports repro.obs for its hooks.
    from repro.metrics.errors import (
        mean_absolute_error,
        symmetric_mean_absolute_percentage_error,
    )

    if window < 1:
        raise ValueError("window must be >= 1")
    rows: List[Dict[str, object]] = []
    for key in controller.known_keys():
        history = controller.history(key)
        forecasts = controller.forecast_history(key)
        actual = history[1:]
        predicted = forecasts[: len(history) - 1]
        row: Dict[str, object] = {
            "key": str(key),
            "observations": len(history),
            "pairs": len(actual),
            "mae": None,
            "smape": None,
            "rolling_mae": None,
            "rolling_smape": None,
        }
        if actual:
            row["mae"] = mean_absolute_error(actual, predicted)
            row["smape"] = symmetric_mean_absolute_percentage_error(
                actual, predicted
            )
            tail_a = actual[-window:]
            tail_p = predicted[-window:]
            row["rolling_mae"] = mean_absolute_error(tail_a, tail_p)
            row["rolling_smape"] = symmetric_mean_absolute_percentage_error(
                tail_a, tail_p
            )
        rows.append(row)
    return rows


_ACCURACY_COLUMNS = (
    ("key", "key"),
    ("observations", "obs"),
    ("pairs", "pairs"),
    ("mae", "MAE"),
    ("smape", "sMAPE"),
    ("rolling_mae", "MAE(last)"),
    ("rolling_smape", "sMAPE(last)"),
)


def format_accuracy_table(rows: Sequence[Dict[str, object]]) -> str:
    """Fixed-width text rendering of the accuracy table."""
    if not rows:
        return "(no keys observed)\n"

    def cell(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    table = [[header for _, header in _ACCURACY_COLUMNS]]
    for row in rows:
        table.append([cell(row[field]) for field, _ in _ACCURACY_COLUMNS])
    widths = [max(len(r[i]) for r in table) for i in range(len(table[0]))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines) + "\n"


def _summary(observatory: Observatory, traces) -> Dict[str, object]:
    summary: Dict[str, object] = {
        "events_total": observatory.events.total_appended,
        "events_dropped": observatory.events.dropped,
        "events_by_kind": observatory.events.counts_by_kind(),
    }
    if traces is not None:
        summary["requests"] = len(traces)
        outcome_counts = getattr(traces, "outcome_counts", None)
        if callable(outcome_counts):
            summary["outcomes"] = {
                k.value if hasattr(k, "value") else str(k): v
                for k, v in outcome_counts().items()
            }
        # Imported lazily: the metrics package pulls in the engine,
        # which (through the obs package) would close an import cycle.
        from repro.metrics.report import reuse_depth_histogram

        depths = reuse_depth_histogram(traces)
        if depths:
            summary["reuse_depth"] = depths
    latency: Dict[str, object] = {}
    for histogram in observatory.registry.histograms():
        if histogram.name != "request_latency_ms" or histogram.count == 0:
            continue
        label = ",".join(f"{k}={v}" for k, v in histogram.labels) or "all"
        entry = {
            "count": histogram.count,
            "mean_ms": histogram.sum / histogram.count,
            "p50_ms": histogram.quantile(0.5),
            "p99_ms": histogram.quantile(0.99),
            "p999_ms": histogram.quantile(0.999),
            "overflow": histogram.overflow_count,
        }
        # Quantiles landing among overflow observations have no finite
        # bucket (they surface as inf); name them so report consumers
        # see the unresolved tail instead of a silently clamped value.
        unresolved = [
            name
            for name, q in (("p50_ms", 0.5), ("p99_ms", 0.99), ("p999_ms", 0.999))
            if not histogram.quantile_resolvable(q)
        ]
        if unresolved:
            entry["unresolved_quantiles"] = unresolved
        latency[label] = entry
    if latency:
        summary["request_latency_ms"] = latency
    return summary


def write_run_report(
    out_dir: str,
    observatory: Observatory,
    traces=None,
    controller=None,
    snapshotter: Optional[Snapshotter] = None,
    accuracy_window: int = 50,
) -> Dict[str, str]:
    """Write every report artifact into ``out_dir``; returns name→path.

    ``traces`` (a :class:`TraceCollector`) enables the Chrome trace and
    outcome summary; ``controller`` (an :class:`AdaptivePoolController`)
    enables the accuracy table; ``snapshotter`` enables the snapshot
    series.  Missing inputs simply skip their artifact.
    """
    os.makedirs(out_dir, exist_ok=True)
    written: Dict[str, str] = {}

    def emit(name: str, text: str) -> None:
        path = os.path.join(out_dir, name)
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(text)
        written[name] = path

    emit("metrics.prom", observatory.registry.to_prometheus())
    emit("events.jsonl", observatory.events.to_jsonl())
    if snapshotter is not None:
        emit("snapshots.jsonl", snapshotter.to_jsonl())
    if traces is not None:
        document = chrome_trace(traces, events=observatory.events)
        emit("trace.json", json.dumps(document) + "\n")
    if controller is not None:
        rows = prediction_accuracy_table(controller, window=accuracy_window)
        emit("accuracy.txt", format_accuracy_table(rows))
        emit("accuracy.json", json.dumps(rows, indent=2) + "\n")
    emit(
        "summary.json",
        json.dumps(_summary(observatory, traces), indent=2, sort_keys=True) + "\n",
    )
    return written
