"""Exporters: Prometheus text, periodic JSONL snapshots, Chrome traces.

Three ways out of the :class:`~repro.obs.events.Observatory`:

* :func:`prometheus_text` — the OpenFaaS-gateway-style scrape payload
  (counters, gauges, cumulative histogram buckets).
* :class:`Snapshotter` — a sim-driven process that dumps the whole
  registry as one JSON object per period; the collected records render
  as JSONL, giving a time series of every metric without a scraper.
* :func:`chrome_trace` — Chrome trace-event JSON built from
  :class:`~repro.faas.tracing.RequestTrace` spans (gateway → watchdog →
  init → exec → response) plus instant markers from the event log, so
  one run is viewable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Generator, Iterable, List, Optional

from repro.obs.events import EventLog, Observatory
from repro.obs.registry import MetricsRegistry

__all__ = [
    "chrome_trace",
    "prometheus_text",
    "registry_snapshot_jsonl",
    "Snapshotter",
]


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    return registry.to_prometheus()


def registry_snapshot_jsonl(records: Iterable[Dict[str, object]]) -> str:
    """Render snapshot records (dicts) as JSONL, one record per line."""
    return "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)


class Snapshotter:
    """Periodic registry snapshots driven by the simulation clock.

    Start/stop mirror the repo's other periodic loops (generation
    counter so a stale loop pending its tick exits instead of doubling
    the rate).  Records accumulate in memory; :meth:`to_jsonl` renders
    them, :meth:`write` saves them.  The snapshotter is the only obs
    component that schedules sim events — attach it only when a run
    explicitly wants time-series snapshots, since its timers interleave
    with (but never reorder) workload events.
    """

    def __init__(
        self,
        sim,
        observatory: Observatory,
        period_ms: float = 1_000.0,
    ) -> None:
        if period_ms <= 0:
            raise ValueError("period_ms must be positive")
        self.sim = sim
        self.observatory = observatory
        self.period_ms = period_ms
        self.records: List[Dict[str, object]] = []
        self._running = False
        self._generation = 0

    def start(self) -> None:
        """Begin snapshotting; takes an immediate first snapshot."""
        if self._running:
            return
        self._running = True
        self._generation += 1
        self.snap()
        self.sim.process(self._loop(self._generation), name="obs-snapshotter")

    def stop(self, final_snapshot: bool = True) -> None:
        """Stop after the pending tick; optionally snapshot once more."""
        self._running = False
        if final_snapshot:
            self.snap()

    def snap(self) -> Dict[str, object]:
        """Take one snapshot now (also callable without the loop)."""
        record: Dict[str, object] = {
            "t": self.sim.now,
            "events_total": self.observatory.events.total_appended,
            "events_dropped": self.observatory.events.dropped,
            "metrics": self.observatory.registry.snapshot(),
        }
        self.records.append(record)
        return record

    def _loop(self, generation: int) -> Generator:
        while self._running and generation == self._generation:
            yield self.sim.timeout(self.period_ms)
            if not self._running or generation != self._generation:
                break
            self.snap()

    def to_jsonl(self) -> str:
        """All snapshots as JSONL."""
        return registry_snapshot_jsonl(self.records)

    def write(self, path) -> None:
        """Save the JSONL snapshot series to ``path``."""
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(self.to_jsonl())


# -- Chrome trace-event JSON -------------------------------------------------

#: Span layout per request: (name, start attr/lambda, end attr/lambda).
_SPAN_LAYOUT = (
    ("gateway", "t1_gateway_in", "t6_client_recv"),
    ("watchdog", "t2_watchdog_in", "t5_watchdog_out"),
    ("init", "t2_watchdog_in", "t3_function_start"),
    ("exec", "t3_function_start", "t4_function_stop"),
    ("response", "t4_function_stop", "t6_client_recv"),
)


def _host_of_trace(trace) -> str:
    # Container ids are "host-name/c000123"; requests that never got a
    # container (hard failures) land under the gateway pseudo-host.
    container_id = trace.container_id
    if container_id and "/" in container_id:
        return container_id.split("/", 1)[0]
    return "gateway"


def chrome_trace(
    traces,
    events: Optional[EventLog] = None,
    include_failed: bool = True,
) -> Dict[str, object]:
    """Build a Chrome trace-event document from request traces.

    ``traces`` is any iterable of :class:`RequestTrace` (typically a
    :class:`~repro.faas.tracing.TraceCollector`).  Each request becomes
    a thread (tid = request id) on its host's process row, with nested
    complete ("X") spans for the pipeline stages and sub-spans for the
    runtime/app init decomposition; event-log entries render as instant
    ("i") markers.  Timestamps convert from sim ms to trace µs.
    """
    trace_events: List[Dict[str, object]] = []
    host_pids: Dict[str, int] = {}

    def pid_of(host: str) -> int:
        pid = host_pids.get(host)
        if pid is None:
            pid = host_pids[host] = len(host_pids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": host},
                }
            )
        return pid

    def span(name, pid, tid, start_ms, end_ms, args=None):
        if math.isnan(start_ms) or math.isnan(end_ms) or end_ms < start_ms:
            return
        event: Dict[str, object] = {
            "ph": "X",
            "name": name,
            "pid": pid,
            "tid": tid,
            "ts": start_ms * 1_000.0,
            "dur": (end_ms - start_ms) * 1_000.0,
            "cat": "request",
        }
        if args:
            event["args"] = args
        trace_events.append(event)

    for trace in traces:
        outcome = getattr(trace.outcome, "value", str(trace.outcome))
        if not include_failed and outcome == "failed":
            continue
        pid = pid_of(_host_of_trace(trace))
        tid = trace.request_id
        args = {
            "function": trace.function,
            "outcome": outcome,
            "cold_start": trace.cold_start,
            "container": trace.container_id,
            "retries": trace.retries,
        }
        if trace.error:
            args["error"] = trace.error
        reuse = getattr(trace, "reuse", "")
        if reuse:
            args["reuse"] = reuse
        span("request", pid, tid, trace.t0_client_send, trace.t6_client_recv, args)
        for name, start_attr, end_attr in _SPAN_LAYOUT:
            span(name, pid, tid, getattr(trace, start_attr), getattr(trace, end_attr))
        # Init decomposition: anchor runtime/app init back from t3.
        t3 = trace.t3_function_start
        if not math.isnan(t3):
            if trace.app_init_ms > 0:
                span("app_init", pid, tid, t3 - trace.app_init_ms, t3)
            if trace.runtime_init_ms > 0:
                span(
                    "runtime_init",
                    pid,
                    tid,
                    t3 - trace.app_init_ms - trace.runtime_init_ms,
                    t3 - trace.app_init_ms,
                )
            respec_ms = getattr(trace, "respec_ms", 0.0)
            if respec_ms > 0:
                # The config-delta / re-specialization work precedes
                # runtime and app init in the 2→3 segment.
                end = t3 - trace.app_init_ms - trace.runtime_init_ms
                span("respec", pid, tid, end - respec_ms, end)

    if events is not None:
        for event in events:
            host = event.host or "gateway"
            trace_events.append(
                {
                    "ph": "i",
                    "s": "p",
                    "name": event.kind.value,
                    "pid": pid_of(host),
                    "tid": 0,
                    "ts": event.t * 1_000.0,
                    "cat": "obs",
                    "args": dict(event.data) | ({"key": event.key} if event.key else {}),
                }
            )

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
