"""Metric primitives: counters, gauges, fixed-bucket streaming histograms.

The registry is the numeric half of :mod:`repro.obs` (the event log is
the other).  Metrics are identified by ``(name, labels)`` where labels
are free-form key/value tags — by convention every instrument carries a
``host`` label and per-runtime-key series add a ``key`` label, so
per-host registries stay mergeable into one cluster-wide view.

Design constraints (see DESIGN.md §7):

* **Cheap** — each observation is a dict lookup plus an integer/float
  add (histograms: one bisect).  Nothing allocates per observation
  after the instrument exists.
* **Mergeable** — :meth:`MetricsRegistry.merge` folds another registry
  in: counters and histograms add, gauges take the incoming sample.
  Histogram merge is count-lossless and order-independent because the
  buckets are fixed at construction and identically-labelled series
  must share bucket bounds.
* **Sim-time native** — the registry never reads a wall clock; callers
  stamp times where needed (the event log, the snapshotter).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WIDE_LATENCY_BUCKETS_MS",
]

#: Default bucket upper bounds (ms) for latency-shaped histograms:
#: spans sub-ms pool ops through multi-second cold starts.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 30_000.0,
)

#: Wider layout for scenario-scale runs: keeps the default resolution
#: through 30 s but resolves queueing/fault tails out to ten minutes,
#: so a day-long trace's p999 stays inside a finite bucket.
WIDE_LATENCY_BUCKETS_MS: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS + (
    60_000.0, 120_000.0, 300_000.0, 600_000.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time sample (pool size, forecast, in-flight count)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the sample."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the sample by ``delta``."""
        self.value += delta


class Histogram:
    """Fixed-bucket streaming histogram (Prometheus-style cumulative).

    ``bounds`` are the finite bucket upper limits in strictly ascending
    order; an implicit ``+Inf`` bucket catches the overflow.  Exact
    ``sum``/``count`` are kept alongside, so the mean is recoverable and
    a merge across hosts loses no observations.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    def __init__(
        self,
        name: str,
        bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
        labels: LabelItems = (),
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be ascending, got {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram of identical bounds into this one."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r}: bounds differ "
                f"({other.bounds} vs {self.bounds})"
            )
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.count += other.count
        self.sum += other.sum

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per ``le`` bound (Prometheus bucket rows)."""
        running = 0
        cumulative = []
        for count in self.bucket_counts:
            running += count
            cumulative.append(running)
        return cumulative

    @property
    def overflow_count(self) -> int:
        """Observations past the last finite bound (the +Inf bucket).

        A non-zero overflow means upper quantiles may be unresolvable:
        any ``q`` whose rank lands here has no finite bucket bound, so
        :meth:`quantile` reports ``inf`` (or raises under ``strict``)
        rather than silently clamping to the top finite bound.
        """
        return self.bucket_counts[-1]

    def quantile_resolvable(self, q: float) -> bool:
        """Whether the q-th observation falls inside a finite bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return False
        return q * self.count <= self.count - self.bucket_counts[-1]

    def quantile(self, q: float, strict: bool = False) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the q-th observation); NaN when empty.

        When the q-th observation landed past the last finite bound the
        estimate is ``inf`` — never the top bucket's bound, which would
        silently under-report the tail.  Under ``strict=True`` that
        case raises instead, so million-request p999 gates fail loudly
        when the bucket layout cannot resolve them.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        running = 0
        for index, count in enumerate(self.bucket_counts):
            running += count
            if running >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                break
        if strict:
            raise OverflowError(
                f"histogram {self.name!r}: q={q} falls among the "
                f"{self.bucket_counts[-1]} overflow observations past "
                f"the last bound ({self.bounds[-1]}); widen the buckets"
            )
        return float("inf")


class MetricsRegistry:
    """Get-or-create store of labelled instruments.

    One registry typically serves a whole platform; per-host series are
    distinguished by the ``host`` label rather than separate registries,
    but :meth:`merge` also supports folding independently collected
    registries (e.g. from parallel runs) into one.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}
        self._help: Dict[str, str] = {}

    # -- instruments --------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """The counter ``name{labels}`` (created on first use)."""
        key = (name, _label_items(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
            if help:
                self._help.setdefault(name, help)
        return instrument

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """The gauge ``name{labels}`` (created on first use)."""
        key = (name, _label_items(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
            if help:
                self._help.setdefault(name, help)
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
        help: str = "",
        **labels,
    ) -> Histogram:
        """The histogram ``name{labels}`` (created on first use).

        ``bounds`` only applies at creation; later calls must agree or
        the merge invariant (identical bounds per name) would break.
        """
        key = (name, _label_items(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                name, bounds=bounds, labels=key[1]
            )
            if help:
                self._help.setdefault(name, help)
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already exists with bounds "
                f"{instrument.bounds}"
            )
        return instrument

    # -- views ---------------------------------------------------------------
    def counters(self) -> Tuple[Counter, ...]:
        """All counters, in deterministic (name, labels) order."""
        return tuple(v for _, v in sorted(self._counters.items()))

    def gauges(self) -> Tuple[Gauge, ...]:
        """All gauges, in deterministic (name, labels) order."""
        return tuple(v for _, v in sorted(self._gauges.items()))

    def histograms(self) -> Tuple[Histogram, ...]:
        """All histograms, in deterministic (name, labels) order."""
        return tuple(v for _, v in sorted(self._histograms.items()))

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serialisable dump of every instrument's current state."""
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in self.counters()
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in self.gauges()
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count,
                    "sum": h.sum,
                }
                for h in self.histograms()
            ],
        }

    # -- merging -------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (in place); returns self.

        Counters and histograms add; a gauge takes the incoming sample
        (it is a point-in-time reading, so "last write wins" across
        identically-labelled series — distinct hosts never collide
        because of the ``host`` label).
        """
        for (name, labels), counter in other._counters.items():
            self.counter(name, **dict(labels)).inc(counter.value)
        for (name, labels), gauge in other._gauges.items():
            self.gauge(name, **dict(labels)).set(gauge.value)
        for (name, labels), histogram in other._histograms.items():
            self.histogram(
                name, bounds=histogram.bounds, **dict(labels)
            ).merge_from(histogram)
        for name, text in other._help.items():
            self._help.setdefault(name, text)
        return self

    # -- Prometheus text exposition -------------------------------------------
    @staticmethod
    def _escape_label(value: str) -> str:
        return (
            value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )

    @classmethod
    def _format_labels(cls, labels: LabelItems, extra: LabelItems = ()) -> str:
        items = labels + extra
        if not items:
            return ""
        body = ",".join(f'{k}="{cls._escape_label(v)}"' for k, v in items)
        return "{" + body + "}"

    @staticmethod
    def _format_value(value: float) -> str:
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(float(value))

    def to_prometheus(self) -> str:
        """Render every instrument in the Prometheus text format."""
        lines: List[str] = []
        seen_types: Dict[str, str] = {}

        def header(name: str, metric_type: str) -> None:
            if seen_types.get(name) == metric_type:
                return
            seen_types[name] = metric_type
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric_type}")

        for counter in self.counters():
            header(counter.name, "counter")
            lines.append(
                f"{counter.name}{self._format_labels(counter.labels)} "
                f"{self._format_value(counter.value)}"
            )
        for gauge in self.gauges():
            header(gauge.name, "gauge")
            lines.append(
                f"{gauge.name}{self._format_labels(gauge.labels)} "
                f"{self._format_value(gauge.value)}"
            )
        for histogram in self.histograms():
            header(histogram.name, "histogram")
            cumulative = histogram.cumulative_counts()
            for bound, count in zip(histogram.bounds, cumulative):
                le = self._format_value(bound)
                lines.append(
                    f"{histogram.name}_bucket"
                    f"{self._format_labels(histogram.labels, (('le', le),))} "
                    f"{count}"
                )
            lines.append(
                f"{histogram.name}_bucket"
                f"{self._format_labels(histogram.labels, (('le', '+Inf'),))} "
                f"{histogram.count}"
            )
            lines.append(
                f"{histogram.name}_sum{self._format_labels(histogram.labels)} "
                f"{self._format_value(histogram.sum)}"
            )
            lines.append(
                f"{histogram.name}_count{self._format_labels(histogram.labels)} "
                f"{histogram.count}"
            )
        return "\n".join(lines) + ("\n" if lines else "")
