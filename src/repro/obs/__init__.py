"""Observability: metrics registry, event log, exporters, run reports.

See DESIGN.md §7.  Components expose ``attach_observatory``; with no
observatory attached every hook is a single ``is not None`` check, so
uninstrumented runs stay bit-identical.
"""

from repro.obs.events import EventKind, EventLog, ObsEvent, Observatory
from repro.obs.exporters import (
    Snapshotter,
    chrome_trace,
    prometheus_text,
    registry_snapshot_jsonl,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    WIDE_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import (
    format_accuracy_table,
    prediction_accuracy_table,
    write_run_report,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "EventKind",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsEvent",
    "Observatory",
    "Snapshotter",
    "WIDE_LATENCY_BUCKETS_MS",
    "chrome_trace",
    "format_accuracy_table",
    "prediction_accuracy_table",
    "prometheus_text",
    "registry_snapshot_jsonl",
    "write_run_report",
]
