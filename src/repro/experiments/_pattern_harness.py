"""Shared harness for the request-pattern experiments (Figs 12-14).

All three figures drive the QR web service (the Fig 9 setup — "the
experiment setting and configuration are the same as above") through a
pattern, once with the default cold-boot provider and once with HotC.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.hotc import HotC, HotCConfig
from repro.faas.platform import FaasPlatform
from repro.workloads.apps import default_catalog, qr_encoder_app
from repro.workloads.generator import WorkloadGenerator, WorkloadResult
from repro.workloads.patterns import RequestPattern

__all__ = ["run_pattern_arm"]

#: Drain budget applied when neither the function specs nor an attached
#: admission controller declare a per-request deadline.  Conservative:
#: covers retries and fault-induced stalls for every bundled pattern.
_FALLBACK_DRAIN_MS = 120_000.0


def _drain_budget_ms(platform: FaasPlatform) -> float:
    """Outstanding-request deadline budget for the adaptive-run bound.

    The bound must outlive every request that can still be in flight at
    the last round: requests with explicit deadlines (spec-level, or
    the admission default) terminate within that deadline, so the
    budget is the largest declared deadline.  With no deadlines
    anywhere the budget falls back to :data:`_FALLBACK_DRAIN_MS`.
    """
    deadlines = [
        platform.function(name).deadline_ms
        for name in platform.functions
        if platform.function(name).deadline_ms is not None
    ]
    if platform.admission is not None:
        default = platform.admission.config.default_deadline_ms
        if default is not None:
            deadlines.append(default)
    return max(deadlines) if deadlines else _FALLBACK_DRAIN_MS


def run_pattern_arm(
    pattern: RequestPattern,
    use_hotc: bool,
    seed: int = 0,
    n_functions: int = 1,
    adaptive: bool = False,
    control_interval_ms: float = 5_000.0,
    gateway_concurrency: int = 1024,
) -> Tuple[WorkloadResult, FaasPlatform]:
    """Run ``pattern`` against the QR service; returns (result, platform).

    ``n_functions`` deploys that many identically-shaped functions with
    distinct runtime configurations (distinct env), modelling the
    parallel experiment's "each thread has its own runtime
    configuration".  ``adaptive`` additionally starts HotC's prediction
    control loop (used by the burst experiment).
    """
    if n_functions < 1:
        raise ValueError("n_functions must be >= 1")
    catalog = default_catalog()

    def provider_factory(engine):
        config = HotCConfig(
            control_interval_ms=control_interval_ms if adaptive else 0.0
        )
        return HotC(engine, config)

    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        provider_factory=provider_factory if use_hotc else None,
        jitter_sigma=0.05,
        gateway_concurrency=gateway_concurrency,
    )
    names = []
    for index in range(n_functions):
        spec = qr_encoder_app(name=f"qr-{index}", language="python").with_overrides(
            env=(("THREAD", str(index)),)
        )
        platform.deploy(spec)
        names.append(spec.name)
    platform.sim.process(platform.engine.ensure_image("python:3.6"))
    platform.run()

    if use_hotc and adaptive:
        platform.provider.start_control_loop()
        # The control loop re-arms its own timer forever, so an
        # unbounded run would never drain: bound the first run past the
        # pattern's last round plus the outstanding-request deadline
        # budget, keep the loop alive that long, then stop it and drain
        # unbounded.  Results are collected only after the final drain,
        # so a slow arm (faults, jitter) is never truncated by the
        # bound — a late request merely outlives the control loop.
        generator = WorkloadGenerator(platform)
        scheduled = generator.submit(pattern, names)
        last_round = max(time for time, _ in pattern.rounds())
        run_until = (
            platform.sim.now
            + last_round
            + 4 * control_interval_ms
            + _drain_budget_ms(platform)
        )
        platform.run(until=run_until)
        platform.provider.stop_control_loop()
        platform.run()
        result = generator.collect(scheduled)
        pending = sum(
            1 for _, _, procs in scheduled for p in procs if not p.triggered
        )
        if pending or not platform.traces.all_terminal():
            raise AssertionError(
                f"pattern arm stopped with {pending} request processes "
                "unfinished and non-terminal traces in flight; the drain "
                "bound failed to cover the workload"
            )
    else:
        result = WorkloadGenerator(platform).run(pattern, names)
    return result, platform
