"""Shared harness for the request-pattern experiments (Figs 12-14).

All three figures drive the QR web service (the Fig 9 setup — "the
experiment setting and configuration are the same as above") through a
pattern, once with the default cold-boot provider and once with HotC.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.hotc import HotC, HotCConfig
from repro.faas.platform import FaasPlatform
from repro.workloads.apps import default_catalog, qr_encoder_app
from repro.workloads.generator import WorkloadGenerator, WorkloadResult
from repro.workloads.patterns import RequestPattern

__all__ = ["run_pattern_arm"]


def run_pattern_arm(
    pattern: RequestPattern,
    use_hotc: bool,
    seed: int = 0,
    n_functions: int = 1,
    adaptive: bool = False,
    control_interval_ms: float = 5_000.0,
    gateway_concurrency: int = 1024,
) -> Tuple[WorkloadResult, FaasPlatform]:
    """Run ``pattern`` against the QR service; returns (result, platform).

    ``n_functions`` deploys that many identically-shaped functions with
    distinct runtime configurations (distinct env), modelling the
    parallel experiment's "each thread has its own runtime
    configuration".  ``adaptive`` additionally starts HotC's prediction
    control loop (used by the burst experiment).
    """
    if n_functions < 1:
        raise ValueError("n_functions must be >= 1")
    catalog = default_catalog()

    def provider_factory(engine):
        config = HotCConfig(
            control_interval_ms=control_interval_ms if adaptive else 0.0
        )
        return HotC(engine, config)

    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        provider_factory=provider_factory if use_hotc else None,
        jitter_sigma=0.05,
        gateway_concurrency=gateway_concurrency,
    )
    names = []
    for index in range(n_functions):
        spec = qr_encoder_app(name=f"qr-{index}", language="python").with_overrides(
            env=(("THREAD", str(index)),)
        )
        platform.deploy(spec)
        names.append(spec.name)
    platform.sim.process(platform.engine.ensure_image("python:3.6"))
    platform.run()

    if use_hotc and adaptive:
        platform.provider.start_control_loop()
        # The control loop re-arms its own timer forever, so an
        # unbounded run would never drain: bound it generously past the
        # last round (any request finishes well within two rounds).
        last_round = max(time for time, _ in pattern.rounds())
        run_until = platform.sim.now + last_round + 4 * control_interval_ms + 120_000.0
        result = WorkloadGenerator(platform).run(pattern, names, run_until=run_until)
        platform.provider.stop_control_loop()
        platform.run()
    else:
        result = WorkloadGenerator(platform).run(pattern, names)
    return result, platform
