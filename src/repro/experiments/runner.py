"""Run all (or selected) figure reproductions and render them.

``python -m repro.experiments`` prints every figure;
``python -m repro.experiments fig08 fig10`` a selection.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.metrics.report import Figure

__all__ = ["ALL_EXPERIMENTS", "run_all"]


def _registry() -> Dict[str, Callable[..., Figure]]:
    # Imported lazily to avoid import cycles with repro.experiments.
    from repro.experiments import (
        run_fig01, run_fig02, run_fig04, run_fig05, run_fig08, run_fig09,
        run_fig10, run_fig11, run_fig12, run_fig13, run_fig14, run_fig15,
    )

    return {
        "fig01": run_fig01,
        "fig02": run_fig02,
        "fig04": run_fig04,
        "fig05": run_fig05,
        "fig08": run_fig08,
        "fig09": run_fig09,
        "fig10": run_fig10,
        "fig11": run_fig11,
        "fig12": run_fig12,
        "fig13": run_fig13,
        "fig14": run_fig14,
        "fig15": run_fig15,
    }


#: Experiment ids in paper order.
ALL_EXPERIMENTS = (
    "fig01", "fig02", "fig04", "fig05", "fig08", "fig09",
    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
)


def run_all(
    only: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> Dict[str, Figure]:
    """Run the selected experiments; returns ``{figure_id: Figure}``."""
    registry = _registry()
    names = list(only) if only is not None else list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown}; known: {sorted(registry)}"
        )
    return {name: registry[name](seed=seed) for name in names}
