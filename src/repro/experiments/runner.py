"""Run all (or selected) figure reproductions, serially or in parallel.

``python -m repro.experiments`` prints every figure;
``python -m repro.experiments fig08 fig10`` a selection;
``python -m repro.experiments --jobs 8`` fans the figures out over
worker processes and prints byte-identical output.

Parallel design
---------------
The unit of work is one ``(figure, seed)`` pair.  Workers are spawned
with the ``spawn`` start method (safe under any interpreter state — no
forked locks, no inherited RNG state) and each runs exactly one figure
reproduction per task, so a figure's result is produced by the same
deterministic code path regardless of ``jobs``.  Each worker instruments
its run into a private :class:`~repro.obs.registry.MetricsRegistry`;
the parent folds those into the caller's registry via
:meth:`MetricsRegistry.merge` in fixed task order, so serial and
parallel runs produce identical figures *and* identical merged counter
totals.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.metrics.report import Figure
from repro.obs.registry import MetricsRegistry

__all__ = ["ALL_EXPERIMENTS", "run_all", "run_matrix"]


def _registry() -> Dict[str, Callable[..., Figure]]:
    # Imported lazily to avoid import cycles with repro.experiments.
    from repro.experiments import (
        run_fig01, run_fig02, run_fig04, run_fig05, run_fig08, run_fig09,
        run_fig10, run_fig11, run_fig12, run_fig13, run_fig14, run_fig15,
        run_fig16,
    )

    return {
        "fig01": run_fig01,
        "fig02": run_fig02,
        "fig04": run_fig04,
        "fig05": run_fig05,
        "fig08": run_fig08,
        "fig09": run_fig09,
        "fig10": run_fig10,
        "fig11": run_fig11,
        "fig12": run_fig12,
        "fig13": run_fig13,
        "fig14": run_fig14,
        "fig15": run_fig15,
        "fig16": run_fig16,
    }


#: Experiment ids in paper order.
ALL_EXPERIMENTS = (
    "fig01", "fig02", "fig04", "fig05", "fig08", "fig09",
    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16",
)


def _validated_names(only: Optional[Iterable[str]]) -> List[str]:
    registry = _registry()
    names = list(only) if only is not None else list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise KeyError(
            f"unknown experiments {unknown}; known: {sorted(registry)}"
        )
    return names


def _run_task(task: Tuple[str, int]) -> Tuple[str, int, Figure, MetricsRegistry]:
    """Worker body: one figure at one seed, with its own metrics.

    Top-level (not nested) so it pickles under the ``spawn`` start
    method.  Also the serial path — ``jobs=1`` maps over the same
    function in-process, which is what makes the two modes identical by
    construction.
    """
    name, seed = task
    registry = MetricsRegistry()
    start = time.perf_counter()
    figure = _registry()[name](seed=seed)
    wall_ms = (time.perf_counter() - start) * 1e3
    registry.counter(
        "runner_figures_total",
        help="Figure reproductions completed by the experiment runner",
        figure=name,
        seed=str(seed),
    ).inc()
    registry.gauge(
        "runner_figure_wall_ms",
        help="Wall-clock of the figure reproduction in milliseconds",
        figure=name,
        seed=str(seed),
    ).set(round(wall_ms, 3))
    return name, seed, figure, registry


def run_matrix(
    seeds: Iterable[int] = (0,),
    only: Optional[Iterable[str]] = None,
    jobs: int = 1,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[int, Dict[str, Figure]]:
    """Run the ``seeds x figures`` matrix; ``{seed: {figure_id: Figure}}``.

    ``jobs=1`` runs everything in-process; ``jobs>1`` distributes one
    ``(figure, seed)`` task per worker slot using spawn-based
    multiprocessing.  Results (and the metrics merged into ``registry``,
    when given) are identical either way: every figure is produced by
    the same single-task code path, and merge order is the fixed task
    order, not completion order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    seeds = list(seeds)
    names = _validated_names(only)
    tasks = [(name, seed) for seed in seeds for name in names]
    results: Dict[int, Dict[str, Figure]] = {seed: {} for seed in seeds}
    if jobs == 1 or len(tasks) <= 1:
        outputs = [_run_task(task) for task in tasks]
    else:
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=min(jobs, len(tasks))) as pool:
            # pool.map preserves task order (unlike imap_unordered), so
            # the registry merge below is deterministic.
            outputs = pool.map(_run_task, tasks, chunksize=1)
    for name, seed, figure, worker_registry in outputs:
        results[seed][name] = figure
        if registry is not None:
            registry.merge(worker_registry)
    return results


def run_all(
    only: Optional[Iterable[str]] = None,
    seed: int = 0,
    jobs: int = 1,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Figure]:
    """Run the selected experiments; returns ``{figure_id: Figure}``.

    ``jobs`` fans the figures out over worker processes; the result is
    byte-identical to the serial run (see :func:`run_matrix`).
    """
    return run_matrix(seeds=(seed,), only=only, jobs=jobs, registry=registry)[seed]
