"""Fig 9 — QR-code web application latency without and with HotC.

The paper deploys a URL→QR-code service in several languages behind
NAT-connected backends; "clients sent requests using random
configurations to the backends".  Without HotC every request pays the
runtime setup (the QR transformation itself is only ~60 ms); with HotC
the latency collapses once each configuration's runtime exists in the
pool.
"""

from __future__ import annotations

import numpy as np

from repro.core.hotc import HotC
from repro.faas.platform import FaasPlatform
from repro.metrics.report import Figure, Series, Table
from repro.workloads.apps import default_catalog, qr_encoder_app

__all__ = ["run_fig09"]

#: The language variants the clients pick between at random.
_VARIANTS = ("python", "go", "node")


def _run_arm(use_hotc: bool, seed: int, requests: int, interval_ms: float):
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        provider_factory=HotC if use_hotc else None,
        jitter_sigma=0.05,
    )
    specs = [
        qr_encoder_app(name=f"qr-{language}", language=language)
        for language in _VARIANTS
    ]
    for spec in specs:
        platform.deploy(spec)
        platform.sim.process(platform.engine.ensure_image(spec.image))
    platform.run()

    # "Random configurations": pick a variant per request, reproducibly.
    chooser = np.random.default_rng(seed + 17)
    for index in range(requests):
        name = specs[chooser.integers(0, len(specs))].name
        platform.submit(name, delay=index * interval_ms)
    platform.run()
    if use_hotc:
        platform.shutdown()
    return platform.traces


def run_fig09(seed: int = 0, requests: int = 40, interval_ms: float = 2_000.0) -> Figure:
    """Reproduce Fig 9a (default) and 9b (HotC)."""
    if requests < len(_VARIANTS) + 1:
        raise ValueError("need more requests than language variants")
    default_traces = _run_arm(False, seed, requests, interval_ms)
    hotc_traces = _run_arm(True, seed, requests, interval_ms)

    figure = Figure(figure_id="fig09", title="QR web application latency")
    for label, traces in (("default", default_traces), ("hotc", hotc_traces)):
        latencies = traces.latencies()  # answered requests only
        figure.add_series(
            Series.from_arrays(
                f"{label}-latency",
                np.arange(1, len(latencies) + 1),
                latencies,
                x_label="request #",
                y_label="latency (ms)",
            )
        )
    default_mean = default_traces.mean_latency()
    hotc_mean = hotc_traces.mean_latency()
    # Steady state: latency after every variant has a pooled runtime.
    steady = hotc_traces.latencies()[len(_VARIANTS) * 2 :]
    figure.add_table(
        Table(
            name="fig9-summary",
            columns=("metric", "default", "hotc"),
            rows=(
                ("mean latency (ms)", round(default_mean, 1), round(hotc_mean, 1)),
                (
                    "cold starts",
                    int(default_traces.cold_count()),
                    int(hotc_traces.cold_count()),
                ),
                (
                    "failed requests",
                    int(default_traces.failed_count()),
                    int(hotc_traces.failed_count()),
                ),
                (
                    "steady-state latency (ms)",
                    round(float(np.mean(default_traces.latencies()[6:])), 1),
                    round(float(np.mean(steady)), 1),
                ),
            ),
        )
    )
    figure.note(
        "paper: the URL transition takes ~60 ms while setup dominates the "
        "default latency; with HotC later requests drop dramatically. "
        f"Measured steady-state HotC latency {float(np.mean(steady)):.0f} ms "
        f"vs default {default_mean:.0f} ms."
    )
    return figure
