"""Fig 11 — the UMass campus YouTube request trace.

The paper plots a day of campus-gateway YouTube requests and extracts
three representative patterns (burst, steady decline, night rise) that
motivate the request flows of Figs 12–14.  We reproduce the trace
synthetically (see :mod:`repro.workloads.traces`) and report the three
features quantitatively.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.report import Figure, Series, Table
from repro.workloads.traces import (
    BURST_AT,
    DECLINE_END,
    DECLINE_START,
    RISE_END,
    youtube_campus_trace,
)

__all__ = ["run_fig11"]


def run_fig11(seed: int = 0, stride: int = 10) -> Figure:
    """Reproduce Fig 11 (trace + the three extracted features)."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    trace = youtube_campus_trace(seed=seed)
    minutes = np.arange(len(trace))

    figure = Figure(figure_id="fig11", title="Campus YouTube request trace")
    figure.add_series(
        Series.from_arrays(
            "requests-per-minute",
            minutes[::stride],
            trace.counts[::stride],
            x_label="minute of day",
            y_label="requests",
        )
    )
    before_burst = float(np.mean(trace.segment(BURST_AT - 30, BURST_AT - 5)))
    burst_peak = float(np.max(trace.segment(BURST_AT, BURST_AT + 10)))
    figure.add_table(
        Table(
            name="fig11-features",
            columns=("feature", "value"),
            rows=(
                ("pre-burst level (req/min)", round(before_burst, 1)),
                (f"burst peak @T{BURST_AT}", round(burst_peak, 1)),
                ("burst magnitude (x)", round(trace.burst_magnitude(), 1)),
                (
                    f"decline slope T{DECLINE_START}-T{DECLINE_END} (req/min^2)",
                    round(trace.afternoon_slope(), 3),
                ),
                (
                    f"rise slope T{DECLINE_END}-T{RISE_END} (req/min^2)",
                    round(trace.night_slope(), 3),
                ),
            ),
        )
    )
    figure.note(
        "paper: burst from 20 to 300 requests at T710, decline T800-T1200, "
        f"rise T1200-T1400; measured burst {before_burst:.0f} -> "
        f"{burst_peak:.0f} with slopes {trace.afternoon_slope():+.2f} and "
        f"{trace.night_slope():+.2f}"
    )
    return figure
