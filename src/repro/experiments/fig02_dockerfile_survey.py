"""Fig 2 — the GitHub Dockerfile survey.

* Fig 2a: share of projects per base image, for the top-100 most
  popular projects and for all surveyed projects — a few images
  dominate both.
* Fig 2b: shares of OS / language / application base-image categories.
"""

from __future__ import annotations

from repro.analysis.dockerfiles import generate_corpus, survey_corpus
from repro.metrics.report import Figure, Table

__all__ = ["run_fig02"]


def run_fig02(seed: int = 0, n_projects: int = 2_000, top_n: int = 100) -> Figure:
    """Reproduce both panels of Fig 2 from a synthetic corpus."""
    if top_n > n_projects:
        raise ValueError("top_n cannot exceed n_projects")
    corpus = generate_corpus(n_projects=n_projects, seed=seed)
    all_survey = survey_corpus(corpus)
    top_survey = survey_corpus(corpus.top_by_stars(top_n))

    figure = Figure(figure_id="fig02", title="Dockerfile base-image survey")
    figure.add_table(
        Table(
            name="fig2a-image-shares",
            columns=("base image", "all projects %", f"top-{top_n} %"),
            rows=tuple(
                (
                    image,
                    round(100 * share, 2),
                    round(
                        100
                        * dict(top_survey.image_shares).get(image, 0.0),
                        2,
                    ),
                )
                for image, share in all_survey.top_images(10)
            ),
        )
    )
    figure.add_table(
        Table(
            name="fig2b-category-shares",
            columns=("category", "all projects %", f"top-{top_n} %"),
            rows=tuple(
                (
                    category,
                    round(100 * all_survey.category_shares[category], 2),
                    round(100 * top_survey.category_shares[category], 2),
                )
                for category in ("os", "language", "application", "other")
            ),
        )
    )
    figure.note(
        "paper: both panels dominated by a few common images; measured "
        f"top-5 concentration: all={100 * all_survey.head_concentration(5):.1f}%, "
        f"top-{top_n}={100 * top_survey.head_concentration(5):.1f}%"
    )
    return figure
