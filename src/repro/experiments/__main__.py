"""CLI entry point: print the reproduction of every paper figure.

``python -m repro.experiments`` prints all figures serially;
``python -m repro.experiments --jobs 8`` runs them across worker
processes and prints byte-identical output (figures are always printed
in paper order, regardless of which worker finished first).
"""

from __future__ import annotations

import argparse

from repro.experiments.runner import run_all


def main(argv=None) -> int:
    """Run ``python -m repro.experiments [--jobs N] [--seed S] [figXX ...]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="figXX",
        help="subset of figures to run (default: all, in paper order)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (default 1 = serial; output is identical)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed (default 0)"
    )
    args = parser.parse_args(argv)
    only = args.figures or None
    for figure_id, figure in run_all(only=only, seed=args.seed, jobs=args.jobs).items():
        print(figure.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
