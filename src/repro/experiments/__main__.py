"""CLI entry point: print the reproduction of every paper figure."""

from __future__ import annotations

import sys

from repro.experiments.runner import run_all


def main(argv=None) -> int:
    """Run ``python -m repro.experiments [figXX ...]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    only = argv or None
    for figure_id, figure in run_all(only=only).items():
        print(figure.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
