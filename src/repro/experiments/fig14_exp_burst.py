"""Fig 14 — exponential request flows and request bursts.

* Fig 14a: 2^i requests at round i.  With HotC at least half of every
  round reuses the previous wave's runtimes; the mirrored decreasing
  flow is fully warm after the first round.
* Fig 14b: 8 requests per round with 10x bursts at rounds 4/8/12/16.
  The first burst only benefits from the containers already pooled
  (~9% latency reduction in the paper); later bursts benefit from the
  ES+Markov prediction pre-warming the pool (up to 73%).

Both panels run through the scenario runner (the
``fig14-exponential-*`` and ``fig14-burst`` bundled specs); outputs are
bit-identical to the direct harness calls.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.report import Figure, Series, Table
from repro.scenarios.bundled import fig14_burst, fig14_exponential
from repro.scenarios.runner import run_scenario

__all__ = ["run_fig14"]


def run_fig14(
    seed: int = 0,
    exp_rounds: int = 6,
    burst_rounds: int = 20,
    round_ms: float = 30_000.0,
) -> Figure:
    """Reproduce Fig 14a (exponential) and Fig 14b (bursts)."""
    figure = Figure(figure_id="fig14", title="Exponential flows and request bursts")

    # -- Fig 14a ------------------------------------------------------------
    reuse_shares = {}
    for direction, decreasing in (("exp-increasing", False), ("exp-decreasing", True)):
        report = run_scenario(
            fig14_exponential(
                seed=seed, n_rounds=exp_rounds,
                decreasing=decreasing, round_ms=round_ms,
            )
        )
        for label, use_hotc in (("default", False), ("hotc", True)):
            result = report.arm(label).workload_result
            figure.add_series(
                Series.from_arrays(
                    f"{direction}-{label}",
                    np.arange(1, len(result.rounds) + 1),
                    result.mean_latency_per_round(),
                    x_label="round",
                    y_label="latency (ms)",
                )
            )
            if use_hotc:
                warm = result.total_requests - result.total_cold()
                reuse_shares[direction] = warm / result.total_requests
    figure.note(
        "paper: at least half of the exponentially-increasing requests reuse "
        "existing instances; measured warm share "
        f"{100 * reuse_shares['exp-increasing']:.0f}% (increasing), "
        f"{100 * reuse_shares['exp-decreasing']:.0f}% (decreasing)"
    )

    # -- Fig 14b ------------------------------------------------------------
    burst_report = run_scenario(
        fig14_burst(seed=seed, n_rounds=burst_rounds, round_ms=round_ms)
    )
    burst_default = burst_report.arm("default").workload_result
    burst_hotc = burst_report.arm("hotc").workload_result
    for label, result in (("default", burst_default), ("hotc", burst_hotc)):
        figure.add_series(
            Series.from_arrays(
                f"burst-{label}",
                np.arange(1, len(result.rounds) + 1),
                result.mean_latency_per_round(),
                x_label="round",
                y_label="latency (ms)",
            )
        )

    default_rounds = burst_default.mean_latency_per_round()
    hotc_rounds = burst_hotc.mean_latency_per_round()
    burst_indices = [r for r in (4, 8, 12, 16) if r < len(default_rounds)]
    rows = []
    for burst_index in burst_indices:
        reduction = 100 * (1 - hotc_rounds[burst_index] / default_rounds[burst_index])
        rows.append(
            (
                f"burst @round {burst_index}",
                round(default_rounds[burst_index], 1),
                round(hotc_rounds[burst_index], 1),
                round(reduction, 1),
            )
        )
    figure.add_table(
        Table(
            name="fig14b-burst-reductions",
            columns=("burst", "default (ms)", "hotc (ms)", "reduction %"),
            rows=tuple(rows),
        )
    )
    first = rows[0][3] if rows else float("nan")
    best = max(row[3] for row in rows) if rows else float("nan")
    figure.note(
        "paper: ~9% reduction at the first burst, up to 73% at later bursts; "
        f"measured {first}% first, {best}% best"
    )
    figure.note(
        "failed requests (excluded from latency means): "
        f"default {burst_default.total_failed()}, "
        f"hotc {burst_hotc.total_failed()}"
    )
    return figure
