"""Fig 1 — request latency of an AWS-Lambda-style deployment.

The paper's setup: a Python backend generating a random number; the
client sends one request per second for 10 seconds, sleeps 30 minutes,
and repeats.  The provider's fixed keep-alive (15 minutes) lapses
between bursts, so the first request of every burst is cold.

* Fig 1a: per-request latency — the first of every 10 spikes; in the
  paper the highest latency is ~41.8% above the lowest and ~31.7%
  above the mean.
* Fig 1b: latency CDF vs a local-function baseline — the serverless
  arm has a long tail, the local arm is flat.

``client_rtt_ms`` models the WAN round trip to the provider region plus
the managed API-gateway overhead — the paper's client measures from
outside the datacenter, which is what keeps its cold/warm ratio near
1.4x rather than the 50x seen at the host.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies import FixedKeepAliveProvider
from repro.faas.platform import FaasPlatform
from repro.metrics.latency import empirical_cdf, summarize_latencies
from repro.metrics.report import Figure, Series, Table
from repro.workloads.apps import default_catalog, random_number_app

__all__ = ["run_fig01"]


def run_fig01(
    seed: int = 0,
    bursts: int = 5,
    requests_per_burst: int = 10,
    burst_gap_ms: float = 30 * 60 * 1_000.0,
    keep_alive_ms: float = 15 * 60 * 1_000.0,
    client_rtt_ms: float = 1_320.0,
) -> Figure:
    """Reproduce Fig 1 (a: latency spikes, b: CDF long tail)."""
    if bursts < 1 or requests_per_burst < 2:
        raise ValueError("need at least 1 burst of 2 requests")
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        provider_factory=lambda engine: FixedKeepAliveProvider(
            engine, keep_alive_ms=keep_alive_ms
        ),
        jitter_sigma=0.05,
    )
    spec = random_number_app()
    platform.deploy(spec)
    # Lambda images are staged on the worker before invocation.
    platform.sim.process(platform.engine.ensure_image(spec.image))
    platform.run()

    for burst in range(bursts):
        base = burst * burst_gap_ms
        for index in range(requests_per_burst):
            platform.submit(spec.name, delay=base + index * 1_000.0)
    platform.run()
    platform.shutdown()

    answered = platform.traces.latencies()
    rtt_jitter = np.random.default_rng(seed + 1).normal(
        0.0, 8.0, size=answered.size
    )
    serverless = answered + client_rtt_ms + rtt_jitter

    # The local-function baseline: same handler cost, no platform at all.
    local_rng = np.random.default_rng(seed + 2)
    local = spec.exec_ms * local_rng.lognormal(0.0, 0.03, size=serverless.size)

    summary = summarize_latencies(serverless)
    figure = Figure(figure_id="fig01", title="AWS Lambda-style request latency")
    figure.add_series(
        Series.from_arrays(
            "serverless-latency",
            np.arange(1, serverless.size + 1),
            serverless,
            x_label="request #",
            y_label="latency (ms)",
        )
    )
    x_cdf, p_cdf = empirical_cdf(serverless)
    figure.add_series(
        Series.from_arrays("serverless-cdf", x_cdf, p_cdf, "latency (ms)", "P")
    )
    x_local, p_local = empirical_cdf(local)
    figure.add_series(
        Series.from_arrays("local-cdf", x_local, p_local, "latency (ms)", "P")
    )
    figure.add_table(
        Table(
            name="fig1a-summary",
            columns=("metric", "value"),
            rows=(
                ("cold starts", int(platform.traces.cold_count())),
                ("max/min", round(summary.max_over_min, 3)),
                ("max/mean", round(summary.max_over_mean, 3)),
                ("p99/p50 serverless", round(float(np.percentile(serverless, 99) / np.percentile(serverless, 50)), 3)),
                ("p99/p50 local", round(float(np.percentile(local, 99) / np.percentile(local, 50)), 3)),
            ),
        )
    )
    figure.note(
        "paper: highest latency ~41.8% over lowest, ~31.7% over average; "
        f"measured: {100 * (summary.max_over_min - 1):.1f}% and "
        f"{100 * (summary.max_over_mean - 1):.1f}%"
    )
    figure.note(
        "paper: exactly the first request of each burst is cold; measured "
        f"{platform.traces.cold_count()} cold starts in {bursts} bursts"
    )
    return figure
