"""Fig 5 / Section III — the six-moment OpenFaaS pipeline breakdown.

The paper timestamps a request at six moments and finds "function
initiation time (2->3) dominates the total latency" for cold requests,
while execution and forwarding are small.  The same breakdown on edge
hardware (Raspberry Pi, Jetson TX2) looks "much similar".
"""

from __future__ import annotations

from repro.analysis.coldstart import pipeline_breakdown
from repro.hardware.profiles import JETSON_TX2, RASPBERRY_PI3, T430_SERVER
from repro.metrics.report import Figure, Table

__all__ = ["run_fig05"]


def run_fig05(seed: int = 0, warm_requests: int = 5, include_edge: bool = True) -> Figure:
    """Reproduce the pipeline breakdown on server (and edge) hosts."""
    figure = Figure(
        figure_id="fig05", title="OpenFaaS request pipeline breakdown"
    )
    profiles = [T430_SERVER]
    if include_edge:
        profiles += [RASPBERRY_PI3, JETSON_TX2]

    for profile in profiles:
        breakdown = pipeline_breakdown(
            profile=profile, warm_requests=warm_requests, seed=seed
        )
        rows = []
        for segment in breakdown["cold"]:
            rows.append(
                (
                    segment,
                    round(breakdown["cold"][segment], 2),
                    round(breakdown["warm"][segment], 2),
                )
            )
        figure.add_table(
            Table(
                name=f"breakdown-{profile.name}",
                columns=("segment", "cold (ms)", "warm (ms)"),
                rows=tuple(rows),
            )
        )
        cold_total = sum(breakdown["cold"].values())
        share = breakdown["cold"]["function_init"] / cold_total
        figure.note(
            f"{profile.name}: function_init is {100 * share:.1f}% of the cold "
            "request (paper: dominates the total latency)"
        )
    return figure
