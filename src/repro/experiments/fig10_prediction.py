"""Fig 10 — prediction strategies and parameter sensitivity.

* Fig 10a: real demand vs exponential smoothing vs ES+Markov.  The
  paper observes ES tracks the trend but lags jumps; adding the Markov
  correction brings the relative error down (29% → 10% around the jump
  from 8 to 19 containers at time index 7–10).
* Fig 10b: sensitivity to the smoothing coefficient α (0.1 vs 0.8 vs
  0.95) and the initial-value policy (first observation vs mean of the
  first five).

An extra Markov-only arm is included as the ablation DESIGN.md lists.
"""

from __future__ import annotations


import numpy as np

from repro.core.predictor.combined import CombinedPredictor
from repro.core.predictor.exponential import ExponentialSmoothing
from repro.core.predictor.markov import MarkovChain
from repro.metrics.errors import mean_absolute_percentage_error
from repro.metrics.report import Figure, Series, Table

__all__ = ["demand_series", "run_fig10"]


def demand_series(seed: int = 0, length: int = 40) -> np.ndarray:
    """The per-interval demand for one container type (Fig 10's x-axis).

    Shaped after the paper's description: a low-level start, a jump from
    8 to 19 containers around index 7–10, volatile oscillation after it,
    and a partial decay — with recurring structure the Markov chain can
    learn.
    """
    if length < 12:
        raise ValueError("length must be >= 12")
    rng = np.random.default_rng(seed)
    values = np.empty(length, dtype=float)
    values[:7] = 8.0 + rng.integers(-1, 2, size=7)          # level start
    values[7:10] = np.linspace(8.0, 19.0, 3)                # the 8 -> 19 jump
    oscillation = 14.0 + 5.0 * np.where(np.arange(length - 10) % 2 == 0, 1, -1)
    values[10:] = oscillation + rng.normal(0.0, 0.7, size=length - 10)
    return np.maximum(0.0, np.round(values))


def _markov_only_forecasts(series: np.ndarray, n_states: int = 4) -> np.ndarray:
    """Ablation arm: raw Markov chain over the demand values."""
    chain = MarkovChain(n_states=n_states)
    forecasts = np.empty_like(series)
    for index, value in enumerate(series):
        chain.update(float(value))
        forecasts[index] = chain.predict(float(value)) if chain.ready else value
    return forecasts


def _one_step_errors(series: np.ndarray, forecasts: np.ndarray) -> float:
    """MAPE of forecasts[i] predicting series[i+1]."""
    return mean_absolute_percentage_error(series[1:], forecasts[:-1])


def run_fig10(seed: int = 0, length: int = 40) -> Figure:
    """Reproduce Fig 10a (strategies) and Fig 10b (sensitivity)."""
    series = demand_series(seed=seed, length=length)
    index = np.arange(1, length + 1)

    figure = Figure(figure_id="fig10", title="Adaptive live container prediction")
    figure.add_series(
        Series.from_arrays("real", index, series, "time index", "containers")
    )

    # -- Fig 10a: strategies ------------------------------------------------
    es_forecasts = ExponentialSmoothing(alpha=0.8, init="auto").fit_series(series)
    combined_forecasts = CombinedPredictor(alpha=0.8, init="auto").fit_series(series)
    markov_forecasts = _markov_only_forecasts(series)

    figure.add_series(
        Series.from_arrays("exp-smoothing", index, es_forecasts, "time index", "containers")
    )
    figure.add_series(
        Series.from_arrays("es+markov", index, combined_forecasts, "time index", "containers")
    )
    figure.add_series(
        Series.from_arrays("markov-only", index, markov_forecasts, "time index", "containers")
    )

    errors = {
        "exp-smoothing": _one_step_errors(series, es_forecasts),
        "es+markov": _one_step_errors(series, combined_forecasts),
        "markov-only": _one_step_errors(series, markov_forecasts),
    }
    # Relative error localized at the jump window (paper: 29% -> 10%).
    jump = slice(7, 11)
    jump_errors = {
        name: mean_absolute_percentage_error(
            series[jump], forecasts[6:10]
        )
        for name, forecasts in (
            ("exp-smoothing", es_forecasts),
            ("es+markov", combined_forecasts),
        )
    }
    figure.add_table(
        Table(
            name="fig10a-errors",
            columns=("strategy", "overall MAPE %", "jump-window MAPE %"),
            rows=tuple(
                (
                    name,
                    round(100 * errors[name], 1),
                    round(100 * jump_errors.get(name, float("nan")), 1)
                    if name in jump_errors
                    else "-",
                )
                for name in ("exp-smoothing", "es+markov", "markov-only")
            ),
        )
    )
    figure.note(
        "paper: combining ES and Markov improves accuracy; around the 8->19 "
        f"jump the ES error {100 * jump_errors['exp-smoothing']:.0f}% falls to "
        f"{100 * jump_errors['es+markov']:.0f}% with the correction"
    )

    # -- Fig 10b: sensitivity -------------------------------------------------
    rows = []
    for alpha in (0.1, 0.3, 0.8, 0.95):
        forecasts = CombinedPredictor(alpha=alpha, init="auto").fit_series(series)
        rows.append((f"alpha={alpha}", round(100 * _one_step_errors(series, forecasts), 1)))
        figure.add_series(
            Series.from_arrays(
                f"alpha-{alpha}", index, forecasts, "time index", "containers"
            )
        )
    for init in ("first", "mean5"):
        forecasts = CombinedPredictor(alpha=0.8, init=init).fit_series(series)
        early_error = mean_absolute_percentage_error(series[1:6], forecasts[:5])
        rows.append((f"init={init} (early)", round(100 * early_error, 1)))
    figure.add_table(
        Table(
            name="fig10b-sensitivity",
            columns=("configuration", "MAPE %"),
            rows=tuple(rows),
        )
    )
    figure.note(
        "paper: larger alpha tracks recent data harder but too large "
        "offsets the prediction; historical-mean initial values make the "
        "first few predictions more accurate"
    )
    return figure
