"""Fig 12 — serial and parallel request latency w/ and w/o HotC.

* Fig 12a: a single-thread client, one request every 30 s.  Default:
  every request cold-starts.  HotC: only the very first is cold.
* Fig 12b: ten client threads, each with its own runtime
  configuration.  The paper reports HotC's average latency at ~9% of
  the default case once the pool is warm.

Both panels run through the scenario runner (the ``fig12-serial`` and
``fig12-parallel`` bundled specs), which delegates to the same pattern
harness the figures always used — the numbers are bit-identical to a
direct :func:`~repro.experiments._pattern_harness.run_pattern_arm`
call, which the parity test in ``tests/scenarios`` asserts.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.report import Figure, Series, Table
from repro.scenarios.bundled import fig12_parallel, fig12_serial
from repro.scenarios.runner import run_scenario

__all__ = ["run_fig12"]


def run_fig12(
    seed: int = 0,
    serial_rounds: int = 20,
    parallel_rounds: int = 20,
    n_threads: int = 10,
    round_ms: float = 30_000.0,
) -> Figure:
    """Reproduce Fig 12a (serial) and Fig 12b (parallel)."""
    figure = Figure(figure_id="fig12", title="Serial & parallel request latency")

    # -- Fig 12a: serial ------------------------------------------------------
    serial_report = run_scenario(
        fig12_serial(seed=seed, n_rounds=serial_rounds, round_ms=round_ms)
    )
    serial_default = serial_report.arm("default").workload_result
    serial_hotc = serial_report.arm("hotc").workload_result
    for label, result in (("default", serial_default), ("hotc", serial_hotc)):
        figure.add_series(
            Series.from_arrays(
                f"serial-{label}",
                np.arange(1, len(result.rounds) + 1),
                result.mean_latency_per_round(),
                x_label="round",
                y_label="latency (ms)",
            )
        )

    # -- Fig 12b: parallel ------------------------------------------------------
    parallel_report = run_scenario(
        fig12_parallel(
            seed=seed,
            n_rounds=parallel_rounds,
            n_threads=n_threads,
            round_ms=round_ms,
        )
    )
    parallel_default = parallel_report.arm("default").workload_result
    parallel_hotc = parallel_report.arm("hotc").workload_result
    for label, result in (("default", parallel_default), ("hotc", parallel_hotc)):
        figure.add_series(
            Series.from_arrays(
                f"parallel-{label}",
                np.arange(1, len(result.rounds) + 1),
                result.mean_latency_per_round(),
                x_label="round",
                y_label="latency (ms)",
            )
        )

    hotc_steady = float(
        np.mean(parallel_hotc.mean_latency_per_round()[2:])
    )
    default_mean = parallel_default.mean_latency()
    ratio = hotc_steady / default_mean
    figure.add_table(
        Table(
            name="fig12-summary",
            columns=("experiment", "default mean (ms)", "hotc mean (ms)", "cold: default", "cold: hotc"),
            rows=(
                (
                    "serial",
                    round(serial_default.mean_latency(), 1),
                    round(serial_hotc.mean_latency(), 1),
                    serial_default.total_cold(),
                    serial_hotc.total_cold(),
                ),
                (
                    "parallel",
                    round(default_mean, 1),
                    round(parallel_hotc.mean_latency(), 1),
                    parallel_default.total_cold(),
                    parallel_hotc.total_cold(),
                ),
            ),
        )
    )
    figure.note(
        f"paper: serial — only the first request cold with HotC; measured "
        f"{serial_hotc.total_cold()} cold of {serial_hotc.total_requests}"
    )
    figure.note(
        "paper: parallel — HotC average latency ~9% of the default case; "
        f"measured steady-state ratio {100 * ratio:.0f}%"
    )
    return figure
