"""One module per paper figure (see DESIGN.md's experiment index).

Every ``run_figXX`` function is deterministic given its ``seed`` and
returns a :class:`repro.metrics.Figure` carrying the same series/rows
the paper's figure plots, plus paper-vs-measured notes.  The benchmark
harness (``benchmarks/``) and ``python -m repro.experiments`` both call
these entry points.
"""

from repro.experiments.fig01_lambda_latency import run_fig01
from repro.experiments.fig02_dockerfile_survey import run_fig02
from repro.experiments.fig04_container_startup import run_fig04
from repro.experiments.fig05_openfaas_breakdown import run_fig05
from repro.experiments.fig08_image_recognition import run_fig08
from repro.experiments.fig09_web_latency import run_fig09
from repro.experiments.fig10_prediction import run_fig10
from repro.experiments.fig11_trace import run_fig11
from repro.experiments.fig12_serial_parallel import run_fig12
from repro.experiments.fig13_linear import run_fig13
from repro.experiments.fig14_exp_burst import run_fig14
from repro.experiments.fig15_overhead import run_fig15
from repro.experiments.fig16_repurpose import run_fig16
from repro.experiments.runner import ALL_EXPERIMENTS, run_all

__all__ = [
    "ALL_EXPERIMENTS",
    "run_all",
    "run_fig01",
    "run_fig02",
    "run_fig04",
    "run_fig05",
    "run_fig08",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
]
