"""Fig 4 — cold vs hot execution per language, and network setup costs.

* Fig 4a/b: the 3.3 MB S3-download benchmark in Go / Python / Node /
  Java, cold (fresh container) vs hot (reused container).  Targets: Go
  cold/hot == 3.06x; Java cold doubles an already ~1.1 s hot run.
* Fig 4c: container boot time under each network mode.  Targets:
  bridge/host == none, container mode == half, overlay/routing up to
  23x the multi-host host mode.
"""

from __future__ import annotations

from repro.analysis.coldstart import (
    language_cold_hot_comparison,
    network_mode_startup,
)
from repro.hardware.profiles import HostProfile, T430_SERVER
from repro.metrics.report import Figure, Table

__all__ = ["run_fig04"]


def run_fig04(
    seed: int = 0,
    runs: int = 5,
    profile: HostProfile = T430_SERVER,
) -> Figure:
    """Reproduce Fig 4's language and network panels."""
    languages = language_cold_hot_comparison(runs=runs, seed=seed, profile=profile)
    networks = network_mode_startup(runs=runs, seed=seed, profile=profile)

    figure = Figure(figure_id="fig04", title="Container startup cost structure")
    figure.add_table(
        Table(
            name="fig4ab-language-cold-hot",
            columns=("language", "cold (ms)", "hot (ms)", "cold/hot"),
            rows=tuple(
                (
                    language,
                    round(stats["cold_ms"], 1),
                    round(stats["hot_ms"], 1),
                    round(stats["ratio"], 2),
                )
                for language, stats in sorted(languages.items())
            ),
        )
    )
    host_reference = networks["multihost-host"]
    figure.add_table(
        Table(
            name="fig4c-network-startup",
            columns=("mode", "network setup (ms)", "vs multihost-host"),
            rows=tuple(
                (mode, round(ms, 1), round(ms / host_reference, 2))
                for mode, ms in networks.items()
            ),
        )
    )
    figure.note(
        f"paper: Go cold/hot = 3.06x; measured {languages['go']['ratio']:.2f}x"
    )
    figure.note(
        "paper: cold start doubles Java's already long run; measured "
        f"{languages['java']['ratio']:.2f}x over a "
        f"{languages['java']['hot_ms'] / 1000:.2f}s hot run"
    )
    figure.note(
        "paper: overlay up to 23x host-mode startup; measured "
        f"{networks['overlay'] / host_reference:.1f}x"
    )
    return figure
