"""Fig 16 — inter-key repurposing rate across corpus concentration.

Beyond the paper: the Fig 2 Dockerfile survey shows a few base images
dominate the corpus, which is exactly the sharing potential Pagurus
exploits — an idle container warmed for one function can be
re-specialized ("zygote" sharing) into a runtime for another function
built on the same base, far cheaper than a cold boot.

This experiment derives a function population from the Fig 2 corpus at
three concentration levels (the whole corpus, then the more head-heavy
top-starred slices), gives every function its *own* derived image (so
exact and relaxed keys never match across functions), and replays the
same seeded workload with repurposing off and on.  The repurpose rate —
cold starts eliminated — rises with head concentration, because more
function pairs share a base-image layer prefix.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.dockerfiles import generate_corpus, survey_corpus
from repro.containers import Registry, derive_image
from repro.containers.image import WELL_KNOWN_BASES
from repro.core.hotc import HotC, HotCConfig
from repro.core.keys import KeyPolicy
from repro.faas.function import FunctionSpec
from repro.faas.platform import FaasPlatform
from repro.metrics.report import Figure, Series, Table, reuse_table

__all__ = ["run_fig16"]

#: Corpus slices, most-to-least diffuse: the paper's top-starred panel
#: is more concentrated than the all-projects panel (Fig 2).
_LEVELS: Tuple[Tuple[str, int], ...] = (("all", 0), ("top-200", 200), ("top-50", 50))

_BASES: Dict[str, object] = {image.reference: image for image in WELL_KNOWN_BASES}


def _function_population(
    corpus_seed: int, top_n: int, n_functions: int
) -> List[Tuple[str, str]]:
    """Sample ``(function name, base reference)`` pairs from the corpus.

    Base images are drawn with the surveyed share of each well-known
    base in the (possibly star-sliced) corpus, so a more concentrated
    slice yields more functions per base — more donors per request.
    """
    corpus = generate_corpus(n_projects=600, seed=corpus_seed)
    if top_n:
        corpus = corpus.top_by_stars(top_n)
    survey = survey_corpus(corpus)
    shares = [
        (image, share)
        for image, share in survey.image_shares
        if image in _BASES
    ]
    references = [image for image, _ in shares]
    weights = np.array([share for _, share in shares])
    weights = weights / weights.sum()
    rng = np.random.default_rng(corpus_seed + 211)
    return [
        (f"fn-{index:02d}", references[int(rng.choice(len(references), p=weights))])
        for index in range(n_functions)
    ]


def _run_arm(
    population: List[Tuple[str, str]],
    repurpose: bool,
    seed: int,
    requests: int,
    interval_ms: float,
):
    """One replay of the corpus workload, repurposing off or on."""
    registry = Registry(list(WELL_KNOWN_BASES))
    config = HotCConfig(
        control_interval_ms=0.0,
        fallback_key_policy=KeyPolicy.RELAXED,
        repurpose=repurpose,
    )
    platform = FaasPlatform(
        registry,
        seed=seed,
        jitter_sigma=0.0,
        provider_factory=lambda engine: HotC(engine, config),
    )
    specs = []
    for index, (name, base_reference) in enumerate(population):
        base = _BASES[base_reference]
        image = derive_image(
            base, name=f"app/{name}", tag="1", extra_mb=12.0 + 2.0 * index
        )
        registry.push(image)
        language = base.language or "python"
        specs.append(
            FunctionSpec(
                name=name,
                image=image.reference,
                language=language,
                exec_ms=40.0,
                env=(("FN", name),),
                mem_mb=(128.0, 160.0, 192.0)[index % 3],
            )
        )
    for spec in specs:
        platform.deploy(spec)
        platform.sim.process(platform.engine.ensure_image(spec.image))
    platform.run()

    chooser = np.random.default_rng(seed + 31)
    for index in range(requests):
        name = specs[int(chooser.integers(0, len(specs)))].name
        platform.submit(name, delay=index * interval_ms)
    platform.run()
    platform.shutdown()
    return platform


def run_fig16(
    seed: int = 0,
    requests: int = 60,
    interval_ms: float = 1_500.0,
    n_functions: int = 10,
) -> Figure:
    """Repurpose rate vs corpus head concentration (off/on ablation)."""
    if n_functions < 2:
        raise ValueError("need at least two functions to repurpose between")
    figure = Figure(
        figure_id="fig16",
        title="Cold starts eliminated by inter-key repurposing",
    )
    concentrations: List[float] = []
    eliminated: List[int] = []
    rows = []
    last_enabled = None
    for label, top_n in _LEVELS:
        corpus = generate_corpus(n_projects=600, seed=seed)
        if top_n:
            corpus = corpus.top_by_stars(top_n)
        concentration = survey_corpus(corpus).head_concentration(5)
        population = _function_population(seed, top_n, n_functions)
        off = _run_arm(population, False, seed, requests, interval_ms)
        on = _run_arm(population, True, seed, requests, interval_ms)
        last_enabled = on
        stats = on.provider.pool.stats
        concentrations.append(concentration)
        eliminated.append(stats.cold_starts_eliminated)
        rows.append(
            (
                label,
                round(concentration, 3),
                int(off.traces.cold_count()),
                int(on.traces.cold_count()),
                int(stats.repurposed),
                int(stats.relaxed_hits),
                round(float(off.traces.mean_latency()), 1),
                round(float(on.traces.mean_latency()), 1),
            )
        )
    figure.add_series(
        Series.from_arrays(
            "cold-starts-eliminated",
            concentrations,
            eliminated,
            x_label="top-5 base-image share",
            y_label="cold starts eliminated",
        )
    )
    figure.add_table(
        Table(
            name="fig16-summary",
            columns=(
                "corpus",
                "head-concentration",
                "cold (off)",
                "cold (on)",
                "repurposed",
                "relaxed hits",
                "mean latency off (ms)",
                "mean latency on (ms)",
            ),
            rows=tuple(rows),
        )
    )
    figure.add_table(
        reuse_table(
            pool_stats=(last_enabled.provider.pool.stats,),
            engine_stats=(last_enabled.engine.stats,),
            traces=last_enabled.traces,
            name="fig16-reuse-breakdown",
        )
    )
    figure.note(
        "Beyond the paper: each function owns a distinct derived image, so "
        "exact and relaxed keys never match across functions — every "
        "eliminated cold start comes from re-specializing an idle donor "
        "built on a shared base image. Consistent with Pagurus's finding "
        "that re-packing an idle container of another function is far "
        "cheaper than a cold boot; the repurpose rate tracks the Fig 2 "
        "head concentration of the corpus slice."
    )
    return figure
