"""Fig 15 — HotC's resource overhead.

* Fig 15a: CPU and memory usage as a function of the number of live
  (idle) containers — "<1% CPU for ten live containers, ~0.7 MB per
  container", measured on both the server and the Raspberry Pi.
* Fig 15b: resource timeline across a containerized Cassandra
  lifecycle: start the database at ~6 s, stop it at ~13 s, keep the
  container live — application execution, not the live container,
  dominates resource consumption.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.containers.container import ContainerConfig
from repro.containers.engine import ContainerEngine
from repro.hardware.profiles import HostProfile, RASPBERRY_PI3, T430_SERVER
from repro.metrics.monitor import ResourceMonitor
from repro.metrics.report import Figure, Series, Table
from repro.sim.engine import Simulator
from repro.workloads.apps import cassandra_app, default_catalog

__all__ = ["run_fig15"]


def _run(sim, generator):
    process = sim.process(generator)
    sim.run()
    if not process.ok:
        raise process.value
    return process.value


def _idle_pool_usage(profile: HostProfile, counts: Sequence[int], seed: int):
    """CPU% / memory (MB) with n idle alpine containers live."""
    rows = []
    for count in counts:
        sim = Simulator()
        registry = default_catalog().make_registry()
        engine = ContainerEngine(
            sim, registry, profile=profile,
            rng=np.random.default_rng(seed), jitter_sigma=0.0,
        )
        _run(sim, engine.ensure_image("alpine:3.8"))
        baseline_cpu = engine.resources.cpu_fraction
        baseline_mem = engine.resources.used_mem_mb
        for _ in range(count):
            _run(
                sim,
                engine.boot_container(
                    ContainerConfig(image="alpine:3.8", cpu_millicores=50, mem_mb=8)
                ),
            )
        rows.append(
            (
                count,
                round(100 * (engine.resources.cpu_fraction - baseline_cpu), 3),
                round(engine.resources.used_mem_mb - baseline_mem, 2),
            )
        )
    return rows


def run_fig15(
    seed: int = 0,
    counts: Sequence[int] = (0, 1, 10, 50, 100, 500),
    sample_ms: float = 500.0,
) -> Figure:
    """Reproduce Fig 15a (idle pool sweep) and Fig 15b (lifecycle)."""
    figure = Figure(figure_id="fig15", title="HotC resource overhead")

    # -- Fig 15a -------------------------------------------------------------
    for profile in (T430_SERVER, RASPBERRY_PI3):
        # The Pi cannot hold 500 live containers in 1 GB of memory; sweep
        # what fits (the paper also shows smaller counts on the Pi).
        usable = [
            count
            for count in counts
            if count * 0.7 < profile.mem_mb * 0.9
        ]
        rows = _idle_pool_usage(profile, usable, seed)
        figure.add_table(
            Table(
                name=f"fig15a-{profile.name}",
                columns=("live containers", "cpu delta %", "mem delta (MB)"),
                rows=tuple(rows),
            )
        )
        ten = next((row for row in rows if row[0] == 10), None)
        if ten:
            figure.note(
                f"{profile.name}: 10 live containers cost {ten[1]}% CPU and "
                f"{ten[2]} MB (paper: <1% CPU, ~0.7 MB per container)"
            )

    # -- Fig 15b -------------------------------------------------------------
    sim = Simulator()
    registry = default_catalog().make_registry()
    engine = ContainerEngine(
        sim, registry, rng=np.random.default_rng(seed), jitter_sigma=0.02
    )
    monitor = ResourceMonitor(engine, period_ms=sample_ms)
    spec = cassandra_app()
    _run(sim, engine.ensure_image(spec.image))
    monitor.start()

    def lifecycle():
        # Boot the container immediately; the paper starts the Cassandra
        # *application* at the 6th second and stops it at the 13th while
        # keeping the container live afterwards.
        container = yield from engine.boot_container(spec.container_config())
        yield sim.timeout(max(0.0, 6_000.0 - sim.now))
        yield from engine.execute(container, spec.exec_spec())
        return container

    # The monitor loop re-arms its own timer, so run bounded, not to
    # queue exhaustion.
    lifecycle_proc = sim.process(lifecycle())
    sim.run(until=20_000.0)
    monitor.stop()
    sim.run(until=20_000.0 + 2 * sample_ms)
    if not lifecycle_proc.ok:
        raise lifecycle_proc.value

    figure.add_series(
        Series.from_arrays(
            "cassandra-cpu", monitor.times_s, monitor.cpu_percent,
            x_label="time (s)", y_label="cpu %",
        )
    )
    figure.add_series(
        Series.from_arrays(
            "cassandra-mem", monitor.times_s, monitor.mem_mb,
            x_label="time (s)", y_label="memory (MB)",
        )
    )
    exec_window = (monitor.times_s >= 6.0) & (monitor.times_s <= 13.0)
    idle_window = monitor.times_s > 14.0
    peak_mem = float(monitor.mem_mb[exec_window].max())
    idle_mem = float(monitor.mem_mb[idle_window].mean())
    figure.add_table(
        Table(
            name="fig15b-summary",
            columns=("phase", "mem (MB)", "cpu %"),
            rows=(
                ("app executing (6-13s)", round(peak_mem, 1),
                 round(float(monitor.cpu_percent[exec_window].max()), 2)),
                ("container live, app stopped", round(idle_mem, 2),
                 round(float(monitor.cpu_percent[idle_window].mean()), 3)),
            ),
        )
    )
    figure.note(
        "paper: application execution dominates resource consumption; the OS "
        "reclaims unused memory quickly once the app stops. Measured idle "
        f"live-container footprint {idle_mem:.1f} MB vs {peak_mem:.0f} MB "
        "during execution"
    )
    return figure
