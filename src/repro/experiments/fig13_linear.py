"""Fig 13 — linearly increasing and decreasing request flows.

Increasing (+2 requests every 30 s): with HotC, each round reuses the
previous round's containers and cold-starts only the two extra
requests.  Decreasing (−2 per round): after the first round there is
always a hot container available, so latency stays low throughout.

Both directions run through the scenario runner (the
``fig13-increasing`` / ``fig13-decreasing`` bundled specs); outputs are
bit-identical to the direct harness calls.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.report import Figure, Series, Table
from repro.scenarios.bundled import fig13_decreasing, fig13_increasing
from repro.scenarios.runner import run_scenario

__all__ = ["run_fig13"]


def run_fig13(
    seed: int = 0,
    n_rounds: int = 10,
    start_decreasing: int = 20,
    round_ms: float = 30_000.0,
) -> Figure:
    """Reproduce Fig 13 (linear increase / decrease)."""
    figure = Figure(figure_id="fig13", title="Linear increasing/decreasing requests")
    arms = {}
    specs = {
        "increasing": fig13_increasing(seed=seed, n_rounds=n_rounds, round_ms=round_ms),
        "decreasing": fig13_decreasing(
            seed=seed, n_rounds=n_rounds, start=start_decreasing, round_ms=round_ms
        ),
    }
    for direction, spec in specs.items():
        report = run_scenario(spec)
        for label in ("default", "hotc"):
            result = report.arm(label).workload_result
            arms[(direction, label)] = result
            figure.add_series(
                Series.from_arrays(
                    f"{direction}-{label}",
                    np.arange(1, len(result.rounds) + 1),
                    result.mean_latency_per_round(),
                    x_label="round",
                    y_label="latency (ms)",
                )
            )

    rows = []
    for direction in ("increasing", "decreasing"):
        default = arms[(direction, "default")]
        hotc = arms[(direction, "hotc")]
        rows.append(
            (
                direction,
                round(default.mean_latency(), 1),
                round(hotc.mean_latency(), 1),
                default.total_cold(),
                hotc.total_cold(),
                default.total_failed(),
                hotc.total_failed(),
            )
        )
    figure.add_table(
        Table(
            name="fig13-summary",
            columns=("direction", "default mean (ms)", "hotc mean (ms)",
                     "cold: default", "cold: hotc",
                     "failed: default", "failed: hotc"),
            rows=tuple(rows),
        )
    )

    increasing_hotc = arms[("increasing", "hotc")]
    per_round_cold = [int(c) for c in increasing_hotc.cold_counts_per_round()]
    figure.note(
        "paper: increasing — only the per-round increment cold-starts under "
        f"HotC; measured per-round colds {per_round_cold}"
    )
    decreasing_hotc = arms[("decreasing", "hotc")]
    after_first = decreasing_hotc.cold_counts_per_round()[1:]
    figure.note(
        "paper: decreasing — a hot container is always available after the "
        f"first round; measured colds after round 1: {int(after_first.sum())}"
    )
    return figure
