"""Fig 8 — image-recognition execution time with and without HotC.

The paper runs two apps ten times each and averages:

* ``v3-app`` (Python, inception-v3): −33.2% on the T430 server,
  −26.6% on the Raspberry Pi (overlay-network containers).
* ``TF-API-app`` (Go, Tensorflow APIs): −23.9% server, −20.6% Pi.

The measurement is application-level: time from the client deciding to
run the app until the result is ready — container acquisition included.
Without HotC that is boot + init + exec every run; with HotC the warm
runs pay only (code inject + exec).
"""

from __future__ import annotations


import numpy as np

from repro.containers.engine import ContainerEngine
from repro.core.hotc import HotC
from repro.faas.function import FunctionSpec
from repro.containers.network import NetworkConfig
from repro.hardware.profiles import HostProfile, RASPBERRY_PI3, T430_SERVER
from repro.metrics.report import Figure, Table
from repro.sim.engine import Simulator
from repro.workloads.apps import default_catalog, tf_api_app, v3_app

__all__ = ["run_fig08", "measure_app"]


def _run(sim, generator):
    process = sim.process(generator)
    sim.run()
    if not process.ok:
        raise process.value
    return process.value


def measure_app(
    spec: FunctionSpec,
    profile: HostProfile,
    use_hotc: bool,
    runs: int = 10,
    seed: int = 0,
) -> float:
    """Mean steady-state execution time (ms) of ``spec`` on ``profile``.

    Matches the paper's methodology: ten timed runs, averaged.  With
    HotC, the pool is warmed by one untimed run first (the paper's
    averages reflect the steady reuse regime it highlights).
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    sim = Simulator()
    registry = default_catalog().make_registry()
    engine = ContainerEngine(
        sim,
        registry,
        profile=profile,
        rng=np.random.default_rng(seed),
        jitter_sigma=0.04,
    )
    _run(sim, engine.ensure_image(spec.image))  # images stored locally (Sec V-A)

    durations = []
    if use_hotc:
        provider = HotC(engine)

        def one_run():
            container, _cold = yield from provider.acquire(spec.container_config())
            yield from engine.execute(container, spec.exec_spec())
            done = sim.now
            yield from provider.release(container)
            return done

        _run(sim, one_run())  # warm-up run populates the pool
        for _ in range(runs):
            start = sim.now
            finish = _run(sim, one_run())
            durations.append(finish - start)
    else:
        def one_cold_run():
            container = yield from engine.boot_container(spec.container_config())
            yield from engine.execute(container, spec.exec_spec())
            done = sim.now
            yield from engine.stop_container(container)
            yield from engine.remove_container(container)
            return done

        for _ in range(runs):
            start = sim.now
            finish = _run(sim, one_cold_run())
            durations.append(finish - start)
    return float(np.mean(durations))


def run_fig08(seed: int = 0, runs: int = 10) -> Figure:
    """Reproduce Fig 8a (server) and Fig 8b (Raspberry Pi)."""
    paper_reductions = {
        ("t430-server", "v3-app"): 33.2,
        ("t430-server", "tf-api-app"): 23.9,
        ("raspberry-pi3", "v3-app"): 26.6,
        ("raspberry-pi3", "tf-api-app"): 20.6,
    }
    figure = Figure(
        figure_id="fig08", title="Image recognition execution time w/ and w/o HotC"
    )
    for profile in (T430_SERVER, RASPBERRY_PI3):
        # Section V-B: the Pi runs the apps in overlay-network containers.
        network = (
            NetworkConfig(mode="overlay")
            if profile is RASPBERRY_PI3
            else NetworkConfig(mode="bridge")
        )
        rows = []
        for spec in (v3_app(network=network), tf_api_app(network=network)):
            default_ms = measure_app(spec, profile, use_hotc=False, runs=runs, seed=seed)
            hotc_ms = measure_app(spec, profile, use_hotc=True, runs=runs, seed=seed)
            reduction = 100 * (1 - hotc_ms / default_ms)
            paper = paper_reductions[(profile.name, spec.name)]
            rows.append(
                (
                    spec.name,
                    round(default_ms, 0),
                    round(hotc_ms, 0),
                    round(reduction, 1),
                    paper,
                )
            )
            figure.note(
                f"{profile.name}/{spec.name}: paper −{paper}%, "
                f"measured −{reduction:.1f}%"
            )
        figure.add_table(
            Table(
                name=f"fig8-{profile.name}",
                columns=(
                    "app",
                    "default (ms)",
                    "HotC (ms)",
                    "reduction %",
                    "paper %",
                ),
                rows=tuple(rows),
            )
        )
    return figure
