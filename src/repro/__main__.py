"""Top-level CLI: ``python -m repro <command>``.

Commands
--------
``experiments [figXX ...]``
    Run (all or selected) figure reproductions and print them.
``apps``
    List the evaluation application catalog with cost profiles.
``profiles``
    List the host hardware profiles.
``survey [--projects N]``
    Run the Fig 2 Dockerfile survey and print both panels.
``scenarios list``
    List the bundled scenario specs.
``scenarios show <spec>``
    Print a bundled (or JSON-file) spec as JSON.
``scenarios run <spec> [--jobs N] [--out DIR]``
    Run a scenario (bundled name or JSON spec file) and print the report.
``version``
    Print the package version.
"""

from __future__ import annotations

import argparse
import sys

import repro


def cmd_experiments(args) -> int:
    from repro.experiments import run_all

    only = args.figures or None
    figures = run_all(only=only, seed=args.seed, jobs=args.jobs)
    for figure in figures.values():
        print(figure.render())
        print()
    return 0


def cmd_apps(args) -> int:
    from repro.metrics.report import format_table
    from repro.workloads import default_catalog

    catalog = default_catalog()
    rows = []
    for name in catalog.names():
        spec = catalog.get(name)
        rows.append(
            (
                name,
                spec.image,
                spec.language,
                spec.exec_ms,
                spec.app_init_ms,
                spec.mem_mb,
            )
        )
    print(
        format_table(
            ("app", "image", "language", "exec (ms)", "init (ms)", "mem (MB)"),
            rows,
        )
    )
    return 0


def cmd_profiles(args) -> int:
    from repro.hardware import get_profile, list_profiles
    from repro.metrics.report import format_table

    rows = []
    for name in list_profiles():
        profile = get_profile(name)
        rows.append(
            (
                name,
                profile.cores,
                profile.clock_ghz,
                profile.mem_mb,
                profile.compute_scale,
                profile.container_op_scale,
            )
        )
    print(
        format_table(
            ("profile", "cores", "GHz", "mem (MB)", "compute x", "ops x"),
            rows,
        )
    )
    return 0


def cmd_survey(args) -> int:
    from repro.experiments import run_fig02

    print(run_fig02(seed=args.seed, n_projects=args.projects).render())
    return 0


def _resolve_spec(name: str, seed: int):
    """A bundled scenario by name, or a spec loaded from a JSON file."""
    import os

    from repro.scenarios import bundled_names, bundled_spec, load_spec

    if name in bundled_names():
        return bundled_spec(name, seed=seed)
    if os.path.exists(name):
        return load_spec(name)
    known = ", ".join(bundled_names())
    raise SystemExit(
        f"unknown scenario {name!r}: not a bundled name ({known}) "
        "and not a spec file"
    )


def cmd_scenarios(args) -> int:
    from repro.scenarios import bundled_names, bundled_spec, run_scenario

    if args.action == "list":
        for name in bundled_names():
            spec = bundled_spec(name)
            print(f"{name:<32}{spec.description}")
        return 0
    spec = _resolve_spec(args.spec, seed=args.seed)
    if args.action == "show":
        print(spec.to_json(), end="")
        return 0
    report = run_scenario(spec, jobs=args.jobs, out_dir=args.out)
    print(report.render(), end="")
    if args.out:
        print(f"report artifacts written to {args.out}/")
    return 0


def cmd_version(args) -> int:
    print(repro.__version__)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HotC reproduction (CLUSTER 2021) command line",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    commands = parser.add_subparsers(dest="command", required=True)

    experiments = commands.add_parser(
        "experiments", help="run figure reproductions"
    )
    experiments.add_argument("figures", nargs="*", help="e.g. fig08 fig14")
    experiments.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (output identical to serial)",
    )
    experiments.set_defaults(func=cmd_experiments)

    apps = commands.add_parser("apps", help="list the application catalog")
    apps.set_defaults(func=cmd_apps)

    profiles = commands.add_parser("profiles", help="list host profiles")
    profiles.set_defaults(func=cmd_profiles)

    survey = commands.add_parser("survey", help="run the Dockerfile survey")
    survey.add_argument("--projects", type=int, default=2_000)
    survey.set_defaults(func=cmd_survey)

    scenarios = commands.add_parser(
        "scenarios", help="list/show/run scenario specs"
    )
    actions = scenarios.add_subparsers(dest="action", required=True)
    scenarios_list = actions.add_parser("list", help="list bundled scenarios")
    scenarios_list.set_defaults(func=cmd_scenarios)
    scenarios_show = actions.add_parser("show", help="print a spec as JSON")
    scenarios_show.add_argument("spec", help="bundled name or spec file")
    scenarios_show.set_defaults(func=cmd_scenarios)
    scenarios_run = actions.add_parser("run", help="run a scenario")
    scenarios_run.add_argument("spec", help="bundled name or spec file")
    scenarios_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="arm worker processes (report identical to serial)",
    )
    scenarios_run.add_argument(
        "--out", default=None, help="write report.json/report.txt here"
    )
    scenarios_run.set_defaults(func=cmd_scenarios)

    version = commands.add_parser("version", help="print the version")
    version.set_defaults(func=cmd_version)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
