"""The gateway: entry point and proxy of the platform (Fig 5).

"The clients send requests to the gateway, which acts as an entry to
the backends.  Gateway works as a proxy forwarding requests to the
corresponding functions and can be scaled to multiple instances."

The gateway stamps moments (1) and (6), applies its proxy forwarding
cost, and bounds in-flight requests with a concurrency limit.  With an
:class:`~repro.admission.AdmissionController` attached it also applies
overload protection in front of the proxy pipeline: per-function
concurrency limits with bounded queues, deadline enforcement, and load
shedding — rejected requests travel the error-response path back to the
client instead of queueing forever.
"""

from __future__ import annotations

from typing import Generator

from repro.containers.engine import ContainerEngine
from repro.faas.function import FunctionSpec
from repro.faas.tracing import RequestTrace
from repro.faas.watchdog import Watchdog
from repro.obs.events import EventKind

__all__ = ["Gateway"]


class Gateway:
    """Proxies client requests to per-function watchdogs."""

    def __init__(
        self,
        sim,
        engine: ContainerEngine,
        provider,
        concurrency: int = 1024,
        request_retries: int = 1,
    ) -> None:
        if concurrency < 1:
            raise ValueError("gateway concurrency must be >= 1")
        self.sim = sim
        self.engine = engine
        self.watchdog = Watchdog(
            sim, engine, provider, max_retries=request_retries
        )
        self._slots = sim.resource(concurrency, name="gateway")
        self.inflight_peak = 0
        self.queue_depth_peak = 0
        #: Optional observatory; ``None`` keeps the hooks inert.
        self.obs = None
        #: Optional admission controller; ``None`` keeps the gateway's
        #: behaviour bit-identical to the pre-admission pipeline.
        self.admission = None

    def attach_observatory(self, observatory) -> None:
        """Record request outcomes and end-to-end latency histograms."""
        self.obs = observatory
        self.watchdog.attach_observatory(observatory)

    @property
    def inflight(self) -> int:
        """Requests currently inside the gateway."""
        return self._slots.in_use

    @property
    def queue_depth(self) -> int:
        """Requests waiting for a gateway concurrency slot."""
        return self._slots.queued

    def handle(self, spec: FunctionSpec, trace: RequestTrace) -> Generator:
        """Process: the full request pipeline, moments (1)..(6)."""
        latency = self.engine.latency

        # Client -> gateway network hop.
        yield self.sim.timeout(latency.faas_stage("client_to_gateway"))
        trace.t1_gateway_in = self.sim.now

        admission = self.admission
        if admission is not None:
            admitted = yield from admission.admit(spec, trace)
            if not admitted:
                # Shed or past-deadline: the trace already carries the
                # terminal outcome; only the error response goes back.
                trace = yield from self._respond(spec, trace, latency)
                return trace

        grant = self._slots.request()
        if not grant.triggered:
            depth = self._slots.queued
            if depth > self.queue_depth_peak:
                self.queue_depth_peak = depth
        try:
            yield grant
        except BaseException:
            # Abandoned while waiting (interrupt, kill): a waiter left
            # parked would absorb a future release and leak that slot
            # forever; if the grant already raced in, hand it back.
            if not self._slots.cancel(grant):
                self._slots.release()
            raise
        self.inflight_peak = max(self.inflight_peak, self._slots.in_use)
        try:
            # MakeQueuedProxy: route lookup + forwarding.
            yield self.sim.timeout(latency.faas_stage("gateway_proxy"))
            yield self.sim.timeout(latency.faas_stage("gateway_to_watchdog"))

            trace = yield from self.watchdog.handle(spec, trace)

            yield self.sim.timeout(latency.faas_stage("watchdog_to_gateway"))
        finally:
            self._slots.release()
            if admission is not None:
                admission.release(spec, trace, self.sim.now)

        trace = yield from self._respond(spec, trace, latency)
        return trace

    def _respond(self, spec: FunctionSpec, trace: RequestTrace, latency) -> Generator:
        """Process: moment (6) — the response (or rejection) reaches the
        client — plus the terminal observability records."""
        yield self.sim.timeout(latency.faas_stage("gateway_to_client"))
        trace.t6_client_recv = self.sim.now
        if self.obs is not None:
            outcome = trace.outcome.value
            host = self.engine.name
            self.obs.emit(
                EventKind.REQUEST_DONE,
                t=trace.t6_client_recv,
                host=host,
                key=spec.name,
                outcome=outcome,
                cold_start=trace.cold_start,
                retries=trace.retries,
            )
            self.obs.counter(
                "requests_total",
                help="Requests by terminal outcome",
                host=host,
                function=spec.name,
                outcome=outcome,
            ).inc()
            self.obs.histogram(
                "request_latency_ms",
                help="End-to-end client latency (moments 0 to 6)",
                host=host,
                function=spec.name,
            ).observe(trace.t6_client_recv - trace.t0_client_send)
        return trace
