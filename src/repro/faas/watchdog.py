"""The watchdog: OpenFaaS's per-function HTTP shell.

Section III: "The watchdog is a tiny Golang HTTP server ... puts a layer
of HTTP shell on the function, writes to the stdin of the function
process, and receives the response data from the function process
stdout."

In the simulation the watchdog owns moments (2)–(5) of a request: it
receives the forwarded request, obtains a runtime container from the
provider (this is where cold start lands, making segment 2→3 dominate),
runs the handler, and emits the response.  Cleanup is handed back to the
provider asynchronously so it never blocks the response.

Failure handling: a container-level failure (boot failure the provider
could not recover, host outage, mid-execution crash) is retried at the
request level up to ``max_retries`` times — the dead container is
discarded through the provider so its bookkeeping rolls back, then the
whole acquire/execute attempt repeats.  When retries are exhausted the
request terminates with :class:`~repro.faas.tracing.RequestOutcome.FAILED`
and an error response travels back to the client like any other
response; the exception never escapes the watchdog.
"""

from __future__ import annotations

from typing import Generator

from repro.containers.container import ContainerError
from repro.containers.engine import ContainerEngine
from repro.faas.function import FunctionSpec
from repro.faas.tracing import RequestOutcome, RequestTrace

__all__ = ["Watchdog"]


class Watchdog:
    """Executes requests for functions against a container engine."""

    def __init__(
        self,
        sim,
        engine: ContainerEngine,
        provider,
        max_retries: int = 1,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.sim = sim
        self.engine = engine
        self.provider = provider
        self.max_retries = max_retries
        #: Optional observatory; ``None`` keeps the hooks inert.
        self.obs = None

    def attach_observatory(self, observatory) -> None:
        """Record retry and failure counters (``None`` detaches)."""
        self.obs = observatory

    def handle(self, spec: FunctionSpec, trace: RequestTrace) -> Generator:
        """Process: moments (2)..(5) of the request pipeline."""
        latency = self.engine.latency
        trace.t2_watchdog_in = self.sim.now

        # fork/exec of the handler process + stdin pipe setup.
        yield self.sim.timeout(latency.faas_stage("watchdog_fork"))

        attempts = 0
        while True:
            container = None
            try:
                container, cold_boot = yield from self.provider.acquire(
                    spec.container_config()
                )
                # Multi-host providers place containers on their own
                # engines; run the handler on the engine that owns it.
                resolve = getattr(self.provider, "engine_for", None)
                engine = resolve(container) if resolve is not None else self.engine
                result = yield from engine.execute(container, spec.exec_spec())
            except ContainerError as error:
                if container is not None:
                    # The acquired container died under us: roll back the
                    # provider's bookkeeping before trying again.
                    self.provider.discard(container)
                if attempts >= self.max_retries:
                    trace = yield from self._fail(trace, attempts, error, latency)
                    return trace
                if self.sim.now >= trace.deadline:
                    # No budget left: a retry would boot a container for
                    # a request that can no longer succeed in time.
                    trace = yield from self._fail(
                        trace,
                        attempts,
                        error,
                        latency,
                        outcome=RequestOutcome.DEADLINE,
                    )
                    return trace
                attempts += 1
                self.engine.stats.request_retries += 1
                if self.obs is not None:
                    self.obs.counter(
                        "request_retries_total",
                        help="Request-level retries after container failures",
                        host=self.engine.name,
                        function=spec.name,
                    ).inc()
                continue
            break

        trace.t4_function_stop = self.sim.now
        # Moment (3) is when business logic begins: everything before the
        # pure exec segment is initiation (queueing, runtime init, app init).
        trace.t3_function_start = trace.t4_function_stop - result.exec_ms
        trace.cold_start = cold_boot or result.cold_start
        trace.container_id = container.container_id
        trace.runtime_init_ms = result.runtime_init_ms
        trace.app_init_ms = result.app_init_ms
        trace.exec_ms = result.exec_ms
        trace.respec_ms = container.respec_ms
        trace.reuse = container.reuse
        # exec_count was already bumped for this exec, so depth is the
        # number of requests the container had served *before* this one.
        trace.reuse_count = max(0, container.exec_count - 1)
        trace.retries = attempts
        trace.outcome = (
            RequestOutcome.RETRIED if attempts else RequestOutcome.SUCCESS
        )

        # Read stdout + wrap the HTTP response.
        yield self.sim.timeout(latency.faas_stage("watchdog_pipe"))
        trace.t5_watchdog_out = self.sim.now

        # Hand the container back off the critical path.
        self.sim.process(
            self.provider.release(container),
            name=f"release:{container.container_id}",
        )
        return trace

    def _fail(
        self,
        trace,
        attempts,
        error,
        latency,
        outcome: RequestOutcome = RequestOutcome.FAILED,
    ) -> Generator:
        """Process: terminate the request with an error response.

        ``outcome`` distinguishes exhausted retries (FAILED) from a
        retry budget cut short by the deadline (DEADLINE); either way
        the terminal outcome and the error land on the trace so the
        collector's latency accessors can exclude it.
        """
        if outcome is RequestOutcome.DEADLINE:
            self.engine.stats.requests_deadline += 1
        else:
            self.engine.stats.requests_failed += 1
        if self.obs is not None:
            if outcome is RequestOutcome.DEADLINE:
                self.obs.counter(
                    "deadline_misses_total",
                    help="Requests terminated against their deadline",
                    function=trace.function,
                    where="retry",
                ).inc()
            else:
                self.obs.counter(
                    "requests_failed_total",
                    help="Requests that exhausted retries",
                    host=self.engine.name,
                    function=trace.function,
                ).inc()
        trace.t3_function_start = trace.t4_function_stop = self.sim.now
        trace.retries = attempts
        trace.outcome = outcome
        trace.error = f"{type(error).__name__}: {error}"
        # The error response still travels the watchdog->client path.
        yield self.sim.timeout(latency.faas_stage("watchdog_pipe"))
        trace.t5_watchdog_out = self.sim.now
        return trace
