"""Per-request timestamps: the six moments of Section III.

The paper instruments OpenFaaS at six points along the request path::

    (1) request packet arrives at the gateway
    (2) request packet reaches the watchdog
    (3) the function process starts (business logic begins)
    (4) the function process stops
    (5) the response packet leaves the watchdog
    (6) the client receives the response

We additionally record ``t0`` (client send) so end-to-end latency is
observable, plus the cold-start decomposition coming out of the engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["RequestOutcome", "RequestTrace", "TraceCollector"]


class RequestOutcome(enum.Enum):
    """Terminal disposition of a request.

    Every trace leaves the platform with one of the terminal outcomes;
    ``PENDING`` survives only while the request is in flight.
    """

    PENDING = "pending"
    SUCCESS = "success"
    #: Succeeded, but only after at least one request-level retry.
    RETRIED = "retried"
    #: All attempts (original + retries) failed; an error response was
    #: returned to the client.
    FAILED = "failed"
    #: Rejected by admission control (queue full, brownout, shutdown)
    #: before reaching a watchdog — the 429-style answer of an
    #: overloaded platform.  ``shed_reason`` says why.
    SHED = "shed"
    #: Timed out against its deadline (while queued for admission, or
    #: out of retry budget mid-request) — the request can no longer
    #: succeed in time, so it was terminated instead of served late.
    DEADLINE = "deadline"


#: Outcomes that never produced a real function response; excluded from
#: latency statistics by default (their truncated error-path timings
#: would skew every mean the figures average).
_UNANSWERED = frozenset(
    (RequestOutcome.FAILED, RequestOutcome.SHED, RequestOutcome.DEADLINE)
)


@dataclass
class RequestTrace:
    """Timestamps and metadata of one request."""

    request_id: int
    function: str
    t0_client_send: float
    t1_gateway_in: float = float("nan")
    t2_watchdog_in: float = float("nan")
    t3_function_start: float = float("nan")
    t4_function_stop: float = float("nan")
    t5_watchdog_out: float = float("nan")
    t6_client_recv: float = float("nan")
    cold_start: bool = False
    container_id: str = ""
    #: Engine-level decomposition (ms) of the function-side work.
    runtime_init_ms: float = 0.0
    app_init_ms: float = 0.0
    exec_ms: float = 0.0
    #: Re-spec/config-delta time (ms) paid when the container was a
    #: relaxed-key match or a repurposed donor; 0 for exact hits and
    #: cold boots.  Part of the init-phase decomposition.
    respec_ms: float = 0.0
    #: How the container was obtained: "" (cold boot), "hit",
    #: "relaxed", or "repurpose".
    reuse: str = ""
    #: Reuse depth of the serving container: how many requests it had
    #: already executed before this one (0 = first exec, i.e. a cold
    #: boot or a fresh prewarm).
    reuse_count: int = 0
    #: Terminal disposition (stamped by the watchdog / admission layer).
    outcome: RequestOutcome = RequestOutcome.PENDING
    #: Request-level retries this request consumed.
    retries: int = 0
    #: The final error, for failed requests ("ExcType: message").
    error: str = ""
    #: Absolute deadline (sim ms); ``inf`` means no deadline applies.
    deadline: float = float("inf")
    #: QoS class copied from the function spec at admission time.
    qos: str = ""
    #: Why the request was shed (``""`` unless outcome is SHED).
    shed_reason: str = ""
    #: Time spent waiting in the admission queue (ms).
    queue_ms: float = 0.0

    # -- derived segments (all ms) ----------------------------------------
    @property
    def total_latency(self) -> float:
        """End-to-end client latency (t6 - t0)."""
        return self.t6_client_recv - self.t0_client_send

    @property
    def gateway_forward_ms(self) -> float:
        """(1) -> (2): gateway proxying."""
        return self.t2_watchdog_in - self.t1_gateway_in

    @property
    def function_init_ms(self) -> float:
        """(2) -> (3): the segment the paper finds dominant when cold."""
        return self.t3_function_start - self.t2_watchdog_in

    @property
    def function_exec_ms(self) -> float:
        """(3) -> (4): business logic execution."""
        return self.t4_function_stop - self.t3_function_start

    @property
    def response_ms(self) -> float:
        """(4) -> (6): response propagation back to the client."""
        return self.t6_client_recv - self.t4_function_stop

    def segments(self) -> Dict[str, float]:
        """Named breakdown used by the Fig 5 experiment."""
        return {
            "client_to_gateway": self.t1_gateway_in - self.t0_client_send,
            "gateway_forward": self.gateway_forward_ms,
            "function_init": self.function_init_ms,
            "function_exec": self.function_exec_ms,
            "watchdog_out": self.t5_watchdog_out - self.t4_function_stop,
            "gateway_return": self.t6_client_recv - self.t5_watchdog_out,
        }

    @property
    def complete(self) -> bool:
        """Whether all six moments were recorded."""
        return not any(
            np.isnan(t)
            for t in (
                self.t1_gateway_in,
                self.t2_watchdog_in,
                self.t3_function_start,
                self.t4_function_stop,
                self.t5_watchdog_out,
                self.t6_client_recv,
            )
        )


class TraceCollector:
    """Accumulates request traces and derives figure-ready series."""

    def __init__(self) -> None:
        self._traces: List[RequestTrace] = []

    def add(self, trace: RequestTrace) -> None:
        """Record a finished trace."""
        self._traces.append(trace)

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self):
        return iter(self._traces)

    @property
    def traces(self) -> Tuple[RequestTrace, ...]:
        """All traces in completion order."""
        return tuple(self._traces)

    def _included(self, include_failed: bool) -> List[RequestTrace]:
        """Traces that belong in latency statistics.

        Failed, shed and deadline-missed requests carry error-path
        timings (often NaN ``t6`` or a truncated pipeline), so by
        default only traces that returned a real response to the client
        — SUCCESS and RETRIED — enter the latency series the figures
        average.  ``include_failed=True`` restores all of them; the
        unanswered *counts* are always reported separately
        (:meth:`failed_count`, :meth:`shed_count`,
        :meth:`deadline_count`, :meth:`outcome_counts`).
        """
        if include_failed:
            return self._traces
        return [t for t in self._traces if t.outcome not in _UNANSWERED]

    def latencies(self, include_failed: bool = False) -> np.ndarray:
        """End-to-end latencies (ms) of answered requests, in completion
        order.  Pass ``include_failed=True`` to keep FAILED traces in the
        series (their error-path latencies then skew any mean)."""
        return np.array(
            [t.total_latency for t in self._included(include_failed)],
            dtype=float,
        )

    def cold_flags(self) -> np.ndarray:
        """Boolean array: which requests were cold."""
        return np.array([t.cold_start for t in self._traces], dtype=bool)

    def cold_count(self) -> int:
        """Number of cold-started requests."""
        return int(self.cold_flags().sum())

    def mean_latency(self, include_failed: bool = False) -> float:
        """Mean end-to-end latency (ms) of answered requests; NaN when
        empty.  ``include_failed=True`` restores the raw all-traces mean."""
        latencies = self.latencies(include_failed=include_failed)
        return float(latencies.mean()) if latencies.size else float("nan")

    def mean_segments(self, include_failed: bool = False) -> Dict[str, float]:
        """Average of each pipeline segment across complete traces of
        answered requests (``include_failed=True`` keeps FAILED ones)."""
        complete = [
            t for t in self._included(include_failed) if t.complete
        ]
        if not complete:
            return {}
        keys = complete[0].segments().keys()
        return {
            key: float(np.mean([t.segments()[key] for t in complete]))
            for key in keys
        }

    def outcome_counts(self) -> Dict[str, int]:
        """Traces per terminal outcome value (``{"success": 42, ...}``)."""
        counts: Dict[str, int] = {}
        for trace in self._traces:
            counts[trace.outcome.value] = counts.get(trace.outcome.value, 0) + 1
        return counts

    def failed_count(self) -> int:
        """Requests that exhausted their retries."""
        return sum(
            1 for t in self._traces if t.outcome is RequestOutcome.FAILED
        )

    def shed_count(self) -> int:
        """Requests rejected by admission control."""
        return sum(
            1 for t in self._traces if t.outcome is RequestOutcome.SHED
        )

    def deadline_count(self) -> int:
        """Requests terminated against their deadline."""
        return sum(
            1 for t in self._traces if t.outcome is RequestOutcome.DEADLINE
        )

    def shed_reasons(self) -> Dict[str, int]:
        """Shed traces per reason (``{"queue_full": 3, ...}``)."""
        counts: Dict[str, int] = {}
        for trace in self._traces:
            if trace.outcome is RequestOutcome.SHED:
                counts[trace.shed_reason] = counts.get(trace.shed_reason, 0) + 1
        return counts

    def retry_total(self) -> int:
        """Request-level retries consumed across all traces."""
        return sum(t.retries for t in self._traces)

    def all_terminal(self) -> bool:
        """Whether every collected trace reached a terminal outcome."""
        return all(
            t.outcome is not RequestOutcome.PENDING for t in self._traces
        )

    def filter(self, function: Optional[str] = None) -> "TraceCollector":
        """A new collector restricted to one function."""
        child = TraceCollector()
        for trace in self._traces:
            if function is None or trace.function == function:
                child.add(trace)
        return child
