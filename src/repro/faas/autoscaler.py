"""A reactive replica autoscaler (Tencent-style baseline, Section III-B).

"They designed a real-time autoscale system that can expand or contract
in second-level based on the system metrics and monitoring data."

The autoscaler is deliberately decoupled: it drives any *scalable pool*
object exposing ``warm_count(key)`` and ``scale_to(key, n)`` (the HotC
pool and the baseline warm pools both qualify).  Each tick it estimates
per-key concurrency demand with an EWMA of observed arrivals and scales
the pool to that estimate — reactive, with no forecasting, which is
exactly what the paper's predictor improves upon.
"""

from __future__ import annotations

from typing import Dict, Generator, Protocol

__all__ = ["ReactiveAutoscaler", "ScalablePool"]


class ScalablePool(Protocol):
    """Anything whose per-key warm capacity can be adjusted."""

    def warm_count(self, key) -> int:
        """Currently warm (idle, reusable) containers for ``key``."""
        ...

    def scale_to(self, key, target: int) -> Generator:
        """Process: boot or stop containers until ``key`` has ``target``."""
        ...


class ReactiveAutoscaler:
    """EWMA-of-arrivals reactive scaler.

    Parameters
    ----------
    sim:
        Simulation kernel (for time and ticking).
    pool:
        The scalable pool to drive.
    tick_ms:
        Control period.
    alpha:
        EWMA smoothing factor on the per-tick arrival count.
    headroom:
        Multiplier applied to the demand estimate (>= 1 keeps spares).
    max_per_key:
        Hard cap per runtime key.
    """

    def __init__(
        self,
        sim,
        pool: ScalablePool,
        tick_ms: float = 1_000.0,
        alpha: float = 0.5,
        headroom: float = 1.2,
        max_per_key: int = 100,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if tick_ms <= 0:
            raise ValueError("tick_ms must be positive")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        if max_per_key < 0:
            raise ValueError("max_per_key must be >= 0")
        self.sim = sim
        self.pool = pool
        self.tick_ms = tick_ms
        self.alpha = alpha
        self.headroom = headroom
        self.max_per_key = max_per_key
        self._arrivals_this_tick: Dict[object, int] = {}
        self._demand_ewma: Dict[object, float] = {}
        self._running = False

    # -- observation --------------------------------------------------------
    def observe_arrival(self, key) -> None:
        """Call once per incoming request for ``key``."""
        self._arrivals_this_tick[key] = self._arrivals_this_tick.get(key, 0) + 1

    def demand_estimate(self, key) -> float:
        """Current smoothed demand for ``key`` (containers)."""
        return self._demand_ewma.get(key, 0.0)

    def target_for(self, key) -> int:
        """Replica target derived from the smoothed demand."""
        import math

        estimate = self._demand_ewma.get(key, 0.0) * self.headroom
        return min(self.max_per_key, int(math.ceil(estimate - 1e-9)))

    # -- control loop --------------------------------------------------------
    def start(self) -> None:
        """Begin ticking; idempotent."""
        if self._running:
            return
        self._running = True
        self.sim.process(self._loop(), name="autoscaler")

    def stop(self) -> None:
        """Stop after the current tick."""
        self._running = False

    def _loop(self) -> Generator:
        while self._running:
            yield self.sim.timeout(self.tick_ms)
            if not self._running:
                break
            arrivals, self._arrivals_this_tick = self._arrivals_this_tick, {}
            keys = set(arrivals) | set(self._demand_ewma)
            for key in keys:
                observed = float(arrivals.get(key, 0))
                previous = self._demand_ewma.get(key, observed)
                self._demand_ewma[key] = (
                    self.alpha * observed + (1 - self.alpha) * previous
                )
                yield from self.pool.scale_to(key, self.target_for(key))
