"""The platform: runtime-provider protocol + deployment + invocation.

:class:`RuntimeProvider` is the seam between the serverless substrate
and the paper's contribution.  The platform asks a provider for a
container able to run a given :class:`~repro.containers.ContainerConfig`;
the provider decides whether that is a cold boot (default serverless
behaviour), a pool hit (HotC), or a keep-alive hit (AWS-style baseline).
"""

from __future__ import annotations

import abc
import itertools
from typing import Dict, Generator, Optional, Tuple


from repro.containers.container import Container, ContainerConfig
from repro.containers.engine import ContainerEngine
from repro.containers.registry import Registry
from repro.faas.function import FunctionSpec
from repro.faas.gateway import Gateway
from repro.faas.tracing import RequestTrace, TraceCollector
from repro.hardware.profiles import HostProfile, T430_SERVER
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

__all__ = ["ColdBootProvider", "FaasPlatform", "RuntimeProvider"]


class RuntimeProvider(abc.ABC):
    """Strategy for acquiring/releasing container runtimes.

    Both methods are simulation processes (generators).  ``acquire``
    returns ``(container, cold_boot)`` where ``cold_boot`` says a new
    container had to be created for this request.  ``release`` is
    spawned asynchronously after the response leaves the watchdog, so
    cleanup never sits on the client's critical path.
    """

    @abc.abstractmethod
    def acquire(self, config: ContainerConfig) -> Generator:
        """Process: yield a RUNNING container for ``config``."""

    @abc.abstractmethod
    def release(self, container: Container) -> Generator:
        """Process: give the container back (clean, keep, or destroy)."""

    def discard(self, container: Container) -> None:
        """Drop a container that died mid-request (crash or host outage).

        Unlike :meth:`release` this is a plain call: the container is
        already gone, so there is no cleanup latency to model — only
        bookkeeping (demand accounting, pool metadata) to roll back.
        The default is a no-op for providers without such bookkeeping.
        """

    def on_tick(self, now: float) -> None:
        """Optional periodic hook (pool maintenance, prediction)."""

    def shutdown(self) -> Generator:
        """Process: stop everything the provider still holds."""
        return
        yield  # pragma: no cover - makes this a generator


class ColdBootProvider(RuntimeProvider):
    """Default serverless behaviour: boot per request, destroy after.

    This is the "without HotC" arm of every evaluation figure.
    """

    def __init__(self, engine: ContainerEngine) -> None:
        self.engine = engine

    def acquire(self, config: ContainerConfig) -> Generator:
        container = yield from self.engine.boot_container(config)
        return container, True

    def release(self, container: Container) -> Generator:
        yield from self.engine.stop_container(container)
        yield from self.engine.remove_container(container)

    def shutdown(self) -> Generator:
        for container in self.engine.live_containers():
            if container.is_reusable:
                yield from self.engine.stop_container(container)
                yield from self.engine.remove_container(container)


class FaasPlatform:
    """An OpenFaaS-like deployment on one simulated host.

    Wires together the simulator, container engine, gateway and a
    runtime provider; owns the function catalog and the trace collector.

    Parameters
    ----------
    seed:
        Root seed for all jitter streams.
    profile:
        Host hardware profile.
    provider_factory:
        Called with the platform's engine to build the runtime
        provider; defaults to :class:`ColdBootProvider`.
    jitter_sigma:
        Latency noise level; 0 gives a fully deterministic platform.
    """

    def __init__(
        self,
        registry: Registry,
        seed: int = 0,
        profile: HostProfile = T430_SERVER,
        provider_factory=None,
        jitter_sigma: float = 0.06,
        gateway_concurrency: int = 1024,
        gateway_instances: int = 1,
        request_retries: int = 1,
    ) -> None:
        if gateway_instances < 1:
            raise ValueError("gateway_instances must be >= 1")
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.registry = registry
        self.profile = profile
        self.engine = ContainerEngine(
            self.sim,
            registry,
            profile=profile,
            rng=self.rngs.stream("engine-jitter"),
            jitter_sigma=jitter_sigma,
        )
        if provider_factory is None:
            provider_factory = ColdBootProvider
        self.provider: RuntimeProvider = provider_factory(self.engine)
        # Section III: the gateway "can be scaled to multiple instances";
        # clients are assigned round-robin across them.
        self.gateways = [
            Gateway(
                self.sim,
                self.engine,
                self.provider,
                concurrency=gateway_concurrency,
                request_retries=request_retries,
            )
            for _ in range(gateway_instances)
        ]
        self._gateway_rr = itertools.count()
        self.traces = TraceCollector()
        self._functions: Dict[str, FunctionSpec] = {}
        self._request_ids = itertools.count()
        #: Optional admission controller; ``None`` keeps the platform
        #: bit-identical to one built before overload protection existed.
        self.admission = None

    @property
    def gateway(self) -> Gateway:
        """The first gateway instance (compatibility accessor)."""
        return self.gateways[0]

    # -- observability -----------------------------------------------------
    def attach_observatory(self, observatory) -> None:
        """Wire one observatory through the whole platform.

        Attaches to the engine, every gateway (and its watchdog) and —
        when the provider supports it (HotC, ClusterHotC) — the provider
        and everything underneath.  Pass ``None`` to detach everywhere.
        """
        self.engine.attach_observatory(observatory)
        for gateway in self.gateways:
            gateway.attach_observatory(observatory)
        attach = getattr(self.provider, "attach_observatory", None)
        if attach is not None:
            attach(observatory)
        if self.admission is not None:
            self.admission.obs = observatory

    def attach_admission(self, controller) -> None:
        """Wire overload protection through the whole platform.

        Binds the simulator, puts the controller in front of every
        gateway's proxy pipeline, and — when the provider supports it
        (HotC, ClusterHotC) — hands it to the provider so the control
        loop drives the AIMD tick and brownout transitions.
        """
        controller.bind(self.sim)
        self.admission = controller
        for gateway in self.gateways:
            gateway.admission = controller
        attach = getattr(self.provider, "attach_admission", None)
        if attach is not None:
            attach(controller)
        if self.gateway.obs is not None:
            controller.obs = self.gateway.obs

    # -- deployment -------------------------------------------------------
    def deploy(self, spec: FunctionSpec) -> None:
        """Register a function; its image must exist in the registry."""
        if spec.name in self._functions:
            raise ValueError(f"function {spec.name!r} already deployed")
        self.registry.resolve(spec.image)  # fail fast on unknown images
        image = self.registry.resolve(spec.image)
        if image.language is not None and image.language != spec.language:
            raise ValueError(
                f"function {spec.name!r} wants {spec.language!r} but image "
                f"{image.reference} provides {image.language!r}"
            )
        self._functions[spec.name] = spec

    def function(self, name: str) -> FunctionSpec:
        """Look up a deployed function."""
        try:
            return self._functions[name]
        except KeyError:
            known = ", ".join(sorted(self._functions)) or "<none>"
            raise KeyError(
                f"function {name!r} not deployed; deployed: {known}"
            ) from None

    @property
    def functions(self) -> Tuple[str, ...]:
        """Names of deployed functions."""
        return tuple(sorted(self._functions))

    # -- invocation --------------------------------------------------------
    def invoke(self, name: str) -> Generator:
        """Process: one client request; returns its RequestTrace.

        With multiple gateway instances, requests are spread round-robin
        (the load-balancer in front of a scaled OpenFaaS gateway).
        """
        spec = self.function(name)
        trace = RequestTrace(
            request_id=next(self._request_ids),
            function=name,
            t0_client_send=self.sim.now,
        )
        gateway = self.gateways[next(self._gateway_rr) % len(self.gateways)]
        trace = yield from gateway.handle(spec, trace)
        self.traces.add(trace)
        return trace

    def submit(self, name: str, delay: float = 0.0):
        """Schedule an invocation ``delay`` ms from now; returns the process.

        Convenience wrapper used by workload generators.
        """
        def _delayed() -> Generator:
            if delay > 0:
                yield self.sim.timeout(delay)
            trace = yield from self.invoke(name)
            return trace

        return self.sim.process(_delayed(), name=f"request:{name}")

    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation (delegates to the kernel)."""
        return self.sim.run(until=until)

    def shutdown(self) -> None:
        """Stop all provider-held containers and drain the simulation."""
        self.sim.process(self.provider.shutdown())
        self.sim.run()
