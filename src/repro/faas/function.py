"""Function specifications: the deployable unit of the platform.

A :class:`FunctionSpec` bundles what the user would put in an OpenFaaS
stack file: the image, handler cost profile, and the container runtime
parameters that HotC's parameter analysis extracts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Tuple

from repro.containers.container import ContainerConfig, ExecSpec
from repro.containers.network import NetworkConfig

__all__ = ["FunctionSpec"]


@dataclass(frozen=True)
class FunctionSpec:
    """A deployed serverless function.

    Parameters
    ----------
    name:
        Unique function name (routing key at the gateway).
    image:
        Container image reference providing the runtime.
    language:
        Language runtime key; must match the image's language when the
        image declares one.
    exec_ms:
        Warm business-logic time on the reference host.
    app_init_ms:
        One-time business-logic initialisation (e.g. model load).
    write_mb:
        Output written to the container volume per invocation.
    network / uts_mode / ipc_mode / env / exec_options:
        Container runtime parameters — together with the image these
        form the HotC runtime key.
    cpu_millicores / mem_mb:
        Resource limits per executing request.
    payload:
        Optional real computation run at exec time.
    qos:
        Quality-of-service class: ``"standard"`` requests are shed first
        under brownout; ``"critical"`` requests are admitted as long as
        any capacity remains.
    deadline_ms:
        Relative per-request deadline applied at admission (``None``
        falls back to the admission controller's default).  Requests
        that cannot finish by ``t0 + deadline_ms`` are terminated with
        :class:`~repro.faas.tracing.RequestOutcome.DEADLINE`.
    """

    QOS_CLASSES = ("critical", "standard")

    name: str
    image: str
    language: str = "python"
    exec_ms: float = 100.0
    app_init_ms: float = 0.0
    write_mb: float = 0.0
    network: NetworkConfig = field(default_factory=NetworkConfig)
    uts_mode: str = "private"
    ipc_mode: str = "private"
    env: Tuple[Tuple[str, str], ...] = ()
    exec_options: Tuple[str, ...] = ()
    cpu_millicores: float = 250.0
    mem_mb: float = 128.0
    payload: Optional[Callable[[], Any]] = None
    qos: str = "standard"
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("function name must be non-empty")
        if self.exec_ms < 0 or self.app_init_ms < 0:
            raise ValueError("cost fields must be >= 0")
        if self.qos not in self.QOS_CLASSES:
            raise ValueError(
                f"qos must be one of {self.QOS_CLASSES}, got {self.qos!r}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0 (or None)")

    def container_config(self) -> ContainerConfig:
        """The container runtime environment this function needs."""
        return ContainerConfig(
            image=self.image,
            network=self.network,
            uts_mode=self.uts_mode,
            ipc_mode=self.ipc_mode,
            env=self.env,
            exec_options=self.exec_options,
            cpu_millicores=self.cpu_millicores,
            mem_mb=self.mem_mb,
        )

    def exec_spec(self) -> ExecSpec:
        """The work one invocation performs inside a container."""
        return ExecSpec(
            app_id=self.name,
            language=self.language,
            exec_ms=self.exec_ms,
            app_init_ms=self.app_init_ms,
            write_mb=self.write_mb,
            payload=self.payload,
        )

    def with_overrides(self, **changes) -> "FunctionSpec":
        """A copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **changes)
