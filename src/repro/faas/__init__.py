"""OpenFaaS-like serverless platform substrate.

Reproduces the request pipeline of Section III / Fig 5: clients send
requests to a :class:`~repro.faas.gateway.Gateway`, which proxies them
to a per-function :class:`~repro.faas.watchdog.Watchdog` that executes
the user handler inside a container.  Six moments are timestamped per
request (:mod:`repro.faas.tracing`) so the cold-start breakdown can be
reproduced exactly.

Container acquisition is pluggable through the
:class:`~repro.faas.platform.RuntimeProvider` protocol — the HotC
middleware and all baseline keep-alive policies implement it.
"""

from repro.faas.tracing import RequestOutcome, RequestTrace, TraceCollector
from repro.faas.function import FunctionSpec
from repro.faas.platform import (
    ColdBootProvider,
    FaasPlatform,
    RuntimeProvider,
)
from repro.faas.gateway import Gateway
from repro.faas.watchdog import Watchdog
from repro.faas.autoscaler import ReactiveAutoscaler

__all__ = [
    "ColdBootProvider",
    "FaasPlatform",
    "FunctionSpec",
    "Gateway",
    "ReactiveAutoscaler",
    "RequestOutcome",
    "RequestTrace",
    "RuntimeProvider",
    "TraceCollector",
    "Watchdog",
]
