"""Motivation-study analyses (Sections I-III of the paper).

- :mod:`repro.analysis.dockerfiles` — the GitHub Dockerfile survey
  behind Fig 2: corpus generation, parsing, base-image popularity and
  category shares.
- :mod:`repro.analysis.coldstart` — cold-start micro-analyses behind
  Figs 1, 4 and 5: language cold/hot ratios, network-mode startup
  costs, and the OpenFaaS six-moment breakdown.
"""

from repro.analysis.dockerfiles import (
    DockerfileCorpus,
    SurveyResult,
    generate_corpus,
    survey_corpus,
)
from repro.analysis.coldstart import (
    keep_alive_sensitivity,
    language_cold_hot_comparison,
    network_mode_startup,
    pipeline_breakdown,
)

__all__ = [
    "DockerfileCorpus",
    "SurveyResult",
    "generate_corpus",
    "keep_alive_sensitivity",
    "language_cold_hot_comparison",
    "network_mode_startup",
    "pipeline_breakdown",
    "survey_corpus",
]
