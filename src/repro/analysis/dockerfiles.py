"""The Dockerfile survey behind Fig 2.

The paper: "We analyzed thousands of Dockerfiles from GitHub projects.
... both the top 100 popular and all surveyed projects are dominated by
a few commonly used images, which mostly contain similar OSes, language
runtimes, etc., or their combination."

The GitHub corpus is not redistributable offline, so
:func:`generate_corpus` synthesises one: project popularity follows a
Zipf law, base images are drawn from a heavy-tailed distribution over
the well-known bases (plus a long tail of custom images), and each
Dockerfile is real text that goes through the real parser.
:func:`survey_corpus` then re-derives both Fig 2 panels from the parsed
corpus — the *analysis* is faithful even though the corpus is
synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.containers.dockerfile import (
    Dockerfile,
    categorize_base_image,
    parse_dockerfile,
)

__all__ = ["DockerfileCorpus", "SurveyResult", "generate_corpus", "survey_corpus"]


#: Popularity weights of well-known base images (heavy head), shaped
#: after the paper's observation that a handful of OS and language
#: images dominate.
_BASE_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("alpine:3.8", 0.19),
    ("ubuntu:16.04", 0.16),
    ("python:3.6", 0.12),
    ("node:10", 0.10),
    ("debian:stretch", 0.07),
    ("golang:1.11", 0.06),
    ("openjdk:8", 0.06),
    ("centos:7", 0.05),
    ("nginx:1.15", 0.04),
    ("busybox:1.29", 0.03),
    ("redis:5.0", 0.02),
    ("mysql:5.7", 0.02),
    ("postgres:11", 0.02),
)
#: Remaining probability mass goes to a long tail of custom images.
_TAIL_MASS = 1.0 - sum(weight for _, weight in _BASE_WEIGHTS)

_RUN_SNIPPETS = (
    "apt-get update && apt-get install -y curl",
    "pip install -r requirements.txt",
    "npm install --production",
    "go build -o /usr/local/bin/app ./cmd/app",
    "mkdir -p /var/app/data",
    "adduser -D appuser",
)

_CMD_SNIPPETS = (
    '["python", "app.py"]',
    '["node", "server.js"]',
    '["/usr/local/bin/app"]',
    '["sh", "-c", "exec $APP"]',
)


@dataclass(frozen=True)
class CorpusProject:
    """One synthetic GitHub project."""

    name: str
    stars: int
    dockerfile_text: str


@dataclass
class DockerfileCorpus:
    """A bag of projects with Dockerfiles."""

    projects: List[CorpusProject] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.projects)

    def top_by_stars(self, n: int) -> "DockerfileCorpus":
        """The ``n`` most-starred projects."""
        ranked = sorted(self.projects, key=lambda p: (-p.stars, p.name))
        return DockerfileCorpus(projects=ranked[:n])

    def parsed(self) -> List[Tuple[CorpusProject, Dockerfile]]:
        """Parse every project's Dockerfile."""
        return [(p, parse_dockerfile(p.dockerfile_text)) for p in self.projects]


def generate_corpus(
    n_projects: int = 2_000,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> DockerfileCorpus:
    """Synthesize a corpus of ``n_projects`` Dockerfile projects."""
    if n_projects < 1:
        raise ValueError("n_projects must be >= 1")
    rng = rng or np.random.default_rng(seed)

    references = [reference for reference, _ in _BASE_WEIGHTS]
    weights = np.array([weight for _, weight in _BASE_WEIGHTS])

    # Popular projects skew even harder toward the head images: the
    # paper's top-100 panel is more concentrated than the all-projects
    # panel.  Draw stars from a Zipf-like law and bias the head images
    # for high-star projects.
    stars = np.floor(1_000.0 / np.power(np.arange(1, n_projects + 1), 0.8)).astype(int)
    rng.shuffle(stars)

    projects: List[CorpusProject] = []
    for index in range(n_projects):
        popular = stars[index] > np.percentile(stars, 90)
        tail_mass = _TAIL_MASS * (0.4 if popular else 1.0)
        probabilities = np.concatenate([weights * (1 - tail_mass) / weights.sum(),
                                        [tail_mass]])
        choice = rng.choice(len(references) + 1, p=probabilities)
        if choice < len(references):
            base = references[choice]
        else:
            base = f"user{rng.integers(0, 400):03d}/custom:{rng.integers(1, 9)}"
        projects.append(
            CorpusProject(
                name=f"project-{index:05d}",
                stars=int(stars[index]),
                dockerfile_text=_render_dockerfile(base, rng),
            )
        )
    return DockerfileCorpus(projects=projects)


def _render_dockerfile(base: str, rng: np.random.Generator) -> str:
    lines = [f"FROM {base}"]
    if rng.random() < 0.6:
        lines.append(f"ENV APP_ENV {'production' if rng.random() < 0.7 else 'staging'}")
    lines.append("WORKDIR /app")
    lines.append("COPY . /app")
    for _ in range(int(rng.integers(1, 4))):
        lines.append(f"RUN {_RUN_SNIPPETS[rng.integers(0, len(_RUN_SNIPPETS))]}")
    if rng.random() < 0.5:
        lines.append(f"EXPOSE {int(rng.choice([80, 443, 3000, 5000, 8080]))}")
    lines.append(f"CMD {_CMD_SNIPPETS[rng.integers(0, len(_CMD_SNIPPETS))]}")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class SurveyResult:
    """Fig 2's two panels, recomputed from a corpus."""

    #: (base image, share of projects), descending — Fig 2a.
    image_shares: Tuple[Tuple[str, float], ...]
    #: category -> share, over os/language/application/other — Fig 2b.
    category_shares: Dict[str, float]
    n_projects: int

    def top_images(self, n: int) -> Tuple[Tuple[str, float], ...]:
        """The ``n`` most common base images."""
        return self.image_shares[:n]

    def head_concentration(self, n: int = 5) -> float:
        """Share of projects using the ``n`` most common bases — the
        paper's "dominated by a few commonly used images" measure."""
        return sum(share for _, share in self.image_shares[:n])


def survey_corpus(corpus: DockerfileCorpus) -> SurveyResult:
    """Parse a corpus and compute both Fig 2 panels."""
    if len(corpus) == 0:
        raise ValueError("corpus is empty")
    image_counts: Dict[str, int] = {}
    category_counts: Dict[str, int] = {
        "os": 0, "language": 0, "application": 0, "other": 0,
    }
    for _, dockerfile in corpus.parsed():
        base = dockerfile.base_image
        image_counts[base] = image_counts.get(base, 0) + 1
        category_counts[categorize_base_image(base)] += 1

    total = len(corpus)
    shares = sorted(
        ((image, count / total) for image, count in image_counts.items()),
        key=lambda kv: (-kv[1], kv[0]),
    )
    categories = {name: count / total for name, count in category_counts.items()}
    return SurveyResult(
        image_shares=tuple(shares),
        category_shares=categories,
        n_projects=total,
    )
