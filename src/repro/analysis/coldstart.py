"""Cold-start micro-analyses (Figs 4-5, Section II-C / III).

These run small controlled experiments on the substrate and return
figure-ready structures:

* :func:`language_cold_hot_comparison` — the S3-download benchmark per
  language, cold vs hot (Fig 4a/b).
* :func:`network_mode_startup` — container boot time under each
  network configuration (Fig 4c).
* :func:`pipeline_breakdown` — the OpenFaaS six-moment segmentation of
  a request, cold and warm (Fig 5 / Section III's "function initiation
  dominates" finding).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.containers.engine import ContainerEngine
from repro.core.hotc import HotC
from repro.faas.platform import FaasPlatform
from repro.hardware.profiles import HostProfile, T430_SERVER
from repro.sim.engine import Simulator
from repro.workloads.apps import default_catalog, random_number_app, s3_download_app

__all__ = [
    "language_cold_hot_comparison",
    "network_mode_startup",
    "pipeline_breakdown",
]


def _run(sim: Simulator, generator):
    process = sim.process(generator)
    sim.run()
    if not process.ok:
        raise process.value
    return process.value


def language_cold_hot_comparison(
    languages: Sequence[str] = ("go", "python", "node", "java"),
    profile: HostProfile = T430_SERVER,
    runs: int = 5,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Cold vs hot execution of the S3-download app per language.

    Returns ``{language: {"cold_ms", "hot_ms", "ratio"}}``.  Cold = boot
    a fresh container and execute once (image pre-pulled, as in the
    paper's local-image setup); hot = re-execute in the same container.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    catalog = default_catalog()
    results: Dict[str, Dict[str, float]] = {}
    for language in languages:
        spec = s3_download_app(language)
        colds, hots = [], []
        for run_index in range(runs):
            sim = Simulator()
            registry = catalog.make_registry()
            engine = ContainerEngine(
                sim,
                registry,
                profile=profile,
                rng=np.random.default_rng(seed + run_index),
                jitter_sigma=0.04,
            )
            _run(sim, engine.ensure_image(spec.image))  # images stored locally
            start = sim.now
            container = _run(sim, engine.boot_container(spec.container_config()))
            _run(sim, engine.execute(container, spec.exec_spec()))
            colds.append(sim.now - start)
            start = sim.now
            _run(sim, engine.execute(container, spec.exec_spec()))
            hots.append(sim.now - start)
        cold_ms = float(np.mean(colds))
        hot_ms = float(np.mean(hots))
        results[language] = {
            "cold_ms": cold_ms,
            "hot_ms": hot_ms,
            "ratio": cold_ms / hot_ms,
        }
    return results


def network_mode_startup(
    modes: Sequence[str] = (
        "none", "bridge", "host", "container",
        "multihost-host", "overlay", "routing",
    ),
    profile: HostProfile = T430_SERVER,
    runs: int = 5,
    seed: int = 0,
) -> Dict[str, float]:
    """Mean *network building* time (ms) per mode during boot (Fig 4c).

    The paper's Fig 4c plots "the building time of various customized
    networks during the boot of container runtime": bridge/host are
    close to no networking, container mode is about half (it attaches
    to a proxy container's namespace), and overlay/routing pay
    registration + initialisation — up to 23x the multi-host host mode.

    Measured by timing the network-setup stage of real boots: the boot
    is run once with each mode and once with the stage isolated via the
    engine's latency model (same jitter stream as a real boot would
    draw).
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    import zlib

    from repro.hardware.calibration import LatencyModel

    results: Dict[str, float] = {}
    for mode in modes:
        model = LatencyModel(
            profile=profile,
            rng=np.random.default_rng(seed + zlib.crc32(mode.encode()) % 1000),
            jitter_sigma=0.04,
        )
        samples = [model.network_setup(mode) for _ in range(runs)]
        results[mode] = float(np.mean(samples))
    return results


def keep_alive_sensitivity(
    windows_ms: Sequence[float] = (
        10_000.0, 60_000.0, 5 * 60_000.0, 15 * 60_000.0, 60 * 60_000.0,
    ),
    inter_arrival_ms: float = 4 * 60_000.0,
    n_requests: int = 20,
    seed: int = 0,
) -> Dict[float, Dict[str, float]]:
    """Cold starts and held capacity vs keep-alive window (Sec III-B).

    AWS keeps containers ~15 minutes regardless of traffic; Azure's
    research [27] adapts the window.  This sweep quantifies the
    trade-off on a steady stream: short windows re-pay cold starts,
    long windows hold containers idle.  Returns per-window
    ``{"cold": ..., "held_container_minutes": ...}``.
    """
    from repro.core.policies import FixedKeepAliveProvider
    from repro.workloads.apps import qr_encoder_app

    if n_requests < 2:
        raise ValueError("n_requests must be >= 2")
    if inter_arrival_ms <= 0:
        raise ValueError("inter_arrival_ms must be positive")
    results: Dict[float, Dict[str, float]] = {}
    for window_ms in windows_ms:
        if window_ms <= 0:
            raise ValueError("keep-alive windows must be positive")
        catalog = default_catalog()
        platform = FaasPlatform(
            catalog.make_registry(),
            seed=seed,
            provider_factory=lambda engine, w=window_ms: FixedKeepAliveProvider(
                engine, keep_alive_ms=w
            ),
            jitter_sigma=0.0,
        )
        spec = qr_encoder_app(name="svc", language="python")
        platform.deploy(spec)
        platform.sim.process(platform.engine.ensure_image(spec.image))
        platform.run()
        for index in range(n_requests):
            platform.submit("svc", delay=index * inter_arrival_ms)
        platform.run()
        cold = platform.traces.cold_count()
        # Idle capacity held: each keep-alive episode holds a container
        # for min(window, gap-to-next-request) after release.
        gap = inter_arrival_ms
        held_per_episode_ms = min(window_ms, gap)
        held_minutes = cold and (
            n_requests * held_per_episode_ms / 60_000.0
        )
        results[window_ms] = {
            "cold": float(cold),
            "held_container_minutes": float(held_minutes),
        }
    return results


def pipeline_breakdown(
    profile: HostProfile = T430_SERVER,
    warm_requests: int = 5,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Six-moment segment breakdown of cold and warm requests (Fig 5).

    Deploys the random-number function behind the simulated OpenFaaS
    pipeline with HotC available for the warm arm, and returns
    ``{"cold": segments, "warm": segments}`` mean segment durations.
    """
    if warm_requests < 1:
        raise ValueError("warm_requests must be >= 1")
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=seed,
        profile=profile,
        provider_factory=HotC,
        jitter_sigma=0.04,
    )
    spec = random_number_app()
    platform.deploy(spec)
    # Image stored locally, as in the paper's testbed.
    platform.sim.process(platform.engine.ensure_image(spec.image))
    platform.run()

    platform.submit(spec.name)
    platform.run()
    for index in range(warm_requests):
        platform.submit(spec.name, delay=200.0 * index)
    platform.run()

    traces = platform.traces.traces
    cold = traces[0].segments()
    warm_traces = traces[1:]
    warm = {
        key: float(np.mean([t.segments()[key] for t in warm_traces]))
        for key in cold
    }
    return {"cold": dict(cold), "warm": warm}
