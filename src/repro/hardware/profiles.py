"""Host hardware profiles matching the paper's testbeds (Section V-A).

Each profile carries raw capacities plus two scale factors:

``compute_scale``
    Multiplier on application execution time relative to the T430
    server.  The paper reports that the image-recognition apps run
    "more than 10 times" slower on the Raspberry Pi (Section V-B).

``container_op_scale``
    Multiplier on container management operations (create, network
    setup, image handling).  Edge devices are slower here too, but less
    dramatically than raw compute, because the operations are mostly
    I/O and syscall bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.sim.resources import HostResources

__all__ = [
    "HostProfile",
    "T430_SERVER",
    "RASPBERRY_PI3",
    "JETSON_TX2",
    "get_profile",
    "list_profiles",
]


@dataclass(frozen=True)
class HostProfile:
    """Static description of a host machine."""

    name: str
    description: str
    cores: int
    clock_ghz: float
    mem_mb: float
    swap_mb: float
    network_gbps: float
    compute_scale: float
    container_op_scale: float

    @property
    def cpu_millicores(self) -> float:
        """Total CPU capacity: 1000 millicores per core."""
        return self.cores * 1000.0

    def make_resources(self) -> HostResources:
        """Fresh :class:`HostResources` ledger for this profile."""
        return HostResources(
            cpu_millicores=self.cpu_millicores,
            mem_mb=self.mem_mb,
            swap_mb=self.swap_mb,
        )


#: Dell PowerEdge T430 — dual 10-core Xeon E5-2640 2.6 GHz, 64 GB RAM,
#: gigabit network (Section V-A).  Reference machine: scale factors 1.0.
T430_SERVER = HostProfile(
    name="t430-server",
    description="Dell PowerEdge T430, dual 10-core Xeon E5-2640 2.6GHz, 64GB",
    cores=20,
    clock_ghz=2.6,
    mem_mb=64 * 1024,
    swap_mb=8 * 1024,
    network_gbps=1.0,
    compute_scale=1.0,
    container_op_scale=1.0,
)

#: Raspberry Pi 3 — quad-core 1.2 GHz BCM2837, 1 GB RAM, 32 GB SD card.
#: App execution "prolongs more than 10 times" vs the server (Sec V-B).
RASPBERRY_PI3 = HostProfile(
    name="raspberry-pi3",
    description="Raspberry Pi 3, quad-core 1.2GHz BCM2837, 1GB RAM",
    cores=4,
    clock_ghz=1.2,
    mem_mb=1024,
    swap_mb=1024,
    network_gbps=0.1,
    compute_scale=12.0,
    container_op_scale=4.0,
)

#: Nvidia Jetson TX2 — used for the edge spot checks in Section III.
JETSON_TX2 = HostProfile(
    name="jetson-tx2",
    description="Nvidia Jetson TX2, 6-core ARM, 8GB RAM",
    cores=6,
    clock_ghz=2.0,
    mem_mb=8 * 1024,
    swap_mb=2 * 1024,
    network_gbps=1.0,
    compute_scale=3.0,
    container_op_scale=2.0,
)

_PROFILES: Dict[str, HostProfile] = {
    profile.name: profile
    for profile in (T430_SERVER, RASPBERRY_PI3, JETSON_TX2)
}


def get_profile(name: str) -> HostProfile:
    """Look up a profile by name; raises ``KeyError`` with suggestions."""
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise KeyError(f"unknown host profile {name!r}; known: {known}") from None


def list_profiles() -> Tuple[str, ...]:
    """Names of all registered profiles."""
    return tuple(sorted(_PROFILES))
