"""Latency calibration tables.

Every latency constant in the simulator is defined here, with the paper
measurement it is calibrated against.  Nothing else in the codebase
hard-codes a latency.

Calibration sources
-------------------
* **Language cold/hot execution** (Section II-C, Fig 4a/b): a program
  that downloads a 3.3 MB PDF from S3 and processes it.  The paper
  reports the Go cold execution is 3.06x its hot execution and that
  cold start "even doubles the already long execution in Java"
  (hot Java ~1.07 s dominated by JVM startup + JIT).
* **Network setup** (Section II-C, Fig 4c): on a single host, ``bridge``
  and ``host`` cost about the same as no networking, ``container`` mode
  about half; across hosts, ``overlay``/``routing`` cost up to 23x the
  ``host`` mode because of registration and initialisation.
* **OpenFaaS moment breakdown** (Section III, Fig 5): function
  initiation (moment 2 -> 3) dominates total request latency; gateway and
  watchdog forwarding are small.
* **Pool overhead** (Section V-E, Fig 15a): an idle live container costs
  ~0.7 MB of memory and <0.1% CPU.

All values are milliseconds on the reference T430 server; host profiles
scale them via ``container_op_scale`` / ``compute_scale``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.hardware.profiles import HostProfile, T430_SERVER

__all__ = [
    "ContainerOpCosts",
    "LanguageRuntime",
    "LatencyModel",
    "LANGUAGE_RUNTIMES",
    "NETWORK_SETUP_MS",
    "network_setup_ms",
]


@dataclass(frozen=True)
class LanguageRuntime:
    """Cold/warm cost structure of one language runtime.

    ``runtime_init_ms`` is the interpreter/VM boot cost paid on cold
    start only.  ``code_load_ms`` is the function code load/compile cost,
    also cold-only.  ``warm_overhead_ms`` is the per-invocation runtime
    overhead that remains even when warm (GC, interpreter dispatch),
    expressed as a fraction of app execution time.
    """

    name: str
    runtime_init_ms: float
    code_load_ms: float
    warm_overhead_fraction: float

    def cold_overhead_ms(self) -> float:
        """Total cold-only runtime cost (excl. container + app init)."""
        return self.runtime_init_ms + self.code_load_ms


#: Language runtimes calibrated so the Fig 4a/b ratios come out right
#: when combined with container boot (~250 ms) and the 3.3 MB download
#: app (see repro.workloads.apps.S3DownloadApp):
#:   Go cold/hot ~ 3.06x, Java cold ~ 2x an already-long hot run,
#:   Python in between, Node close to Python.
LANGUAGE_RUNTIMES: Dict[str, LanguageRuntime] = {
    "python": LanguageRuntime(
        name="python", runtime_init_ms=180.0, code_load_ms=95.0,
        warm_overhead_fraction=0.04,
    ),
    "go": LanguageRuntime(
        # Static binary: tiny runtime init; cold cost dominated by
        # container boot, which is what makes cold/hot == 3.06 for the
        # short-running Go app.
        name="go", runtime_init_ms=18.0, code_load_ms=12.0,
        warm_overhead_fraction=0.01,
    ),
    "java": LanguageRuntime(
        # JVM boot + class loading + JIT warm-up: the big one.
        name="java", runtime_init_ms=640.0, code_load_ms=310.0,
        warm_overhead_fraction=0.06,
    ),
    "node": LanguageRuntime(
        name="node", runtime_init_ms=120.0, code_load_ms=70.0,
        warm_overhead_fraction=0.03,
    ),
}


#: Container network setup cost (ms) by mode, calibrated to Fig 4c.
#: Single-host: none≈bridge≈host, container-mode ≈ half (it attaches to
#: an existing proxy container's namespace).  Multi-host overlay/routing
#: pay registration + initialisation: up to 23x the host mode.
NETWORK_SETUP_MS: Dict[str, float] = {
    "none": 58.0,
    "host": 56.0,
    "bridge": 62.0,
    "container": 29.0,
    "nat": 66.0,
    "multihost-host": 60.0,
    "overlay": 1380.0,   # 23x multihost-host
    "routing": 1150.0,
}


def network_setup_ms(mode: str) -> float:
    """Reference network setup cost for ``mode`` (T430 milliseconds)."""
    try:
        return NETWORK_SETUP_MS[mode]
    except KeyError:
        known = ", ".join(sorted(NETWORK_SETUP_MS))
        raise KeyError(f"unknown network mode {mode!r}; known: {known}") from None


@dataclass(frozen=True)
class ContainerOpCosts:
    """Reference costs (ms) of container-engine operations on the T430."""

    #: Namespace + cgroup + rootfs snapshot setup when creating a container.
    create_ms: float = 112.0
    #: Starting the main process once created.
    start_ms: float = 48.0
    #: Stopping (SIGTERM, teardown).
    stop_ms: float = 35.0
    #: Removing the container and its writable layer.
    remove_ms: float = 22.0
    #: Volume create + mount.
    volume_mount_ms: float = 8.0
    #: Volume content wipe during HotC cleanup (per-volume, small files).
    volume_wipe_ms: float = 6.0
    #: Loading user code into a live container (HotC reuse path).
    code_inject_ms: float = 4.0
    #: Applying a configuration delta to a similar live container
    #: (env/exec-option changes; the partial-key-matching future work).
    reconfigure_ms: float = 15.0
    #: Registry pull throughput, MB/ms at 1 Gbps with local registry.
    pull_mb_per_ms: float = 0.11
    #: Image decompress throughput, MB/ms.
    decompress_mb_per_ms: float = 0.24
    #: Idle live-container memory footprint (Fig 15a: ~0.7 MB each).
    idle_container_mem_mb: float = 0.7
    #: Idle live-container CPU (Fig 15a: <1% total for ten containers).
    idle_container_cpu_millicores: float = 1.5


#: OpenFaaS pipeline stage costs (ms), Section III / Fig 5.  These are
#: the *non-dominant* stages; the dominant 2->3 gap comes from the cold
#: start composed from ContainerOpCosts + LanguageRuntime + app init.
FAAS_STAGE_MS: Dict[str, float] = {
    "client_to_gateway": 0.45,
    "gateway_proxy": 1.6,       # MakeQueuedProxy forwarding work
    "gateway_to_watchdog": 0.55,
    "watchdog_fork": 1.1,       # fork/exec + stdin pipe set-up per request
    "watchdog_pipe": 0.35,      # stdout read + HTTP shell
    "watchdog_to_gateway": 0.55,
    "gateway_to_client": 0.45,
}


class LatencyModel:
    """Samples operation latencies for one host.

    Combines the reference cost tables with the host profile's scale
    factors and multiplicative lognormal jitter.  A dedicated RNG stream
    keeps sampling reproducible and independent of other randomness.

    Parameters
    ----------
    profile:
        The host the latencies apply to.
    rng:
        Generator for jitter; pass ``None`` for deterministic
        (jitter-free) latencies.
    jitter_sigma:
        Sigma of the lognormal multiplicative noise.  0 disables noise.
    """

    def __init__(
        self,
        profile: HostProfile = T430_SERVER,
        rng: Optional[np.random.Generator] = None,
        jitter_sigma: float = 0.06,
        op_costs: ContainerOpCosts = ContainerOpCosts(),
        languages: Mapping[str, LanguageRuntime] = LANGUAGE_RUNTIMES,
        stage_costs: Mapping[str, float] = FAAS_STAGE_MS,
    ) -> None:
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be >= 0")
        self.profile = profile
        self.rng = rng
        self.jitter_sigma = jitter_sigma
        self.ops = op_costs
        self.languages = dict(languages)
        self.stage_costs = dict(stage_costs)
        # Jitter draws dominate latency sampling at trace scale (one
        # scalar numpy call per operation), so they are served from a
        # pre-drawn block.  Vectorised ``Generator.lognormal`` consumes
        # the bit stream exactly like repeated scalar calls, so the
        # value sequence — and every simulation output — is unchanged.
        self._jitter_buf: list = []
        self._jitter_pos = 0
        self._jitter_buf_sigma = jitter_sigma

    # -- jitter ----------------------------------------------------------
    def _jitter(self) -> float:
        if self.rng is None or self.jitter_sigma == 0.0:
            return 1.0
        pos = self._jitter_pos
        buf = self._jitter_buf
        if pos >= len(buf) or self.jitter_sigma != self._jitter_buf_sigma:
            if self.jitter_sigma != self._jitter_buf_sigma:
                # Sigma changed mid-run: the remaining pre-drawn block
                # is stale; later draws differ from the scalar-call
                # sequence, which only ever happens if a caller mutates
                # ``jitter_sigma`` on a live model.
                self._jitter_buf_sigma = self.jitter_sigma
            buf = self.rng.lognormal(
                mean=0.0, sigma=self.jitter_sigma, size=512
            ).tolist()
            self._jitter_buf = buf
            pos = 0
        self._jitter_pos = pos + 1
        return buf[pos]

    def _op(self, base_ms: float) -> float:
        """Scale a container-op cost to this host and apply jitter."""
        return base_ms * self.profile.container_op_scale * self._jitter()

    def _compute(self, base_ms: float) -> float:
        """Scale a compute cost to this host and apply jitter."""
        return base_ms * self.profile.compute_scale * self._jitter()

    # -- container engine ops ---------------------------------------------
    def container_create(self, shared_namespace: bool = False) -> float:
        """Namespace/cgroup/rootfs setup time (ms).

        ``shared_namespace=True`` models container-mode networking: the
        new container joins an existing proxy container's namespaces, so
        most of the namespace/cgroup work is skipped.  This is what makes
        the Fig 4c container-mode startup about half the ``none`` mode.
        """
        factor = 0.35 if shared_namespace else 1.0
        return self._op(self.ops.create_ms * factor)

    def container_start(self) -> float:
        """Main-process start time (ms)."""
        return self._op(self.ops.start_ms)

    def container_stop(self) -> float:
        """Stop/teardown time (ms)."""
        return self._op(self.ops.stop_ms)

    def container_remove(self) -> float:
        """Removal time (ms)."""
        return self._op(self.ops.remove_ms)

    def network_setup(self, mode: str) -> float:
        """Network namespace setup time for ``mode`` (ms)."""
        return self._op(network_setup_ms(mode))

    def volume_mount(self) -> float:
        """Volume create+mount time (ms)."""
        return self._op(self.ops.volume_mount_ms)

    def volume_wipe(self) -> float:
        """HotC cleanup volume wipe time (ms)."""
        return self._op(self.ops.volume_wipe_ms)

    def code_inject(self) -> float:
        """Time to load user code into a live container (ms)."""
        return self._op(self.ops.code_inject_ms)

    def container_reconfigure(self) -> float:
        """Time to apply a config delta to a similar container (ms)."""
        return self._op(self.ops.reconfigure_ms)

    def cold_boot_estimate_ms(
        self,
        network_mode: str,
        language: Optional[str] = None,
        shared_namespace: bool = False,
    ) -> float:
        """Deterministic (jitter-free) estimate of a full cold boot (ms).

        Mirrors the engine's boot pipeline — create + network setup +
        volume mount + start, plus the language cold overhead when the
        runtime would be warmed — scaled to this host but *never*
        jittered: the repurposing decision must be reproducible and
        side-effect-free (no RNG draw) for runs with repurposing
        disabled to stay bit-identical.
        """
        factor = 0.35 if shared_namespace else 1.0
        base = (
            self.ops.create_ms * factor
            + network_setup_ms(network_mode)
            + self.ops.volume_mount_ms
            + self.ops.start_ms
        )
        if language is not None:
            base += self.language(language).cold_overhead_ms()
        return base * self.profile.container_op_scale

    def image_pull(self, compressed_mb: float) -> float:
        """Registry pull time for a compressed image (ms)."""
        if compressed_mb < 0:
            raise ValueError("image size must be >= 0")
        ms = compressed_mb / self.ops.pull_mb_per_ms
        # Pulls are network-bound: scale with the host's relative bandwidth.
        bandwidth_scale = T430_SERVER.network_gbps / self.profile.network_gbps
        return ms * bandwidth_scale * self._jitter()

    def image_decompress(self, compressed_mb: float) -> float:
        """Image decompress time (ms); CPU bound."""
        if compressed_mb < 0:
            raise ValueError("image size must be >= 0")
        return self._compute(compressed_mb / self.ops.decompress_mb_per_ms)

    # -- language runtimes -------------------------------------------------
    def language(self, name: str) -> LanguageRuntime:
        """Look up a language runtime by name."""
        try:
            return self.languages[name]
        except KeyError:
            known = ", ".join(sorted(self.languages))
            raise KeyError(f"unknown language {name!r}; known: {known}") from None

    def runtime_init(self, language: str) -> float:
        """Cold-only language runtime boot + code load (ms).

        Scales with ``container_op_scale`` rather than raw compute:
        interpreter boot and code load are dominated by file I/O and
        syscalls, which is also what keeps the Pi's relative cold-start
        penalty below its 12x compute slowdown (Fig 8b).
        """
        return self._op(self.language(language).cold_overhead_ms())

    def app_init(self, base_init_ms: float, language: str) -> float:
        """Business-logic initialisation (model/data load), cold-only (ms).

        Like :meth:`runtime_init`, init work is I/O-bound and scales
        with the container-op factor.
        """
        if base_init_ms < 0:
            raise ValueError("init time must be >= 0")
        return self._op(base_init_ms)

    def app_execution(self, base_exec_ms: float, language: str) -> float:
        """One warm invocation of application logic (ms)."""
        if base_exec_ms < 0:
            raise ValueError("execution time must be >= 0")
        runtime = self.language(language)
        return self._compute(base_exec_ms * (1.0 + runtime.warm_overhead_fraction))

    # -- FaaS pipeline stages ----------------------------------------------
    def faas_stage(self, stage: str) -> float:
        """One OpenFaaS pipeline stage (ms)."""
        try:
            base = self.stage_costs[stage]
        except KeyError:
            known = ", ".join(sorted(self.stage_costs))
            raise KeyError(f"unknown FaaS stage {stage!r}; known: {known}") from None
        return self._op(base)
