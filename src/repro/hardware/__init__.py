"""Hardware profiles and latency calibration.

The paper evaluates on a Dell PowerEdge T430 server, a Raspberry Pi 3,
and (spot checks) an Nvidia Jetson TX2.  This package encodes those
hosts as :class:`~repro.hardware.profiles.HostProfile` objects and the
paper's measured latency structure as calibration tables
(:mod:`repro.hardware.calibration`) that every simulated container /
FaaS operation draws from.
"""

from repro.hardware.profiles import (
    HostProfile,
    JETSON_TX2,
    RASPBERRY_PI3,
    T430_SERVER,
    get_profile,
    list_profiles,
)
from repro.hardware.calibration import (
    ContainerOpCosts,
    LanguageRuntime,
    LatencyModel,
    NETWORK_SETUP_MS,
    LANGUAGE_RUNTIMES,
    network_setup_ms,
)

__all__ = [
    "ContainerOpCosts",
    "HostProfile",
    "JETSON_TX2",
    "LANGUAGE_RUNTIMES",
    "LanguageRuntime",
    "LatencyModel",
    "NETWORK_SETUP_MS",
    "RASPBERRY_PI3",
    "T430_SERVER",
    "get_profile",
    "list_profiles",
    "network_setup_ms",
]
