"""Named, reproducible random streams.

Every source of randomness in the reproduction draws from a stream
obtained via :class:`RngRegistry`.  Streams are derived from a single
experiment seed and a stable string name using ``numpy``'s ``SeedSequence``
spawning, so:

* two experiments with the same seed are bit-identical, and
* adding a new stream never perturbs existing ones (unlike sharing one
  generator, where call order matters).
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator, Tuple

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses CRC32 of the name (stable across Python processes, unlike
    ``hash``) mixed into the root seed.
    """
    if not isinstance(root_seed, int):
        raise TypeError(f"root_seed must be int, got {type(root_seed).__name__}")
    return (root_seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) % (2**63)


class RngRegistry:
    """Factory and cache for named :class:`numpy.random.Generator` streams.

    Example
    -------
    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("arrivals")
    >>> a is rngs.stream("arrivals")
    True
    >>> b = RngRegistry(seed=42).stream("arrivals")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self.seed, name))
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's.

        Useful for giving a sub-component (e.g. one host) its own
        namespace of streams.
        """
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))

    def known_streams(self) -> Tuple[str, ...]:
        """Names of streams created so far (diagnostics)."""
        return tuple(sorted(self._streams))

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={len(self._streams)})"
