"""Generator-based process engine on top of the event queue.

The engine is a deliberately small subset of the SimPy model: processes
are Python generators that ``yield`` waitable :class:`~repro.sim.events.Event`
objects (timeouts, other processes, composite events, resource requests).
A process is itself an event that fires when its generator returns, so
processes compose.

The hot loop (``Simulator.run``) is written for throughput: it binds the
heap and ``heappop`` to locals, skips the per-step method-call overhead
of ``step()``, recycles executed entries through the queue's free list,
and never formats an event name (see :mod:`repro.sim.events` and
DESIGN.md §9).  The seed implementation is preserved verbatim in
:mod:`repro.sim.naive` as an executable baseline; golden traces under
``tests/sim/`` pin that both engines fire events in bit-identical order.

Example
-------
>>> sim = Simulator()
>>> def worker(sim):
...     yield sim.timeout(5.0)
...     return "done"
>>> proc = sim.process(worker(sim))
>>> sim.run()
5.0
>>> proc.value
'done'
>>> sim.now
5.0
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional

from repro.sim.events import _FREE_MAX, Event, EventQueue, PENDING, ScheduledEvent

__all__ = [
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
]

ProcessGenerator = Generator[Event, Any, Any]

_INF = math.inf


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Timeout(Event):
    """An event that fires ``delay`` milliseconds after creation.

    The constructor is the hottest allocation site in the repo, so it
    writes the :class:`Event` slots directly (no ``super().__init__``),
    stores its name lazily as ``("timeout", delay)``, and schedules a
    recyclable queue entry — with no args tuple at all when ``value`` is
    ``None``, the overwhelmingly common case.
    """

    __slots__ = ("delay", "_entry")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        # One chained compare rejects negatives, inf, and NaN (every
        # comparison against NaN is False), so non-finite delays can
        # never corrupt the heap ordering.
        if not (0.0 <= delay < _INF):
            raise ValueError(
                f"timeout delay must be finite and >= 0, got {delay}"
            )
        # Pristine timeouts carry no watcher list; Event.add_callback
        # promotes () to a real list on first registration.
        self.callbacks = ()
        self._value = PENDING
        self._ok = True
        self._fired = False
        self._name = ("timeout", delay)
        self.delay = delay
        # Inlined EventQueue.push (the single hottest call site in the
        # repo): ``time`` is finite by construction, so the NaN guard is
        # unnecessary, and the entry is recyclable by definition.
        queue = sim._queue
        time = sim._now + delay
        seq = queue._seq
        queue._seq = seq + 1
        free = queue._free
        if free:
            entry = free.pop()
            entry.time = time
            entry.priority = 0
            entry.seq = seq
            entry.callback = self
            entry.args = (value,) if value is not None else ()
            entry.cancelled = False
            entry.queue = queue
        else:
            entry = ScheduledEvent(
                time, 0, seq, self,
                (value,) if value is not None else (), queue, False,
            )
        heappush(queue._heap, (time, 0, seq, entry))
        self._entry: Optional[ScheduledEvent] = entry

    #: Firing the entry calls the timeout itself — no per-timeout bound
    #: method allocation for the overwhelmingly common case.
    __call__ = Event.succeed

    def cancel(self) -> None:
        """Cancel the pending timeout (no-op once fired or cancelled)."""
        entry = self._entry
        if entry is not None and not self.triggered:
            # Drop our handle first: the cancelled entry may be recycled
            # by the queue, and a second cancel() must not touch it.
            self._entry = None
            entry.cancel()


class Process(Event):
    """A running generator; fires with the generator's return value.

    Yield semantics inside the generator:

    * ``yield event`` — suspend until ``event`` fires; the ``yield``
      expression evaluates to the event's value.  If the event failed,
      the exception is re-raised inside the generator.
    * ``return value`` — finishes the process; waiters receive ``value``.
    """

    __slots__ = ("_sim", "_generator", "_waiting_on", "_on_event_cb", "_wake_cb")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                "process() expects a generator; did you forget to call "
                "the generator function?"
            )
        super().__init__(name=name or getattr(generator, "__name__", "process"))
        self._sim = sim
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # One bound method for the process's whole life instead of a
        # fresh ``self._on_event``/``self._wake`` allocation per wait.
        self._on_event_cb = self._on_event
        self._wake_cb = self._wake
        # Start the process at the current simulation instant.
        sim._queue.push(sim._now, self._resume, (None, None), 0, False)

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting detaches it from the awaited event.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self!r}")
        self._sim._queue.push(
            self._sim._now, self._resume, (None, Interrupt(cause)), -1, False
        )

    # -- engine internals ------------------------------------------------
    def _wait_for(self, event: Event) -> None:
        self._waiting_on = event
        event.add_callback(self._on_event_cb)

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            # Stale callback after an interrupt re-armed the process.
            return
        self._waiting_on = None
        if event._ok:
            self._resume(event._value, None)
        else:
            self._resume(None, event._value)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._fired:
            return
        abandoned = self._waiting_on
        if abandoned is not None:
            if type(abandoned) is Timeout and not abandoned._fired:
                # An interrupt is pre-empting a pending sleep: drop the
                # orphan timer so it cannot keep the simulation alive
                # artificially.
                abandoned.cancel()
            self._waiting_on = None
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate to waiters
            self.fail(error)
            return
        self._wait_on_target(target)

    def _wait_on_target(self, target: Any) -> None:
        """Suspend on whatever the generator just yielded.

        The ``type(target) is Timeout`` arm is the direct-wake fast path:
        a pristine timeout nobody else is watching rewires its queue
        entry to resume this process straight from the drain loop,
        skipping the generic succeed -> callback-dispatch -> _on_event
        chain.  The ``(time, priority, seq)`` key is untouched, so firing
        order is bit-identical; late ``add_callback()`` registrations are
        replayed by :meth:`_wake` after the resume, preserving
        registration order.
        """
        if type(target) is Timeout:
            if not target._fired and not target.callbacks:
                entry = target._entry
                if entry is not None and entry.callback is target and not entry.cancelled:
                    self._waiting_on = target
                    entry.callback = self._wake_cb
                    args = entry.args
                    entry.args = (target, args[0]) if args else (target,)
                    return
        elif not isinstance(target, Event):
            self._generator.close()
            self.fail(
                TypeError(
                    f"process {self.name!r} yielded {target!r}; processes "
                    "must yield Event instances"
                )
            )
            return
        self._waiting_on = target
        if target._fired:
            self._on_event(target)
        else:
            callbacks = target.callbacks
            if type(callbacks) is list:
                callbacks.append(self._on_event_cb)
            else:
                target.callbacks = [self._on_event_cb]

    def _wake(self, timeout: "Timeout", value: Any = None) -> None:
        # Partner of the direct-wake fast path in _wait_on_target: fired
        # straight from the drain loop in place of Timeout.succeed().
        # The resume guards are skipped deliberately — a rewired entry
        # can only fire while this (unfinished) process is waiting on
        # exactly this timeout.
        timeout._fired = True
        timeout._value = value
        timeout._entry = None
        self._waiting_on = None
        callbacks = timeout.callbacks
        if callbacks:
            # Rare: someone add_callback()ed the timeout after the
            # rewire; take the generic resume and replay the watchers in
            # registration order.
            timeout.callbacks = ()
            self._resume(value, None)
            for callback in callbacks:
                callback(timeout)
            return
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate to waiters
            self.fail(error)
            return
        self._wait_on_target(target)


class AllOf(Event):
    """Fires when all child events have fired; value is the list of values.

    Fails fast with the first child failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, events: Iterable[Event]) -> None:
        super().__init__(name="all_of")
        self._children: List[Event] = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Fires as soon as any child fires; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, events: Iterable[Event]) -> None:
        super().__init__(name="any_of")
        self._children: List[Event] = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(lambda c, i=index: self._on_child(i, c))

    def _on_child(self, index: int, child: Event) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed((index, child.value))
        else:
            self.fail(child.value)


class Resource:
    """A counting semaphore with a FIFO wait queue.

    ``request()`` returns an event that fires when a slot is granted; the
    holder must call ``release()`` exactly once per granted request.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters", "name")

    def __init__(self, sim: "Simulator", capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Ask for a slot; the returned event fires on grant."""
        event = Event(name=("request", self.name))
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot; wakes the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            # Slot transfers directly to the waiter: _in_use stays put but
            # the grant must happen at the current instant via the queue so
            # the releasing process finishes its step first.
            self.sim._queue.push(self.sim._now, waiter.succeed, (self,), 0, False)
        else:
            self._in_use -= 1

    def cancel(self, request: Event) -> bool:
        """Withdraw a pending :meth:`request` that was never granted.

        Returns ``True`` when the waiter was still queued (it is removed
        and will never receive a slot).  Returns ``False`` when the
        request already holds — or is in the middle of being handed — a
        slot; the caller then owns that slot and must :meth:`release` it.
        A process abandoning a wait (interrupt, deadline) must call this
        so its queue position cannot absorb a future release forever.
        """
        try:
            self._waiters.remove(request)
        except ValueError:
            return False
        return True


class Store:
    """An unbounded FIFO item store with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    oldest item once one is available.
    """

    __slots__ = ("sim", "_items", "_getters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; hands it straight to the oldest waiter."""
        if self._getters:
            getter = self._getters.popleft()
            self.sim._queue.push(self.sim._now, getter.succeed, (item,), 0, False)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if present)."""
        event = Event(name=("get", self.name))
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Simulator:
    """The simulation kernel: clock + event queue + process spawner."""

    __slots__ = ("_queue", "_now", "_step_count")

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._step_count = 0

    # -- time -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Number of queue entries executed so far (diagnostics)."""
        return self._step_count

    # -- primitives ---------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Event firing ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def event(self, name: str = "") -> Event:
        """A bare event for manual triggering."""
        return Event(name=name)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Spawn a process from ``generator`` starting at the current time."""
        return Process(self, generator, name=name)

    def resource(self, capacity: int, name: str = "") -> Resource:
        """Create a counting-semaphore resource."""
        return Resource(self, capacity, name=name)

    def store(self, name: str = "") -> Store:
        """Create a FIFO store."""
        return Store(self, name=name)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Run ``callback(*args)`` after ``delay`` ms (plain callback API).

        The returned entry is pinned (never recycled), so holding it and
        cancelling it later — even long after it fired — is always safe.
        """
        if not (0.0 <= delay < _INF):
            raise ValueError(f"delay must be finite and >= 0, got {delay}")
        return self._queue.push(self._now + delay, callback, args, priority)

    # -- main loop --------------------------------------------------------
    def step(self) -> None:
        """Execute the next queue entry, advancing the clock."""
        entry = self._queue.pop()
        if entry.time < self._now:
            raise RuntimeError(
                f"event queue went backwards: {entry.time} < {self._now}"
            )
        self._now = entry.time
        self._step_count += 1
        callback, args = entry.callback, entry.args
        self._queue.recycle(entry)
        callback(*args)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final simulated time.  With ``until`` set, the clock
        is advanced to exactly ``until`` even if the last event fired
        earlier, mirroring SimPy semantics.

        This is the batched drain loop: heap access, ``heappop``, and the
        free list are bound to locals, and each live entry is executed
        inline instead of going through :meth:`step`'s pop/peek pair.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        queue = self._queue
        heap = queue._heap
        free = queue._free
        pop = heappop
        steps = 0
        try:
            if until is None:
                # Unbounded drain (the common case for full-figure runs):
                # pop immediately — no peek, no per-event ``until`` test.
                while heap:
                    time, _, _, entry = pop(heap)
                    if entry.cancelled:
                        queue._ncancelled -= 1
                        entry.queue = None
                        if not entry.pinned and len(free) < _FREE_MAX:
                            entry.callback = entry.args = None
                            free.append(entry)
                        continue
                    if time < self._now:
                        raise RuntimeError(
                            f"event queue went backwards: {time} < {self._now}"
                        )
                    self._now = time
                    steps += 1
                    callback = entry.callback
                    args = entry.args
                    entry.queue = None
                    if not entry.pinned and len(free) < _FREE_MAX:
                        entry.callback = entry.args = None
                        free.append(entry)
                    callback(*args)
            else:
                # Bounded drain: peek before popping so entries past
                # ``until`` stay queued for a later run() call.
                while heap:
                    item = heap[0]
                    entry = item[3]
                    if entry.cancelled:
                        pop(heap)
                        queue._ncancelled -= 1
                        entry.queue = None
                        if not entry.pinned and len(free) < _FREE_MAX:
                            entry.callback = entry.args = None
                            free.append(entry)
                        continue
                    time = item[0]
                    if time > until:
                        break
                    if time < self._now:
                        raise RuntimeError(
                            f"event queue went backwards: {time} < {self._now}"
                        )
                    pop(heap)
                    self._now = time
                    steps += 1
                    callback = entry.callback
                    args = entry.args
                    entry.queue = None
                    if not entry.pinned and len(free) < _FREE_MAX:
                        entry.callback = entry.args = None
                        free.append(entry)
                    callback(*args)
        finally:
            self._step_count += steps
        if until is not None and until > self._now:
            self._now = until
        return self._now
