"""Generator-based process engine on top of the event queue.

The engine is a deliberately small subset of the SimPy model: processes
are Python generators that ``yield`` waitable :class:`~repro.sim.events.Event`
objects (timeouts, other processes, composite events, resource requests).
A process is itself an event that fires when its generator returns, so
processes compose.

Example
-------
>>> sim = Simulator()
>>> def worker(sim):
...     yield sim.timeout(5.0)
...     return "done"
>>> proc = sim.process(worker(sim))
>>> sim.run()
>>> proc.value
'done'
>>> sim.now
5.0
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional

from repro.sim.events import Event, EventQueue, ScheduledEvent

__all__ = [
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
]

ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Timeout(Event):
    """An event that fires ``delay`` milliseconds after creation."""

    __slots__ = ("delay", "_entry",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(name=f"timeout({delay})")
        self.delay = delay
        self._entry: ScheduledEvent = sim._queue.push(
            sim.now + delay, self.succeed, (value,)
        )

    def cancel(self) -> None:
        """Cancel the pending timeout (no-op once fired)."""
        if not self.triggered:
            self._entry.cancel()


class Process(Event):
    """A running generator; fires with the generator's return value.

    Yield semantics inside the generator:

    * ``yield event`` — suspend until ``event`` fires; the ``yield``
      expression evaluates to the event's value.  If the event failed,
      the exception is re-raised inside the generator.
    * ``return value`` — finishes the process; waiters receive ``value``.
    """

    __slots__ = ("_sim", "_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                "process() expects a generator; did you forget to call "
                "the generator function?"
            )
        super().__init__(name=name or getattr(generator, "__name__", "process"))
        self._sim = sim
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Start the process at the current simulation instant.
        sim._queue.push(sim.now, self._resume, (None, None))

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting detaches it from the awaited event.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self!r}")
        self._sim._queue.push(
            self._sim.now, self._resume, (None, Interrupt(cause)), priority=-1
        )

    # -- engine internals ------------------------------------------------
    def _wait_for(self, event: Event) -> None:
        self._waiting_on = event
        event.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            # Stale callback after an interrupt re-armed the process.
            return
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        abandoned = self._waiting_on
        if isinstance(abandoned, Timeout) and not abandoned.triggered:
            # An interrupt is pre-empting a pending sleep: drop the orphan
            # timer so it cannot keep the simulation alive artificially.
            abandoned.cancel()
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate to waiters
            self.fail(error)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(
                TypeError(
                    f"process {self.name!r} yielded {target!r}; processes "
                    "must yield Event instances"
                )
            )
            return
        self._wait_for(target)


class AllOf(Event):
    """Fires when all child events have fired; value is the list of values.

    Fails fast with the first child failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, events: Iterable[Event]) -> None:
        super().__init__(name="all_of")
        self._children: List[Event] = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Fires as soon as any child fires; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, events: Iterable[Event]) -> None:
        super().__init__(name="any_of")
        self._children: List[Event] = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(lambda c, i=index: self._on_child(i, c))

    def _on_child(self, index: int, child: Event) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed((index, child.value))
        else:
            self.fail(child.value)


class Resource:
    """A counting semaphore with a FIFO wait queue.

    ``request()`` returns an event that fires when a slot is granted; the
    holder must call ``release()`` exactly once per granted request.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters", "name")

    def __init__(self, sim: "Simulator", capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Ask for a slot; the returned event fires on grant."""
        event = Event(name=f"request({self.name})")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot; wakes the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            # Slot transfers directly to the waiter: _in_use stays put but
            # the grant must happen at the current instant via the queue so
            # the releasing process finishes its step first.
            self.sim._queue.push(self.sim.now, waiter.succeed, (self,))
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO item store with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    oldest item once one is available.
    """

    __slots__ = ("sim", "_items", "_getters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; hands it straight to the oldest waiter."""
        if self._getters:
            getter = self._getters.popleft()
            self.sim._queue.push(self.sim.now, getter.succeed, (item,))
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if present)."""
        event = Event(name=f"get({self.name})")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Simulator:
    """The simulation kernel: clock + event queue + process spawner."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._step_count = 0

    # -- time -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Number of queue entries executed so far (diagnostics)."""
        return self._step_count

    # -- primitives ---------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Event firing ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def event(self, name: str = "") -> Event:
        """A bare event for manual triggering."""
        return Event(name=name)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Spawn a process from ``generator`` starting at the current time."""
        return Process(self, generator, name=name)

    def resource(self, capacity: int, name: str = "") -> Resource:
        """Create a counting-semaphore resource."""
        return Resource(self, capacity, name=name)

    def store(self, name: str = "") -> Store:
        """Create a FIFO store."""
        return Store(self, name=name)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Run ``callback(*args)`` after ``delay`` ms (plain callback API)."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self._queue.push(self._now + delay, callback, args, priority)

    # -- main loop --------------------------------------------------------
    def step(self) -> None:
        """Execute the next queue entry, advancing the clock."""
        entry = self._queue.pop()
        if entry.time < self._now:
            raise RuntimeError(
                f"event queue went backwards: {entry.time} < {self._now}"
            )
        self._now = entry.time
        self._step_count += 1
        entry.callback(*entry.args)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final simulated time.  With ``until`` set, the clock
        is advanced to exactly ``until`` even if the last event fired
        earlier, mirroring SimPy semantics.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now
