"""One-shot events and the deterministic event queue.

The queue orders scheduled callbacks by ``(time, priority, sequence)``.
The monotonically increasing sequence number guarantees that two events
scheduled for the same instant fire in insertion order, which makes every
simulation in this repository bit-reproducible.

Hot-path design (see DESIGN.md §9)
----------------------------------
The event loop is the invocation fast path of every experiment in this
repo, so the queue is built to stay allocation-light and C-compared at
millions of events per run:

* **Lazy names** — an :class:`Event` stores its name as either a plain
  string or a ``(kind, arg)`` tuple; the human-readable form is only
  formatted in ``__repr__``/error paths, never per construction.
* **Tuple-keyed heap** — the heap holds ``(time, priority, seq, entry)``
  tuples, so every sift comparison is a C-level tuple compare (``seq``
  is unique, so the ``entry`` object itself is never compared) instead
  of a Python ``__lt__`` call per level.
* **Free-listed entries** — executed (and compacted-away) non-pinned
  :class:`ScheduledEvent` objects are recycled through a bounded free
  list instead of being reallocated per push.  Entries handed to
  external callers (``EventQueue.push`` default, ``Simulator.schedule``)
  are *pinned* and never recycled, so a caller-held handle can never
  alias a later entry.
* **Lazy cancellation with compaction** — ``cancel()`` only flags the
  entry; dead entries are skipped on pop, and once more than half of a
  non-trivial heap is dead the heap is compacted in place in one
  O(live) pass (in place, because the batched drain loop in
  ``Simulator.run`` aliases the heap list).
* **O(1) sizing** — ``__len__``/``__bool__`` read a maintained
  dead-entry counter instead of scanning.

None of this changes the ordering contract: ``(time, priority, seq)``
with lazy deletion is observationally identical to the seed engine
(:mod:`repro.sim.naive`), which the golden traces under ``tests/sim/``
pin byte-for-byte.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

__all__ = ["Event", "EventQueue", "ScheduledEvent", "PENDING"]


class _Pending:
    """Sentinel for "event has no value yet"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


#: Sentinel stored in :attr:`Event.value` until the event fires.
PENDING = _Pending()

#: Compact a heap only once it is at least this large *and* >50% dead.
_COMPACT_MIN = 64

#: Upper bound on recycled entries kept per queue.
_FREE_MAX = 1_024


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts *pending*, then is either *succeeded* with a value or
    *failed* with an exception.  Callbacks registered before the trigger
    run when the event fires; callbacks registered afterwards run
    immediately (so late waiters do not deadlock).

    ``name`` may be given as a string or, on hot paths, as a lazy
    ``(kind, arg)`` tuple that is only formatted when the name is read.
    """

    __slots__ = ("callbacks", "_value", "_ok", "_fired", "_name")

    def __init__(self, name: Union[str, Tuple[str, Any]] = "") -> None:
        self.callbacks: List[Callable[[Event], None]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._fired: bool = False
        self._name = name

    # -- state ----------------------------------------------------------
    @property
    def name(self) -> str:
        """The event's label; lazy ``(kind, arg)`` forms format here."""
        name = self._name
        if type(name) is tuple:
            return f"{name[0]}({name[1]})"
        return name

    @property
    def triggered(self) -> bool:
        """Whether the event has fired (successfully or not)."""
        return self._fired

    @property
    def ok(self) -> bool:
        """``True`` when the event succeeded; only meaningful once fired."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception), :data:`PENDING` before firing."""
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, delivering ``value`` to waiters."""
        if self._fired:
            raise RuntimeError(f"event {self!r} has already fired")
        self._fired = True
        self._ok = True
        self._value = value
        callbacks = self.callbacks
        if callbacks:
            # A fired event never collects callbacks again (late adders
            # run immediately), so a shared empty tuple replaces the
            # list instead of allocating a fresh one.
            self.callbacks = ()
            for callback in callbacks:
                callback(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception; waiters will re-raise it."""
        if self._fired:
            raise RuntimeError(f"event {self!r} has already fired")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._fired = True
        self._ok = False
        self._value = exception
        self._dispatch()
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback``; runs now if the event already fired."""
        if self._fired:
            callback(self)
        else:
            callbacks = self.callbacks
            if type(callbacks) is list:
                callbacks.append(callback)
            else:
                # Hot-path events (Timeout) start with a shared empty
                # tuple instead of allocating a watcher list; the first
                # registration promotes it.
                self.callbacks = [callback]

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, ()
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else "pending"
        label = f" {self.name!r}" if self._name else ""
        return f"<{type(self).__name__}{label} {state}>"


class ScheduledEvent:
    """A queue entry: ``callback(*args)`` to run at ``time``.

    Entries are totally ordered by ``(time, priority, seq)``; ``seq`` is
    assigned by the queue.  Cancelled entries stay in the heap but are
    skipped on pop (lazy deletion); the owning queue counts them and
    compacts once most of the heap is dead.

    ``pinned`` entries (the default for anything handed to an external
    caller) are never recycled through the queue's free list, so a held
    reference stays valid — and harmlessly inert — after the entry fires.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "queue", "pinned")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        queue: Optional["EventQueue"] = None,
        pinned: bool = True,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.queue = queue
        self.pinned = pinned

    def cancel(self) -> None:
        """Prevent the callback from running when the entry is popped."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self.queue
        if queue is not None:
            queue._ncancelled += 1
            queue._maybe_compact()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        # Kept for API compatibility; the queue's heap orders C-level
        # ``(time, priority, seq, entry)`` tuples and never calls this.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<ScheduledEvent t={self.time:.3f} seq={self.seq}{flag}>"


class EventQueue:
    """Deterministic priority queue of :class:`ScheduledEvent` entries.

    The heap holds ``(time, priority, seq, entry)`` tuples so sift
    comparisons never leave C; ``entry`` is the stable, cancellable
    handle returned to callers.
    """

    __slots__ = ("_heap", "_seq", "_ncancelled", "_free")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, ScheduledEvent]] = []
        self._seq = 0
        #: Cancelled entries still buried in the heap.
        self._ncancelled = 0
        #: Recycled non-pinned entries awaiting reuse.
        self._free: List[ScheduledEvent] = []

    def __len__(self) -> int:
        return len(self._heap) - self._ncancelled

    def __bool__(self) -> bool:
        return len(self._heap) > self._ncancelled

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
        pinned: bool = True,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute ``time``.

        Internal engine call sites pass ``pinned=False`` for entries no
        external caller can hold, letting the queue recycle them.
        """
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            entry = free.pop()
            entry.time = time
            entry.priority = priority
            entry.seq = seq
            entry.callback = callback
            entry.args = args
            entry.cancelled = False
            entry.queue = self
            entry.pinned = pinned
        else:
            entry = ScheduledEvent(time, priority, seq, callback, args, self, pinned)
        heapq.heappush(self._heap, (time, priority, seq, entry))
        return entry

    def peek_time(self) -> Optional[float]:
        """Time of the next live entry, or ``None`` when empty."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else None

    def pop(self) -> ScheduledEvent:
        """Remove and return the next live entry.

        The returned entry is detached from the queue; :meth:`recycle`
        may be called on it after its callback has been consumed.
        """
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        entry = heapq.heappop(self._heap)[3]
        entry.queue = None
        return entry

    def recycle(self, entry: ScheduledEvent) -> None:
        """Return an executed, detached, non-pinned entry to the free list."""
        if not entry.pinned and len(self._free) < _FREE_MAX:
            entry.callback = entry.args = None  # type: ignore[assignment]
            self._free.append(entry)

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            entry = heapq.heappop(heap)[3]
            self._ncancelled -= 1
            entry.queue = None
            self.recycle(entry)

    def _maybe_compact(self) -> None:
        # Lazy-cancellation compaction: one O(live) rebuild once more
        # than half of a non-trivial heap is dead keeps pop cost at
        # O(log live) without paying O(n) per cancel.
        heap = self._heap
        if len(heap) < _COMPACT_MIN or 2 * self._ncancelled <= len(heap):
            return
        live = []
        for item in heap:
            entry = item[3]
            if entry.cancelled:
                entry.queue = None
                self.recycle(entry)
            else:
                live.append(item)
        # In place, not rebound: the batched drain loop in Simulator.run
        # holds a local alias to this list across callbacks.
        heap[:] = live
        heapq.heapify(heap)
        self._ncancelled = 0

    def drain_times(self) -> Iterable[float]:
        """Yield times of remaining live entries (for debugging/tests)."""
        return sorted(item[0] for item in self._heap if not item[3].cancelled)
