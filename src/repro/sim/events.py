"""One-shot events and the deterministic event queue.

The queue orders scheduled callbacks by ``(time, priority, sequence)``.
The monotonically increasing sequence number guarantees that two events
scheduled for the same instant fire in insertion order, which makes every
simulation in this repository bit-reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, List, Optional, Tuple

__all__ = ["Event", "EventQueue", "ScheduledEvent", "PENDING"]


class _Pending:
    """Sentinel for "event has no value yet"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


#: Sentinel stored in :attr:`Event.value` until the event fires.
PENDING = _Pending()


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts *pending*, then is either *succeeded* with a value or
    *failed* with an exception.  Callbacks registered before the trigger
    run when the event fires; callbacks registered afterwards run
    immediately (so late waiters do not deadlock).
    """

    __slots__ = ("callbacks", "_value", "_ok", "_fired", "name")

    def __init__(self, name: str = "") -> None:
        self.callbacks: List[Callable[[Event], None]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._fired: bool = False
        self.name = name

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has fired (successfully or not)."""
        return self._fired

    @property
    def ok(self) -> bool:
        """``True`` when the event succeeded; only meaningful once fired."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception), :data:`PENDING` before firing."""
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, delivering ``value`` to waiters."""
        if self._fired:
            raise RuntimeError(f"event {self!r} has already fired")
        self._fired = True
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception; waiters will re-raise it."""
        if self._fired:
            raise RuntimeError(f"event {self!r} has already fired")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._fired = True
        self._ok = False
        self._value = exception
        self._dispatch()
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback``; runs now if the event already fired."""
        if self._fired:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class ScheduledEvent:
    """A queue entry: ``callback(*args)`` to run at ``time``.

    Entries are totally ordered by ``(time, priority, seq)``; ``seq`` is
    assigned by the queue.  Cancelled entries stay in the heap but are
    skipped on pop (lazy deletion).
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running when the entry is popped."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<ScheduledEvent t={self.time:.3f} seq={self.seq}{flag}>"


class EventQueue:
    """Deterministic priority queue of :class:`ScheduledEvent` entries."""

    def __init__(self) -> None:
        self._heap: List[ScheduledEvent] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def __bool__(self) -> bool:
        return any(not entry.cancelled for entry in self._heap)

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        entry = ScheduledEvent(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._heap, entry)
        return entry

    def peek_time(self) -> Optional[float]:
        """Time of the next live entry, or ``None`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> ScheduledEvent:
        """Remove and return the next live entry."""
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def drain_times(self) -> Iterable[float]:
        """Yield times of remaining live entries (for debugging/tests)."""
        return sorted(e.time for e in self._heap if not e.cancelled)
