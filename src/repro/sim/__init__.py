"""Discrete-event simulation substrate.

Everything in the reproduction runs on this kernel: a deterministic
event queue (:mod:`repro.sim.events`), a generator-based process engine
(:mod:`repro.sim.engine`), named reproducible random streams
(:mod:`repro.sim.rng`) and per-host resource accounting
(:mod:`repro.sim.resources`).

Simulated time is a ``float`` number of **milliseconds**.  Ties in the
event queue are broken by insertion order so runs are bit-reproducible.
"""

from repro.sim.events import Event, EventQueue, ScheduledEvent
from repro.sim.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    Resource,
    Simulator,
    Store,
    Timeout,
)
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.resources import HostResources, ResourceSample, ResourceTimeline

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "EventQueue",
    "HostResources",
    "Interrupt",
    "Process",
    "Resource",
    "ResourceSample",
    "ResourceTimeline",
    "RngRegistry",
    "ScheduledEvent",
    "Simulator",
    "Store",
    "Timeout",
    "derive_seed",
]
