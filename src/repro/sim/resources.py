"""Per-host CPU / memory / swap accounting.

The paper's pool controller uses a heuristic over ``used_mem`` and
``used_swap`` (Section IV-B: evict when memory usage crosses 80% of the
host) — this module provides exactly those observables, plus a sampled
timeline used by the overhead experiment (Fig 15).

Memory model: allocations fill physical memory first; overflow spills to
swap.  ``used_mem``/``used_swap`` are derived from the total outstanding
allocation, which keeps release order-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["Allocation", "HostResources", "ResourceSample", "ResourceTimeline"]


class ResourceError(RuntimeError):
    """Raised when an allocation cannot be satisfied."""


@dataclass(frozen=True)
class ResourceSample:
    """One point of a resource usage timeline."""

    time: float
    cpu_used_millicores: float
    mem_used_mb: float
    swap_used_mb: float


class ResourceTimeline:
    """Append-only series of :class:`ResourceSample` points."""

    def __init__(self) -> None:
        self._samples: List[ResourceSample] = []

    def record(self, sample: ResourceSample) -> None:
        """Append one sample; time must be non-decreasing."""
        if self._samples and sample.time < self._samples[-1].time:
            raise ValueError("timeline samples must be time-ordered")
        self._samples.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    @property
    def times(self) -> np.ndarray:
        """Sample times as a float array."""
        return np.array([s.time for s in self._samples], dtype=float)

    @property
    def cpu(self) -> np.ndarray:
        """CPU usage (millicores) as a float array."""
        return np.array([s.cpu_used_millicores for s in self._samples], dtype=float)

    @property
    def mem(self) -> np.ndarray:
        """Memory usage (MB) as a float array."""
        return np.array([s.mem_used_mb for s in self._samples], dtype=float)

    @property
    def swap(self) -> np.ndarray:
        """Swap usage (MB) as a float array."""
        return np.array([s.swap_used_mb for s in self._samples], dtype=float)


@dataclass
class Allocation:
    """A granted slice of host resources; release through the host."""

    owner: str
    cpu_millicores: float
    mem_mb: float
    released: bool = field(default=False, repr=False)


class HostResources:
    """Tracks CPU and memory commitments on a single simulated host.

    Parameters
    ----------
    cpu_millicores:
        Total CPU capacity (1 core = 1000 millicores).
    mem_mb:
        Physical memory in MB.
    swap_mb:
        Swap space in MB; allocations overflow here when memory is full.
    """

    def __init__(self, cpu_millicores: float, mem_mb: float, swap_mb: float = 0.0) -> None:
        if cpu_millicores <= 0 or mem_mb <= 0 or swap_mb < 0:
            raise ValueError("resource capacities must be positive")
        self.cpu_millicores_total = float(cpu_millicores)
        self.mem_mb_total = float(mem_mb)
        self.swap_mb_total = float(swap_mb)
        self._cpu_used = 0.0
        self._mem_allocated = 0.0
        self._allocations: Dict[int, Allocation] = {}
        self.timeline = ResourceTimeline()

    # -- observables -----------------------------------------------------
    @property
    def cpu_used_millicores(self) -> float:
        """Currently committed CPU."""
        return self._cpu_used

    @property
    def used_mem_mb(self) -> float:
        """Physical memory in use (allocation clipped to physical size)."""
        return min(self._mem_allocated, self.mem_mb_total)

    @property
    def used_swap_mb(self) -> float:
        """Swap in use (allocation overflowing physical memory)."""
        return max(0.0, self._mem_allocated - self.mem_mb_total)

    @property
    def mem_fraction(self) -> float:
        """Fraction of physical memory in use, in [0, 1]."""
        return self.used_mem_mb / self.mem_mb_total

    @property
    def cpu_fraction(self) -> float:
        """Fraction of CPU capacity in use, in [0, 1]."""
        return self._cpu_used / self.cpu_millicores_total

    def memory_pressure(self, threshold: float = 0.8) -> bool:
        """The paper's heuristic: high memory use or any swap activity."""
        return self.mem_fraction >= threshold or self.used_swap_mb > 0.0

    # -- allocation ------------------------------------------------------
    def allocate(self, owner: str, cpu_millicores: float, mem_mb: float) -> Allocation:
        """Commit resources; raises :class:`ResourceError` when impossible.

        CPU is a hard cap; memory may spill into swap but not beyond it.
        """
        if cpu_millicores < 0 or mem_mb < 0:
            raise ValueError("allocation amounts must be >= 0")
        if self._cpu_used + cpu_millicores > self.cpu_millicores_total + 1e-9:
            raise ResourceError(
                f"CPU exhausted on allocation for {owner!r}: "
                f"{self._cpu_used + cpu_millicores:.0f} > "
                f"{self.cpu_millicores_total:.0f} millicores"
            )
        if (
            self._mem_allocated + mem_mb
            > self.mem_mb_total + self.swap_mb_total + 1e-9
        ):
            raise ResourceError(
                f"memory+swap exhausted on allocation for {owner!r}"
            )
        self._cpu_used += cpu_millicores
        self._mem_allocated += mem_mb
        allocation = Allocation(owner, cpu_millicores, mem_mb)
        self._allocations[id(allocation)] = allocation
        return allocation

    def release(self, allocation: Allocation) -> None:
        """Return a previously granted allocation; idempotence is an error."""
        if allocation.released:
            raise ResourceError(f"double release by {allocation.owner!r}")
        if id(allocation) not in self._allocations:
            raise ResourceError("allocation does not belong to this host")
        del self._allocations[id(allocation)]
        allocation.released = True
        self._cpu_used -= allocation.cpu_millicores
        self._mem_allocated -= allocation.mem_mb
        # Clamp tiny negative float residue.
        if -1e-6 < self._cpu_used < 0:
            self._cpu_used = 0.0
        if -1e-6 < self._mem_allocated < 0:
            self._mem_allocated = 0.0

    def can_allocate(self, cpu_millicores: float, mem_mb: float) -> bool:
        """Whether :meth:`allocate` would succeed for these amounts."""
        return (
            self._cpu_used + cpu_millicores <= self.cpu_millicores_total + 1e-9
            and self._mem_allocated + mem_mb
            <= self.mem_mb_total + self.swap_mb_total + 1e-9
        )

    @property
    def live_allocations(self) -> int:
        """Number of outstanding allocations."""
        return len(self._allocations)

    # -- sampling ---------------------------------------------------------
    def sample(self, now: float) -> ResourceSample:
        """Record and return a snapshot of current usage at time ``now``."""
        point = ResourceSample(
            time=now,
            cpu_used_millicores=self._cpu_used,
            mem_used_mb=self.used_mem_mb,
            swap_used_mb=self.used_swap_mb,
        )
        self.timeline.record(point)
        return point

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HostResources(cpu={self._cpu_used:.0f}/{self.cpu_millicores_total:.0f}m, "
            f"mem={self.used_mem_mb:.1f}/{self.mem_mb_total:.0f}MB, "
            f"swap={self.used_swap_mb:.1f}MB)"
        )
