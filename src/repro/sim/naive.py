"""The seed simulation engine, kept verbatim as an executable baseline.

This module preserves the pre-optimisation event queue and process
engine exactly as the seed shipped them: eager ``f"timeout({delay})"``
name formatting per event, a fresh ``NaiveScheduledEvent`` allocation
per push, tuple-building ``__lt__``, O(n) ``__len__``, and the
peek-then-pop run loop.  ``benchmarks/bench_sim_hotpath.py`` drives the
same workloads through this baseline and through :mod:`repro.sim` to
produce honest before/after numbers on the same machine (the same
pattern as :mod:`repro.core.naivepool` for the pool hot path), and the
differential tests use it as an executable ordering spec.

Nothing in the production tree may import this module on a hot path.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "NaiveEvent",
    "NaiveEventQueue",
    "NaiveProcess",
    "NaiveScheduledEvent",
    "NaiveSimulator",
    "NaiveTimeout",
]


class _Pending:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


_PENDING = _Pending()


class NaiveEvent:
    """Seed ``Event``: eager name string, same trigger semantics."""

    __slots__ = ("callbacks", "_value", "_ok", "_fired", "name")

    def __init__(self, name: str = "") -> None:
        self.callbacks: List[Callable[["NaiveEvent"], None]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._fired: bool = False
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._fired

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "NaiveEvent":
        """Fire successfully, delivering ``value`` to waiters."""
        if self._fired:
            raise RuntimeError(f"event {self!r} has already fired")
        self._fired = True
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "NaiveEvent":
        """Fire with an exception; waiters re-raise it."""
        if self._fired:
            raise RuntimeError(f"event {self!r} has already fired")
        self._fired = True
        self._ok = False
        self._value = exception
        self._dispatch()
        return self

    def add_callback(self, callback: Callable[["NaiveEvent"], None]) -> None:
        """Register ``callback``; runs now if already fired."""
        if self._fired:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class NaiveScheduledEvent:
    """Seed queue entry: fresh allocation per push, tuple ``__lt__``."""

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Flag the entry so the queue skips it on pop."""
        self.cancelled = True

    def __lt__(self, other: "NaiveScheduledEvent") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )


class NaiveEventQueue:
    """Seed queue: O(n) ``__len__``, no compaction, peek-then-pop."""

    def __init__(self) -> None:
        self._heap: List[NaiveScheduledEvent] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def __bool__(self) -> bool:
        return any(not entry.cancelled for entry in self._heap)

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> NaiveScheduledEvent:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        entry = NaiveScheduledEvent(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._heap, entry)
        return entry

    def peek_time(self) -> Optional[float]:
        """Time of the next live entry, or ``None`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> NaiveScheduledEvent:
        """Remove and return the next live entry."""
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)


class NaiveTimeout(NaiveEvent):
    """Seed ``Timeout``: eager f-string name, ``(value,)`` args tuple."""

    __slots__ = ("delay", "_entry")

    def __init__(self, sim: "NaiveSimulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(name=f"timeout({delay})")
        self.delay = delay
        self._entry: NaiveScheduledEvent = sim._queue.push(
            sim.now + delay, self.succeed, (value,)
        )

    def cancel(self) -> None:
        """Cancel the pending timeout (no-op once fired)."""
        if not self.triggered:
            self._entry.cancel()


class NaiveProcess(NaiveEvent):
    """Seed ``Process`` against the naive queue/timeout types."""

    __slots__ = ("_sim", "_generator", "_waiting_on")

    def __init__(self, sim: "NaiveSimulator", generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                "process() expects a generator; did you forget to call "
                "the generator function?"
            )
        super().__init__(name=name or getattr(generator, "__name__", "process"))
        self._sim = sim
        self._generator = generator
        self._waiting_on: Optional[NaiveEvent] = None
        sim._queue.push(sim.now, self._resume, (None, None))

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process now."""
        from repro.sim.engine import Interrupt

        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self!r}")
        self._sim._queue.push(
            self._sim.now, self._resume, (None, Interrupt(cause)), priority=-1
        )

    def _wait_for(self, event: NaiveEvent) -> None:
        self._waiting_on = event
        event.add_callback(self._on_event)

    def _on_event(self, event: NaiveEvent) -> None:
        if self._waiting_on is not event:
            return
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        abandoned = self._waiting_on
        if isinstance(abandoned, NaiveTimeout) and not abandoned.triggered:
            abandoned.cancel()
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate to waiters
            self.fail(error)
            return
        if not isinstance(target, NaiveEvent):
            self._generator.close()
            self.fail(
                TypeError(
                    f"process {self.name!r} yielded {target!r}; processes "
                    "must yield Event instances"
                )
            )
            return
        self._wait_for(target)


class NaiveSimulator:
    """Seed ``Simulator``: peek-then-pop run loop, method-call steps."""

    def __init__(self) -> None:
        self._queue = NaiveEventQueue()
        self._now = 0.0
        self._step_count = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def steps(self) -> int:
        return self._step_count

    def timeout(self, delay: float, value: Any = None) -> NaiveTimeout:
        """Event firing ``delay`` ms from now."""
        return NaiveTimeout(self, delay, value)

    def event(self, name: str = "") -> NaiveEvent:
        """A bare event for manual triggering."""
        return NaiveEvent(name=name)

    def process(self, generator, name: str = "") -> NaiveProcess:
        """Spawn a process from ``generator``."""
        return NaiveProcess(self, generator, name=name)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> NaiveScheduledEvent:
        """Run ``callback(*args)`` after ``delay`` ms."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self._queue.push(self._now + delay, callback, args, priority)

    def step(self) -> None:
        """Execute the next queue entry, advancing the clock."""
        entry = self._queue.pop()
        if entry.time < self._now:
            raise RuntimeError(
                f"event queue went backwards: {entry.time} < {self._now}"
            )
        self._now = entry.time
        self._step_count += 1
        entry.callback(*entry.args)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now
