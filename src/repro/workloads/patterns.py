"""Request flow patterns of the evaluation (Section V-D, Figs 12-14).

Each pattern yields ``(time_ms, request_count)`` rounds:

* :class:`SerialPattern` — a single-thread client, one request every 30 s
  (Fig 12a).
* :class:`ParallelPattern` — ten client threads issuing together, each
  with its own runtime configuration (Fig 12b).
* :class:`LinearPattern` — +2 or −2 requests per 30 s round (Fig 13).
* :class:`ExponentialPattern` — 2^i requests at round i, rising or
  falling (Fig 14a).
* :class:`BurstPattern` — a base rate with 10x bursts at chosen rounds
  (Fig 14b).
* :class:`PoissonPattern` — memoryless background traffic (ablations).
* :class:`TracePattern` — replay of a recorded/synthetic trace (Fig 11).
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BurstPattern",
    "ExponentialPattern",
    "LinearPattern",
    "MarkovModulatedPattern",
    "ParallelPattern",
    "PoissonPattern",
    "RequestPattern",
    "SerialPattern",
    "SinusoidalPattern",
    "TracePattern",
]

#: The paper's inter-round spacing: clients act "every 30 seconds".
DEFAULT_ROUND_MS = 30_000.0


class RequestPattern(abc.ABC):
    """A deterministic schedule of request rounds."""

    @abc.abstractmethod
    def rounds(self) -> Iterator[Tuple[float, int]]:
        """Yield ``(time_ms, request_count)`` in increasing time order."""

    def request_times(self) -> np.ndarray:
        """Flattened per-request times (simultaneous within a round)."""
        times: List[float] = []
        for time, count in self.rounds():
            times.extend([time] * count)
        return np.array(times, dtype=float)

    @property
    def total_requests(self) -> int:
        """Total number of requests the pattern produces."""
        return sum(count for _, count in self.rounds())

    def _validate_round(self, value: float, name: str) -> None:
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


class SerialPattern(RequestPattern):
    """One request per round (Fig 12a)."""

    def __init__(self, n_rounds: int = 20, round_ms: float = DEFAULT_ROUND_MS) -> None:
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        self._validate_round(round_ms, "round_ms")
        self.n_rounds = n_rounds
        self.round_ms = round_ms

    def rounds(self) -> Iterator[Tuple[float, int]]:
        for index in range(self.n_rounds):
            yield index * self.round_ms, 1


class ParallelPattern(RequestPattern):
    """``n_threads`` simultaneous requests per round (Fig 12b)."""

    def __init__(
        self,
        n_threads: int = 10,
        n_rounds: int = 20,
        round_ms: float = DEFAULT_ROUND_MS,
    ) -> None:
        if n_threads < 1 or n_rounds < 1:
            raise ValueError("n_threads and n_rounds must be >= 1")
        self._validate_round(round_ms, "round_ms")
        self.n_threads = n_threads
        self.n_rounds = n_rounds
        self.round_ms = round_ms

    def rounds(self) -> Iterator[Tuple[float, int]]:
        for index in range(self.n_rounds):
            yield index * self.round_ms, self.n_threads


class LinearPattern(RequestPattern):
    """Linearly increasing or decreasing request counts (Fig 13).

    Increasing: starts at ``start`` and adds ``step`` each round.
    Decreasing: pass a negative ``step``; the pattern stops before the
    count would drop below 1 (the paper reduces by two per round).
    """

    def __init__(
        self,
        start: int = 2,
        step: int = 2,
        n_rounds: int = 10,
        round_ms: float = DEFAULT_ROUND_MS,
    ) -> None:
        if start < 1:
            raise ValueError("start must be >= 1")
        if step == 0:
            raise ValueError("step must be non-zero (use SerialPattern)")
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        self._validate_round(round_ms, "round_ms")
        self.start = start
        self.step = step
        self.n_rounds = n_rounds
        self.round_ms = round_ms

    def rounds(self) -> Iterator[Tuple[float, int]]:
        count = self.start
        for index in range(self.n_rounds):
            if count < 1:
                return
            yield index * self.round_ms, count
            count += self.step


class ExponentialPattern(RequestPattern):
    """2^i requests at round i, rising or falling (Fig 14a)."""

    def __init__(
        self,
        n_rounds: int = 6,
        round_ms: float = DEFAULT_ROUND_MS,
        decreasing: bool = False,
        base: int = 2,
    ) -> None:
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if base < 2:
            raise ValueError("base must be >= 2")
        self._validate_round(round_ms, "round_ms")
        self.n_rounds = n_rounds
        self.round_ms = round_ms
        self.decreasing = decreasing
        self.base = base

    def rounds(self) -> Iterator[Tuple[float, int]]:
        for index in range(self.n_rounds):
            exponent = (self.n_rounds - 1 - index) if self.decreasing else index
            yield index * self.round_ms, self.base**exponent


class BurstPattern(RequestPattern):
    """A steady base rate with multiplicative bursts (Fig 14b).

    The paper: eight requests per round, increased 10x at the 4th, 8th,
    12th and 16th rounds.
    """

    def __init__(
        self,
        base_requests: int = 8,
        n_rounds: int = 20,
        burst_rounds: Sequence[int] = (4, 8, 12, 16),
        burst_factor: int = 10,
        round_ms: float = DEFAULT_ROUND_MS,
    ) -> None:
        if base_requests < 1 or n_rounds < 1 or burst_factor < 1:
            raise ValueError("counts and factors must be >= 1")
        self._validate_round(round_ms, "round_ms")
        if any(not 0 <= r < n_rounds for r in burst_rounds):
            raise ValueError("burst_rounds must lie within [0, n_rounds)")
        self.base_requests = base_requests
        self.n_rounds = n_rounds
        self.burst_rounds = frozenset(burst_rounds)
        self.burst_factor = burst_factor
        self.round_ms = round_ms

    def rounds(self) -> Iterator[Tuple[float, int]]:
        for index in range(self.n_rounds):
            count = self.base_requests
            if index in self.burst_rounds:
                count *= self.burst_factor
            yield index * self.round_ms, count


class PoissonPattern(RequestPattern):
    """Poisson arrivals at ``rate_per_s`` over ``duration_ms``.

    Unlike the round-based patterns, every request gets its own arrival
    instant.  A seeded generator keeps the schedule reproducible.
    """

    def __init__(
        self,
        rate_per_s: float,
        duration_ms: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        self._validate_round(duration_ms, "duration_ms")
        self.rate_per_s = rate_per_s
        self.duration_ms = duration_ms
        rng = rng or np.random.default_rng(0)
        # Draw all arrivals up front so the schedule is fixed at build
        # time (repeated iteration must not re-randomise).
        expected = rate_per_s * duration_ms / 1_000.0
        n_draws = max(16, int(expected * 3))
        gaps = rng.exponential(1_000.0 / rate_per_s, size=n_draws)
        arrivals = np.cumsum(gaps)
        while arrivals[-1] < duration_ms:  # pragma: no cover - rare tail
            more = rng.exponential(1_000.0 / rate_per_s, size=n_draws)
            arrivals = np.concatenate([arrivals, arrivals[-1] + np.cumsum(more)])
        self._times = arrivals[arrivals < duration_ms]

    def rounds(self) -> Iterator[Tuple[float, int]]:
        for time in self._times:
            yield float(time), 1


class SinusoidalPattern(RequestPattern):
    """A diurnal-style sinusoidal load (Fig 11's smooth component).

    Request count per slot follows
    ``base + amplitude * sin(2*pi*t/period)``, floored at zero.
    """

    def __init__(
        self,
        base: float = 10.0,
        amplitude: float = 8.0,
        period_slots: int = 24,
        n_slots: int = 48,
        slot_ms: float = 1_000.0,
    ) -> None:
        if base < 0 or amplitude < 0:
            raise ValueError("base and amplitude must be >= 0")
        if period_slots < 2 or n_slots < 1:
            raise ValueError("period_slots must be >= 2 and n_slots >= 1")
        self._validate_round(slot_ms, "slot_ms")
        self.base = base
        self.amplitude = amplitude
        self.period_slots = period_slots
        self.n_slots = n_slots
        self.slot_ms = slot_ms

    def rounds(self) -> Iterator[Tuple[float, int]]:
        for slot in range(self.n_slots):
            level = self.base + self.amplitude * np.sin(
                2.0 * np.pi * slot / self.period_slots
            )
            count = max(0, int(round(level)))
            if count > 0:
                yield slot * self.slot_ms, count


class MarkovModulatedPattern(RequestPattern):
    """A two-state Markov-modulated arrival process (bursty ON/OFF load).

    Each slot the source is either ON (``high`` requests) or OFF
    (``low`` requests); the state flips with the given transition
    probabilities.  This is the volatile-but-structured load the
    paper's Markov correction is designed for; the state sequence is
    drawn once at construction so iteration is deterministic.
    """

    def __init__(
        self,
        low: int = 2,
        high: int = 20,
        p_on: float = 0.2,
        p_off: float = 0.3,
        n_slots: int = 40,
        slot_ms: float = 1_000.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        if not (0 < p_on <= 1 and 0 < p_off <= 1):
            raise ValueError("transition probabilities must be in (0, 1]")
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        self._validate_round(slot_ms, "slot_ms")
        self.low = low
        self.high = high
        self.slot_ms = slot_ms
        rng = rng or np.random.default_rng(0)
        state = 0  # start OFF
        states = np.empty(n_slots, dtype=int)
        for slot in range(n_slots):
            flip = rng.random()
            if state == 0 and flip < p_on:
                state = 1
            elif state == 1 and flip < p_off:
                state = 0
            states[slot] = state
        self._counts = np.where(states == 1, high, low)

    @property
    def on_fraction(self) -> float:
        """Share of slots spent in the ON state."""
        return float((self._counts == self.high).mean())

    def rounds(self) -> Iterator[Tuple[float, int]]:
        for slot, count in enumerate(self._counts):
            if count > 0:
                yield slot * self.slot_ms, int(count)


class TracePattern(RequestPattern):
    """Replay per-slot request counts (e.g. the Fig 11 campus trace).

    Parameters
    ----------
    counts:
        Requests per slot.
    slot_ms:
        Slot duration.
    scale:
        Multiplier on every count (rounded, floor 0) — lets a
        campus-scale trace be shrunk to simulator scale.
    """

    def __init__(self, counts, slot_ms: float = 1_000.0, scale: float = 1.0) -> None:
        self._validate_round(slot_ms, "slot_ms")
        if scale <= 0:
            raise ValueError("scale must be positive")
        array = np.asarray(counts, dtype=float)
        if array.ndim != 1 or array.size == 0:
            raise ValueError("counts must be a non-empty 1-D sequence")
        if np.any(array < 0):
            raise ValueError("counts must be >= 0")
        self.counts = np.maximum(0, np.round(array * scale)).astype(int)
        self.slot_ms = slot_ms

    def rounds(self) -> Iterator[Tuple[float, int]]:
        for index, count in enumerate(self.counts):
            if count > 0:
                yield index * self.slot_ms, int(count)
