"""Synthetic UMass-campus-style YouTube request trace (Fig 11).

The paper plots a day of YouTube requests measured at the UMass campus
gateway [4], [39] and extracts three representative features:

1. a **burst** from ~20 to ~300 requests at T710,
2. a steady **decline** through the afternoon, T800 → T1200,
3. a **night rise** from T1200 → T1400.

The real trace is not redistributable offline, so
:func:`youtube_campus_trace` synthesises a per-minute day (1440 slots)
with exactly those features plus seeded noise.  The Figs 12–14 request
patterns are the paper's abstractions of segments of this trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["UMassStyleTrace", "youtube_campus_trace"]

#: Feature anchor points (minute indices) named in the paper.
BURST_AT = 710
DECLINE_START = 800
DECLINE_END = 1200
RISE_END = 1400


@dataclass(frozen=True)
class UMassStyleTrace:
    """A day-long per-minute request-count series with named features."""

    counts: np.ndarray
    slot_ms: float = 60_000.0

    def __post_init__(self) -> None:
        if self.counts.ndim != 1:
            raise ValueError("trace counts must be 1-D")
        if np.any(self.counts < 0):
            raise ValueError("trace counts must be >= 0")

    def __len__(self) -> int:
        return int(self.counts.size)

    @property
    def duration_ms(self) -> float:
        """Total trace duration."""
        return len(self) * self.slot_ms

    def segment(self, start: int, end: int) -> np.ndarray:
        """Counts over ``[start, end)`` minute indices (a view)."""
        if not 0 <= start < end <= len(self):
            raise ValueError(f"bad segment [{start}, {end}) for length {len(self)}")
        return self.counts[start:end]

    # -- the three features the paper calls out -----------------------------
    def burst_magnitude(self) -> float:
        """Ratio of the T710 burst peak to the level just before it."""
        before = float(np.mean(self.segment(BURST_AT - 30, BURST_AT - 5)))
        peak = float(np.max(self.segment(BURST_AT - 5, BURST_AT + 15)))
        return peak / max(before, 1.0)

    def afternoon_slope(self) -> float:
        """Least-squares slope (requests/minute) over T800..T1200."""
        segment = self.segment(DECLINE_START, DECLINE_END)
        x = np.arange(segment.size, dtype=float)
        return float(np.polyfit(x, segment, 1)[0])

    def night_slope(self) -> float:
        """Least-squares slope over T1200..T1400."""
        segment = self.segment(DECLINE_END, RISE_END)
        x = np.arange(segment.size, dtype=float)
        return float(np.polyfit(x, segment, 1)[0])


def youtube_campus_trace(
    seed: int = 0,
    noise_level: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> UMassStyleTrace:
    """Build the synthetic day trace with the paper's three features.

    The deterministic skeleton (before noise):

    * early morning: low traffic around 20 req/min,
    * T710: sudden burst 20 → 300,
    * plateau decaying into the afternoon,
    * T800 → T1200: linear decline ~220 → 60,
    * T1200 → T1400: night rise 60 → 280,
    * tail: ease back down toward 150.
    """
    if noise_level < 0:
        raise ValueError("noise_level must be >= 0")
    rng = rng or np.random.default_rng(seed)
    minutes = 1440
    base = np.empty(minutes, dtype=float)

    # Early morning crawl with a gentle ramp: 15 -> 25.
    base[:BURST_AT] = np.linspace(15.0, 22.0, BURST_AT)
    # The T710 burst: near-instant jump to ~300, brief plateau.
    base[BURST_AT : BURST_AT + 10] = 300.0
    # Decay from the burst into the afternoon level.
    base[BURST_AT + 10 : DECLINE_START] = np.linspace(
        300.0, 220.0, DECLINE_START - BURST_AT - 10
    )
    # Afternoon decline: 220 -> 60 over T800..T1200.
    base[DECLINE_START:DECLINE_END] = np.linspace(
        220.0, 60.0, DECLINE_END - DECLINE_START
    )
    # Night rise: 60 -> 280 over T1200..T1400.
    base[DECLINE_END:RISE_END] = np.linspace(60.0, 280.0, RISE_END - DECLINE_END)
    # Tail of the day: ease down.
    base[RISE_END:] = np.linspace(280.0, 150.0, minutes - RISE_END)

    noisy = base * (1.0 + noise_level * rng.standard_normal(minutes))
    counts = np.maximum(0, np.round(noisy)).astype(int)
    return UMassStyleTrace(counts=counts)
