"""Production-trace workload generator: Zipf keys, diurnal load, bursts.

The figure patterns (:mod:`repro.workloads.patterns`) drive a handful of
functions through round-structured request flows.  Real serverless
fleets look different: thousands of runtime keys whose popularity is
Zipf-distributed, request rates that breathe with the day, flash crowds
that multiply a few keys' traffic for minutes, and tenants whose
function sets churn over hours.  :class:`TraceWorkload` synthesises
exactly that shape — deterministically from a single seed — and streams
it out in per-slot :class:`ArrivalBatch` chunks so a simulated day of a
million requests never needs to be materialised at once.

Every random draw comes from one ``numpy`` generator seeded via
:func:`repro.sim.rng.derive_seed`, in a fixed order, so two iterations
of the same workload (or the same workload in another process) are
byte-identical.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple

import numpy as np

from repro.sim.rng import derive_seed

__all__ = ["ArrivalBatch", "TraceConfig", "TraceWorkload"]


@dataclass(frozen=True)
class TraceConfig:
    """Shape parameters of one synthetic production trace.

    The expected request total over the whole trace is exactly
    ``total_requests``: per-slot intensities (diurnal × churn × flash)
    are normalised so the modulation shapes *when* and *where* traffic
    lands without changing the expected volume.  Actual per-slot counts
    are Poisson draws around the normalised means, so the realised
    total fluctuates by roughly ``sqrt(total_requests)``.
    """

    #: Number of distinct runtime keys (functions) in the fleet.
    n_keys: int = 1_000
    #: Tenants; key ``k`` belongs to tenant ``k * n_tenants // n_keys``
    #: (contiguous rank blocks, so tenant 0 owns the Zipf head).
    n_tenants: int = 10
    #: Trace length in simulated milliseconds (default: one day).
    duration_ms: float = 86_400_000.0
    #: Arrival-batch granularity; one :class:`ArrivalBatch` per slot.
    slot_ms: float = 60_000.0
    #: Expected number of requests over the whole trace.
    total_requests: float = 1_000_000.0
    #: Zipf exponent of key popularity (weight of rank r is r^-s).
    zipf_s: float = 1.1
    #: Diurnal modulation amplitude in [0, 1): rate swings between
    #: ``(1-a)`` and ``(1+a)`` times the base rate over one period.
    diurnal_amplitude: float = 0.4
    #: Diurnal period (default: one day).
    diurnal_period_ms: float = 86_400_000.0
    #: Phase offset as a fraction of the period.
    diurnal_phase: float = 0.25
    #: Number of flash-crowd windows placed uniformly over the trace.
    flash_crowds: int = 2
    #: Rate multiplier applied to the affected keys during a flash.
    flash_factor: float = 8.0
    #: Length of each flash-crowd window.
    flash_duration_ms: float = 600_000.0
    #: Keys hit by each flash crowd (drawn popularity-weighted).
    flash_keys: int = 5
    #: Fraction of keys inactive during any churn interval (each
    #: interval independently re-draws the inactive set).
    churn_fraction: float = 0.1
    #: How often the active-key set is re-drawn.
    churn_interval_ms: float = 3_600_000.0
    #: Root seed for every random draw.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        if not 1 <= self.n_tenants <= self.n_keys:
            raise ValueError("n_tenants must be in [1, n_keys]")
        if self.duration_ms <= 0 or self.slot_ms <= 0:
            raise ValueError("duration_ms and slot_ms must be > 0")
        if self.total_requests <= 0:
            raise ValueError("total_requests must be > 0")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period_ms <= 0:
            raise ValueError("diurnal_period_ms must be > 0")
        if self.flash_crowds < 0 or self.flash_keys < 0:
            raise ValueError("flash_crowds and flash_keys must be >= 0")
        if self.flash_factor < 1.0:
            raise ValueError("flash_factor must be >= 1")
        if self.flash_duration_ms <= 0:
            raise ValueError("flash_duration_ms must be > 0")
        if not 0.0 <= self.churn_fraction < 1.0:
            raise ValueError("churn_fraction must be in [0, 1)")
        if self.churn_interval_ms <= 0:
            raise ValueError("churn_interval_ms must be > 0")

    @property
    def n_slots(self) -> int:
        """Number of arrival slots in the trace."""
        return int(math.ceil(self.duration_ms / self.slot_ms))

    def with_seed(self, seed: int) -> "TraceConfig":
        """A copy of this config under a different seed."""
        return replace(self, seed=int(seed))


@dataclass(frozen=True)
class ArrivalBatch:
    """All arrivals of one slot, sorted by arrival offset.

    ``offsets_ms[i]`` is request ``i``'s arrival relative to
    ``start_ms``; ``key_ids[i]`` is its runtime key.
    """

    slot_index: int
    start_ms: float
    offsets_ms: np.ndarray
    key_ids: np.ndarray

    @property
    def size(self) -> int:
        """Number of arrivals in the slot."""
        return int(self.key_ids.size)


class TraceWorkload:
    """Deterministic arrival-stream view of a :class:`TraceConfig`.

    Iterating :meth:`batches` re-derives the stream from the seed each
    time, so the workload object itself holds no per-request state and
    repeated iterations are identical.
    """

    def __init__(self, config: TraceConfig) -> None:
        self.config = config
        ranks = np.arange(1, config.n_keys + 1, dtype=float)
        #: Static popularity weight per key (rank 0 most popular).
        self.weights = ranks ** -config.zipf_s
        self._weight_sum = float(self.weights.sum())

    # -- static structure ----------------------------------------------------
    def tenant_of(self, key_id: int) -> int:
        """Tenant owning ``key_id`` (contiguous popularity-rank blocks)."""
        config = self.config
        return int(key_id) * config.n_tenants // config.n_keys

    def tenant_ids(self) -> np.ndarray:
        """Tenant of every key, as an index-by-key array."""
        config = self.config
        keys = np.arange(config.n_keys, dtype=np.int64)
        return keys * config.n_tenants // config.n_keys

    def diurnal_factor(self, t_ms: float) -> float:
        """Rate multiplier at time ``t_ms`` (mean 1 over one period)."""
        config = self.config
        angle = 2.0 * math.pi * (
            t_ms / config.diurnal_period_ms + config.diurnal_phase
        )
        return 1.0 + config.diurnal_amplitude * math.sin(angle)

    # -- random structure (drawn once per iteration, fixed order) ------------
    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(derive_seed(self.config.seed, "tracegen"))

    def _draw_structure(self, rng: np.random.Generator):
        """Flash windows and churn masks, in a fixed draw order."""
        config = self.config
        flashes: List[Tuple[float, float, np.ndarray]] = []
        probabilities = self.weights / self._weight_sum
        for _ in range(config.flash_crowds):
            latest = max(config.duration_ms - config.flash_duration_ms, 0.0)
            start = float(rng.uniform(0.0, latest)) if latest > 0 else 0.0
            n_hit = min(config.flash_keys, config.n_keys)
            hit = rng.choice(
                config.n_keys, size=n_hit, replace=False, p=probabilities
            )
            flashes.append((start, start + config.flash_duration_ms, hit))
        n_intervals = int(math.ceil(config.duration_ms / config.churn_interval_ms))
        if config.churn_fraction > 0:
            masks = rng.random((n_intervals, config.n_keys)) >= config.churn_fraction
            # The head key is always live so the trace never goes silent.
            masks[:, 0] = True
        else:
            masks = np.ones((n_intervals, config.n_keys), dtype=bool)
        return flashes, masks

    def active_mask(self, t_ms: float) -> np.ndarray:
        """The churn-active key mask in force at ``t_ms``."""
        rng = self._rng()
        _, masks = self._draw_structure(rng)
        index = min(
            int(t_ms // self.config.churn_interval_ms), masks.shape[0] - 1
        )
        return masks[index]

    def flash_windows(self) -> Tuple[Tuple[float, float, np.ndarray], ...]:
        """The ``(start_ms, end_ms, key_ids)`` flash-crowd windows."""
        rng = self._rng()
        flashes, _ = self._draw_structure(rng)
        return tuple(flashes)

    # -- the arrival stream ---------------------------------------------------
    def _slot_intensities(self, flashes, masks) -> np.ndarray:
        """Unnormalised expected-arrival intensity of every slot.

        Computed in O(1) per slot from per-churn-interval masked weight
        sums plus per-flash corrections, so the normalisation pass costs
        nothing even for very large key spaces.  Purely deterministic —
        consumes no random draws.
        """
        config = self.config
        masked_sums = (self.weights[None, :] * masks).sum(axis=1)
        intensities = np.empty(config.n_slots, dtype=float)
        for slot in range(config.n_slots):
            start = slot * config.slot_ms
            slot_len = min(config.slot_ms, config.duration_ms - start)
            mid = start + slot_len / 2.0
            interval = min(
                int(start // config.churn_interval_ms), masks.shape[0] - 1
            )
            effective_sum = float(masked_sums[interval])
            for flash_start, flash_end, hit in flashes:
                if flash_start <= mid < flash_end:
                    effective_sum += (config.flash_factor - 1.0) * float(
                        (self.weights[hit] * masks[interval][hit]).sum()
                    )
            intensities[slot] = (
                (slot_len / config.slot_ms)
                * self.diurnal_factor(mid)
                * effective_sum
            )
        return intensities

    def batches(self) -> Iterator[ArrivalBatch]:
        """Yield every slot's arrivals, in slot order.

        Each call restarts the stream from the seed; the sequence of
        random draws is fixed (structure first, then one Poisson /
        multinomial / offset draw per slot), so repeated iteration is
        byte-identical.  Slot means are normalised so the expected total
        over the trace is exactly ``config.total_requests``.
        """
        config = self.config
        rng = self._rng()
        flashes, masks = self._draw_structure(rng)
        intensities = self._slot_intensities(flashes, masks)
        intensity_sum = float(intensities.sum())
        norm = config.total_requests / intensity_sum if intensity_sum > 0 else 0.0
        keys = np.arange(config.n_keys, dtype=np.int64)
        empty_offsets = np.empty(0, dtype=float)
        empty_keys = np.empty(0, dtype=np.int64)
        for slot in range(config.n_slots):
            start = slot * config.slot_ms
            slot_len = min(config.slot_ms, config.duration_ms - start)
            mid = start + slot_len / 2.0
            interval = min(
                int(start // config.churn_interval_ms), masks.shape[0] - 1
            )
            effective = self.weights * masks[interval]
            for flash_start, flash_end, hit in flashes:
                if flash_start <= mid < flash_end:
                    effective = effective.copy()
                    effective[hit] *= config.flash_factor
            effective_sum = float(effective.sum())
            mean = norm * float(intensities[slot])
            count = int(rng.poisson(mean)) if mean > 0 else 0
            if count == 0:
                yield ArrivalBatch(slot, start, empty_offsets, empty_keys)
                continue
            per_key = rng.multinomial(count, effective / effective_sum)
            key_ids = np.repeat(keys, per_key)
            rng.shuffle(key_ids)
            offsets = np.sort(rng.random(count)) * slot_len
            yield ArrivalBatch(slot, start, offsets, key_ids)

    # -- whole-trace statistics (for property tests and reports) -------------
    def key_counts(self) -> np.ndarray:
        """Total requests per key over the whole trace (one pass)."""
        counts = np.zeros(self.config.n_keys, dtype=np.int64)
        for batch in self.batches():
            if batch.size:
                counts += np.bincount(batch.key_ids, minlength=self.config.n_keys)
        return counts

    def slot_counts(self) -> np.ndarray:
        """Total requests per slot over the whole trace (one pass)."""
        return np.array([batch.size for batch in self.batches()], dtype=np.int64)

    def head_share(self, head_fraction: float = 0.01) -> float:
        """Traffic share of the most-popular ``head_fraction`` of keys."""
        if not 0.0 < head_fraction <= 1.0:
            raise ValueError("head_fraction must be in (0, 1]")
        counts = self.key_counts()
        total = counts.sum()
        if total == 0:
            return float("nan")
        head = max(1, int(self.config.n_keys * head_fraction))
        return float(counts[:head].sum() / total)

    def schedule_digest(self) -> str:
        """SHA-256 over every batch's bytes — the determinism fingerprint."""
        digest = hashlib.sha256()
        for batch in self.batches():
            digest.update(np.int64(batch.slot_index).tobytes())
            digest.update(np.float64(batch.start_ms).tobytes())
            digest.update(np.ascontiguousarray(batch.offsets_ms).tobytes())
            digest.update(np.ascontiguousarray(batch.key_ids).tobytes())
        return digest.hexdigest()
