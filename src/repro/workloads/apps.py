"""The applications of the paper's evaluation, as function specs.

Each factory returns a :class:`~repro.faas.FunctionSpec` whose cost
profile is calibrated against the numbers the paper reports:

* ``v3_app`` / ``tf_api_app`` (Fig 8): image recognition; exec/app-init
  chosen so HotC's measured reduction lands at the paper's −33.2% /
  −23.9% on the server (and near −26.6% / −20.6% on the Pi).
* ``qr_encoder_app`` (Fig 9): URL → QR transformation ≈ 60 ms; the rest
  of a cold request is runtime setup.
* ``random_number_app`` (Figs 1, 5): a trivial handler, so cold start
  dominates completely.
* ``s3_download_app`` (Fig 4a/b): downloads a 3.3 MB PDF and processes
  it; per-language exec times reproduce the cold/hot ratios (Go 3.06x,
  Java cold ≈ 2x an already ~1.1 s hot run).
* ``cassandra_app`` (Fig 15b): a heavyweight JVM database.

Every app carries a small *real* payload so the execution path does
actual work, not just simulated time.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.containers.image import WELL_KNOWN_BASES, make_base_image
from repro.containers.network import NetworkConfig
from repro.containers.registry import Registry
from repro.faas.function import FunctionSpec

__all__ = [
    "AppCatalog",
    "cassandra_app",
    "default_catalog",
    "qr_encoder_app",
    "random_number_app",
    "s3_download_app",
    "tf_api_app",
    "v3_app",
]


# --------------------------------------------------------------------------
# Real payloads (small, deterministic computations).
# --------------------------------------------------------------------------

def _lcg_payload(seed: int) -> Callable[[], int]:
    """A random-number generator handler (Fig 1's Lambda backend)."""
    state = {"x": seed & 0x7FFFFFFF}

    def handler() -> int:
        state["x"] = (1103515245 * state["x"] + 12345) % (2**31)
        return state["x"]

    return handler


def encode_qr_matrix(url: str, size: int = 21) -> np.ndarray:
    """Deterministically encode ``url`` into a QR-like boolean matrix.

    Not a spec-compliant QR code, but a real data→matrix transformation:
    CRC-seeded bit spreading with the three canonical finder squares.
    """
    if size < 9:
        raise ValueError("QR matrix size must be >= 9")
    rng = np.random.default_rng(zlib.crc32(url.encode("utf-8")))
    matrix = rng.integers(0, 2, size=(size, size), dtype=np.uint8).astype(bool)
    for row, col in ((0, 0), (0, size - 7), (size - 7, 0)):
        block = matrix[row : row + 7, col : col + 7]
        block[:] = True
        block[1:6, 1:6] = False
        block[2:5, 2:5] = True
    return matrix


def _qr_payload(url: str) -> Callable[[], np.ndarray]:
    def handler() -> np.ndarray:
        return encode_qr_matrix(url)

    return handler


def _inference_payload(seed: int, classes: int = 1000) -> Callable[[], int]:
    """A toy "image classification": project a feature vector through a
    fixed random weight matrix and take the argmax class."""
    rng = np.random.default_rng(seed)
    weights = rng.standard_normal((64, classes)).astype(np.float32)

    def handler() -> int:
        features = rng.standard_normal(64).astype(np.float32)
        logits = features @ weights
        return int(np.argmax(logits))

    return handler


def _checksum_payload(size_bytes: int, seed: int = 7) -> Callable[[], int]:
    """Checksum a synthetic downloaded file (the Fig 4 S3 benchmark)."""
    blob = np.random.default_rng(seed).integers(
        0, 256, size=min(size_bytes, 65536), dtype=np.uint8
    ).tobytes()

    def handler() -> int:
        return zlib.crc32(blob)

    return handler


def _kv_store_payload() -> Callable[[], int]:
    """A tiny key-value workload standing in for Cassandra queries."""
    store: Dict[int, int] = {}
    counter = {"n": 0}

    def handler() -> int:
        base = counter["n"]
        for index in range(100):
            store[(base + index) % 1000] = index
        counter["n"] += 100
        return len(store)

    return handler


# --------------------------------------------------------------------------
# App factories (costs in reference-server milliseconds).
# --------------------------------------------------------------------------

def random_number_app(name: str = "random-number") -> FunctionSpec:
    """Fig 1 / Fig 5: a Python backend generating a random number."""
    return FunctionSpec(
        name=name,
        image="python:3.6",
        language="python",
        exec_ms=1.2,
        cpu_millicores=128,
        mem_mb=128,
        payload=_lcg_payload(seed=zlib.crc32(name.encode())),
    )


def qr_encoder_app(
    name: str = "qr-encoder",
    language: str = "python",
    url: str = "https://example.org/paper",
    network: Optional[NetworkConfig] = None,
) -> FunctionSpec:
    """Fig 9: URL → QR code web service (~60 ms of real transformation).

    The paper deploys variants in several languages behind NAT.
    """
    images = {
        "python": "python:3.6",
        "go": "golang:1.11",
        "node": "node:10",
        "java": "openjdk:8",
    }
    if language not in images:
        raise ValueError(f"no QR app variant for language {language!r}")
    return FunctionSpec(
        name=name,
        image=images[language],
        language=language,
        exec_ms=60.0,
        network=network or NetworkConfig(mode="nat"),
        cpu_millicores=200,
        mem_mb=160,
        payload=_qr_payload(url),
    )


def v3_app(name: str = "v3-app", network: Optional[NetworkConfig] = None) -> FunctionSpec:
    """Fig 8: inception-v3 image recognition in Python (1000 classes).

    ``app_init_ms`` is the model load; calibrated so HotC reduces the
    total server-side time by ~33.2% (Fig 8a).
    """
    return FunctionSpec(
        name=name,
        image="tensorflow/tensorflow:1.13",
        language="python",
        exec_ms=2585.0,
        app_init_ms=760.0,
        network=network or NetworkConfig(mode="bridge"),
        cpu_millicores=1000,
        mem_mb=900,
        payload=_inference_payload(seed=3, classes=1000),
    )


def tf_api_app(name: str = "tf-api-app", network: Optional[NetworkConfig] = None) -> FunctionSpec:
    """Fig 8: Go image recognition through the Tensorflow C APIs.

    Calibrated for the −23.9% server-side reduction (Fig 8a).
    """
    return FunctionSpec(
        name=name,
        image="golang:1.11",
        language="go",
        exec_ms=2730.0,
        app_init_ms=540.0,
        network=network or NetworkConfig(mode="bridge"),
        cpu_millicores=1000,
        mem_mb=700,
        payload=_inference_payload(seed=4, classes=1000),
    )


#: Per-language exec times (ms) of the 3.3 MB S3 download benchmark,
#: chosen so the Fig 4a/b cold/hot ratios come out: Go 3.06x, Java ~2x
#: with a ~1.1 s hot run, Python/Node in between.
_S3_EXEC_MS: Dict[str, float] = {
    "go": 117.5,
    "python": 310.0,
    "java": 1005.0,
    "node": 280.0,
}

_S3_IMAGES: Dict[str, str] = {
    "go": "golang:1.11",
    "python": "python:3.6",
    "java": "openjdk:8",
    "node": "node:10",
}


def s3_download_app(language: str = "go", name: Optional[str] = None) -> FunctionSpec:
    """Fig 4a/b: download a 3.3 MB PDF from S3 and process it."""
    if language not in _S3_EXEC_MS:
        known = ", ".join(sorted(_S3_EXEC_MS))
        raise ValueError(f"no S3 benchmark for {language!r}; known: {known}")
    return FunctionSpec(
        name=name or f"s3-download-{language}",
        image=_S3_IMAGES[language],
        language=language,
        exec_ms=_S3_EXEC_MS[language],
        write_mb=3.3,
        cpu_millicores=250,
        mem_mb=192,
        payload=_checksum_payload(size_bytes=3_300_000),
    )


def cassandra_app(name: str = "cassandra") -> FunctionSpec:
    """Fig 15b: a Cassandra database — "a heavy workload that executes
    the database on the Java virtual machine".

    Costs sum to ~7 s of in-container time (JVM boot ~0.95 s + schema /
    cache warm-up 3.5 s + ~2.4 s of request serving) so the Fig 15b
    timeline matches the paper's start-at-6 s / stop-at-13 s window.
    """
    return FunctionSpec(
        name=name,
        image="cassandra:3.11",
        language="java",
        exec_ms=2_400.0,
        app_init_ms=3_500.0,
        cpu_millicores=2000,
        mem_mb=2048,
        payload=_kv_store_payload(),
    )


# --------------------------------------------------------------------------
# Catalog
# --------------------------------------------------------------------------

@dataclass
class AppCatalog:
    """Named collection of function specs plus the images they need."""

    specs: Dict[str, FunctionSpec] = field(default_factory=dict)

    def add(self, spec: FunctionSpec) -> "AppCatalog":
        """Register a spec under its function name."""
        if spec.name in self.specs:
            raise ValueError(f"app {spec.name!r} already in catalog")
        self.specs[spec.name] = spec
        return self

    def get(self, name: str) -> FunctionSpec:
        """Look up a spec."""
        try:
            return self.specs[name]
        except KeyError:
            known = ", ".join(sorted(self.specs))
            raise KeyError(f"unknown app {name!r}; known: {known}") from None

    def names(self) -> Tuple[str, ...]:
        """All registered app names, sorted."""
        return tuple(sorted(self.specs))

    def required_images(self) -> Tuple[str, ...]:
        """Image references the catalog's apps run on."""
        return tuple(sorted({spec.image for spec in self.specs.values()}))

    def make_registry(self) -> Registry:
        """A registry pre-loaded with the well-known base images."""
        registry = Registry(WELL_KNOWN_BASES)
        for reference in self.required_images():
            if reference not in registry:
                name, _, tag = reference.partition(":")
                registry.push(make_base_image(name, tag or "latest"))
        return registry

    def deploy_all(self, platform) -> None:
        """Deploy every app onto a platform."""
        for name in self.names():
            platform.deploy(self.specs[name])


def default_catalog() -> AppCatalog:
    """The full evaluation catalog used by the experiments."""
    catalog = AppCatalog()
    catalog.add(random_number_app())
    catalog.add(qr_encoder_app())
    catalog.add(v3_app())
    catalog.add(tf_api_app())
    catalog.add(cassandra_app())
    for language in sorted(_S3_EXEC_MS):
        catalog.add(s3_download_app(language))
    return catalog
