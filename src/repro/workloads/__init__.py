"""Workloads: application catalog, request patterns and traces.

- :mod:`repro.workloads.apps` — the applications of the evaluation
  (image recognition, QR web service, random-number Lambda, Cassandra,
  S3 download) as :class:`~repro.faas.FunctionSpec` factories with
  calibrated cost profiles and small *real* computations.
- :mod:`repro.workloads.patterns` — the request flows of Section V-D:
  serial, parallel, linear/exponential increase and decrease, bursts,
  and Poisson background traffic.
- :mod:`repro.workloads.traces` — a synthetic UMass-campus-style
  diurnal trace with the three features the paper extracts (Fig 11).
- :mod:`repro.workloads.generator` — turns a pattern into scheduled
  platform invocations.
"""

from repro.workloads.apps import (
    AppCatalog,
    cassandra_app,
    default_catalog,
    qr_encoder_app,
    random_number_app,
    s3_download_app,
    tf_api_app,
    v3_app,
)
from repro.workloads.patterns import (
    BurstPattern,
    MarkovModulatedPattern,
    SinusoidalPattern,
    ExponentialPattern,
    LinearPattern,
    ParallelPattern,
    PoissonPattern,
    RequestPattern,
    SerialPattern,
    TracePattern,
)
from repro.workloads.traces import UMassStyleTrace, youtube_campus_trace
from repro.workloads.generator import WorkloadGenerator, WorkloadResult

__all__ = [
    "AppCatalog",
    "BurstPattern",
    "ExponentialPattern",
    "LinearPattern",
    "MarkovModulatedPattern",
    "ParallelPattern",
    "PoissonPattern",
    "RequestPattern",
    "SerialPattern",
    "SinusoidalPattern",
    "TracePattern",
    "UMassStyleTrace",
    "WorkloadGenerator",
    "WorkloadResult",
    "cassandra_app",
    "default_catalog",
    "qr_encoder_app",
    "random_number_app",
    "s3_download_app",
    "tf_api_app",
    "v3_app",
    "youtube_campus_trace",
]
