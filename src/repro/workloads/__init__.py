"""Workloads: application catalog, request patterns and traces.

- :mod:`repro.workloads.apps` — the applications of the evaluation
  (image recognition, QR web service, random-number Lambda, Cassandra,
  S3 download) as :class:`~repro.faas.FunctionSpec` factories with
  calibrated cost profiles and small *real* computations.
- :mod:`repro.workloads.patterns` — the request flows of Section V-D:
  serial, parallel, linear/exponential increase and decrease, bursts,
  and Poisson background traffic.
- :mod:`repro.workloads.traces` — a synthetic UMass-campus-style
  diurnal trace with the three features the paper extracts (Fig 11).
- :mod:`repro.workloads.generator` — turns a pattern into scheduled
  platform invocations.
- :mod:`repro.workloads.tracegen` — planet-scale synthetic production
  traces (Zipf keys, diurnal cycles, flash crowds, tenant churn) for
  the scenario runner.
"""

from repro.workloads.apps import (
    AppCatalog,
    cassandra_app,
    default_catalog,
    qr_encoder_app,
    random_number_app,
    s3_download_app,
    tf_api_app,
    v3_app,
)
from repro.workloads.patterns import (
    BurstPattern,
    MarkovModulatedPattern,
    SinusoidalPattern,
    ExponentialPattern,
    LinearPattern,
    ParallelPattern,
    PoissonPattern,
    RequestPattern,
    SerialPattern,
    TracePattern,
)
from repro.workloads.traces import UMassStyleTrace, youtube_campus_trace
from repro.workloads.generator import WorkloadGenerator, WorkloadResult
from repro.workloads.tracegen import ArrivalBatch, TraceConfig, TraceWorkload

__all__ = [
    "AppCatalog",
    "ArrivalBatch",
    "BurstPattern",
    "ExponentialPattern",
    "LinearPattern",
    "MarkovModulatedPattern",
    "ParallelPattern",
    "PoissonPattern",
    "RequestPattern",
    "SerialPattern",
    "SinusoidalPattern",
    "TraceConfig",
    "TracePattern",
    "TraceWorkload",
    "UMassStyleTrace",
    "WorkloadGenerator",
    "WorkloadResult",
    "cassandra_app",
    "default_catalog",
    "qr_encoder_app",
    "random_number_app",
    "s3_download_app",
    "tf_api_app",
    "v3_app",
    "youtube_campus_trace",
]
