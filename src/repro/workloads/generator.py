"""Driving a platform with a request pattern.

:class:`WorkloadGenerator` schedules a pattern's requests as platform
invocations and collects the results grouped by round — the unit the
paper's latency-over-time figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.faas.tracing import RequestOutcome, RequestTrace
from repro.workloads.patterns import RequestPattern

__all__ = ["RoundResult", "WorkloadGenerator", "WorkloadResult"]

FunctionSelector = Union[str, Sequence[str], Callable[[int, int], str]]


@dataclass
class RoundResult:
    """Traces of every request issued in one round."""

    index: int
    time_ms: float
    traces: Tuple[RequestTrace, ...]

    @property
    def answered(self) -> Tuple[RequestTrace, ...]:
        """Traces that returned a real response (not FAILED)."""
        return tuple(
            t for t in self.traces if t.outcome is not RequestOutcome.FAILED
        )

    @property
    def latencies(self) -> np.ndarray:
        """End-to-end latencies of the round's answered requests.

        Failed requests carry error-path timings, so they are excluded
        here and counted separately by :attr:`failed_count`.
        """
        return np.array([t.total_latency for t in self.answered], dtype=float)

    @property
    def mean_latency(self) -> float:
        """Mean latency of answered requests (NaN for an empty round)."""
        values = self.latencies
        return float(values.mean()) if values.size else float("nan")

    @property
    def cold_count(self) -> int:
        """Cold starts in this round."""
        return sum(1 for t in self.traces if t.cold_start)

    @property
    def failed_count(self) -> int:
        """Requests of this round that exhausted their retries."""
        return sum(
            1 for t in self.traces if t.outcome is RequestOutcome.FAILED
        )


@dataclass
class WorkloadResult:
    """All rounds of one generated workload."""

    rounds: Tuple[RoundResult, ...]

    @property
    def all_traces(self) -> Tuple[RequestTrace, ...]:
        """Every trace in round order."""
        return tuple(t for r in self.rounds for t in r.traces)

    @property
    def total_requests(self) -> int:
        """Number of completed requests."""
        return len(self.all_traces)

    def latencies(self, include_failed: bool = False) -> np.ndarray:
        """Flat latency array across all rounds (answered requests only
        by default; ``include_failed=True`` keeps FAILED traces)."""
        traces = (
            self.all_traces
            if include_failed
            else tuple(t for r in self.rounds for t in r.answered)
        )
        return np.array([t.total_latency for t in traces], dtype=float)

    def mean_latency(self, include_failed: bool = False) -> float:
        """Mean end-to-end latency over the whole workload."""
        values = self.latencies(include_failed=include_failed)
        return float(values.mean()) if values.size else float("nan")

    def mean_latency_per_round(self) -> np.ndarray:
        """The series the Figs 12-14 plots show."""
        return np.array([r.mean_latency for r in self.rounds], dtype=float)

    def round_times(self) -> np.ndarray:
        """Round start times (ms)."""
        return np.array([r.time_ms for r in self.rounds], dtype=float)

    def cold_counts_per_round(self) -> np.ndarray:
        """Cold starts per round."""
        return np.array([r.cold_count for r in self.rounds], dtype=int)

    def total_cold(self) -> int:
        """Cold starts across the workload."""
        return int(self.cold_counts_per_round().sum())

    def failed_counts_per_round(self) -> np.ndarray:
        """Failed requests per round."""
        return np.array([r.failed_count for r in self.rounds], dtype=int)

    def total_failed(self) -> int:
        """Failed requests across the workload."""
        return int(self.failed_counts_per_round().sum())


class WorkloadGenerator:
    """Schedules a pattern against a platform and gathers results."""

    def __init__(self, platform) -> None:
        self.platform = platform

    def run(
        self,
        pattern: RequestPattern,
        function: FunctionSelector,
        run_until: Optional[float] = None,
    ) -> WorkloadResult:
        """Submit every round of ``pattern`` and run to completion.

        ``function`` selects the target per request:

        * a string — every request invokes that function;
        * a sequence — request ``j`` of each round uses
          ``function[j % len(function)]`` (the per-thread configs of the
          parallel experiment);
        * a callable ``(round_index, request_index) -> name``.

        When ``run_until`` is given, requests still in flight at that
        bound are missing from the result — callers that need a bounded
        run *and* a complete result (the adaptive pattern harness)
        should use :meth:`submit` / :meth:`collect` around their own
        run/drain sequence instead.
        """
        scheduled = self.submit(pattern, function)
        self.platform.run(until=run_until)
        return self.collect(scheduled)

    def submit(
        self, pattern: RequestPattern, function: FunctionSelector
    ) -> List[Tuple[int, float, List]]:
        """Schedule every round of ``pattern`` without running the sim.

        Returns the ``(round_index, start_ms, processes)`` schedule that
        :meth:`collect` consumes once the caller has driven the
        simulator to completion (possibly in several bounded runs).
        """
        selector = self._make_selector(function)
        offset = self.platform.sim.now
        scheduled: List[Tuple[int, float, List]] = []
        for round_index, (time_ms, count) in enumerate(pattern.rounds()):
            procs = []
            for request_index in range(count):
                name = selector(round_index, request_index)
                procs.append(self.platform.submit(name, delay=time_ms))
            scheduled.append((round_index, offset + time_ms, procs))
        return scheduled

    def collect(self, scheduled: List[Tuple[int, float, List]]) -> WorkloadResult:
        """Gather a :meth:`submit` schedule's traces into a result.

        Only triggered, successful processes contribute traces; callers
        wanting a completeness guarantee assert on the schedule first
        (see ``run_pattern_arm``'s drain assertion).
        """
        rounds = []
        for round_index, time_ms, procs in scheduled:
            traces = tuple(
                p.value for p in procs if p.triggered and p.ok and p.value is not None
            )
            rounds.append(
                RoundResult(index=round_index, time_ms=time_ms, traces=traces)
            )
        return WorkloadResult(rounds=tuple(rounds))

    @staticmethod
    def _make_selector(function: FunctionSelector) -> Callable[[int, int], str]:
        if isinstance(function, str):
            return lambda _round, _request: function
        if callable(function):
            return function
        names = list(function)
        if not names:
            raise ValueError("function list must be non-empty")
        return lambda _round, request: names[request % len(names)]
