"""The admission controller: bounded queues, deadlines, load shedding.

HotC's pool limits protect the *host*; this layer protects the
*request path*.  It sits in front of the gateway's proxy pipeline and
gives every function:

* a **concurrency limit** (AIMD-adaptive, see :mod:`repro.admission.aimd`)
  — requests beyond it wait in a **bounded FIFO queue**;
* a hard **queue-depth cap** — when the queue is full the request is
  *shed* with :class:`~repro.faas.tracing.RequestOutcome.SHED` (the
  429 of this platform) instead of parking forever;
* **deadline enforcement** — a queued request whose absolute deadline
  passes is woken, lazily removed from the queue, and terminated with
  ``DEADLINE`` so no client waits unboundedly;
* **brownout shedding** — while any registered host is browned out,
  standard-QoS requests are shed up front so warm containers (and
  critical traffic) survive the pressure.

Everything is plain simulation bookkeeping: grants are scheduled
through the simulator queue exactly like
:class:`repro.sim.engine.Resource` releases, so runs are deterministic,
and a platform with no controller attached takes zero extra simulation
events (the hook is one ``is None`` check, the same contract as the
observatory).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, Optional

from repro.admission.aimd import AIMDConfig, AIMDLimiter
from repro.faas.function import FunctionSpec
from repro.faas.tracing import RequestOutcome, RequestTrace
from repro.obs.events import EventKind
from repro.sim.engine import AnyOf

__all__ = ["AdmissionConfig", "AdmissionController", "AdmissionStats"]

_INF = math.inf

#: Shed reasons stamped on traces and counted per reason.
REASON_QUEUE_FULL = "queue_full"
REASON_BROWNOUT = "brownout"
REASON_SHUTDOWN = "shutdown"


@dataclass(frozen=True)
class AdmissionConfig:
    """Tunables of the overload-protection layer."""

    #: Hard cap on queued (not yet admitted) requests per function.
    max_queue_depth: int = 64
    #: Per-function AIMD concurrency controller settings.
    aimd: AIMDConfig = field(default_factory=AIMDConfig)
    #: Relative deadline applied when the function spec does not set
    #: one; ``None`` leaves such requests deadline-free.
    default_deadline_ms: Optional[float] = 30_000.0
    #: Shed standard-QoS requests while any host is browned out.
    brownout_shed_standard: bool = True
    #: Brownout hysteresis: exit only below ``threshold - margin``.
    brownout_exit_margin: float = 0.05
    #: Factor applied to predictor pool targets while browned out.
    brownout_target_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be > 0 (or None)")
        if not 0.0 <= self.brownout_exit_margin < 1.0:
            raise ValueError("brownout_exit_margin must be in [0, 1)")
        if not 0.0 < self.brownout_target_factor <= 1.0:
            raise ValueError("brownout_target_factor must be in (0, 1]")


@dataclass
class AdmissionStats:
    """Global counters for one controller."""

    admitted: int = 0
    #: Subset of ``admitted`` that waited in the queue first.
    admitted_queued: int = 0
    #: Sheds by reason.
    shed: Dict[str, int] = field(default_factory=dict)
    #: Deadline misses while queued for admission.
    deadline_misses: int = 0
    #: Highest queue depth ever observed (across functions).
    queue_depth_peak: int = 0

    @property
    def shed_total(self) -> int:
        """All shed requests, every reason."""
        return sum(self.shed.values())

    def as_dict(self) -> Dict[str, object]:
        """Flat dict form for reports."""
        return {
            "admitted": self.admitted,
            "admitted_queued": self.admitted_queued,
            "shed": dict(sorted(self.shed.items())),
            "deadline_misses": self.deadline_misses,
            "queue_depth_peak": self.queue_depth_peak,
        }


class _Waiter:
    """One request parked in an admission queue."""

    __slots__ = ("event", "enqueued_at", "state", "reason")

    QUEUED = "queued"
    GRANTED = "granted"
    CANCELLED = "cancelled"
    SHED = "shed"

    def __init__(self, event, enqueued_at: float) -> None:
        self.event = event
        self.enqueued_at = enqueued_at
        self.state = _Waiter.QUEUED
        self.reason = ""


class _FunctionState:
    """Per-function limiter + bounded queue."""

    __slots__ = ("limiter", "inflight", "queue", "cancelled", "queue_depth_peak")

    def __init__(self, aimd: AIMDConfig) -> None:
        self.limiter = AIMDLimiter(aimd)
        self.inflight = 0
        self.queue: Deque[_Waiter] = deque()
        #: Lazily cancelled waiters still physically in ``queue``.
        self.cancelled = 0
        self.queue_depth_peak = 0

    @property
    def depth(self) -> int:
        """Live (non-cancelled) queued requests."""
        return len(self.queue) - self.cancelled


class AdmissionController:
    """Overload protection shared by every gateway of a platform.

    Attach through :meth:`repro.faas.platform.FaasPlatform.attach_admission`;
    the platform binds the simulator, wires every gateway, and hands the
    controller to the provider so HotC can drive brownout and the AIMD
    tick from its control loop.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config or AdmissionConfig()
        self.sim = None
        self.stats = AdmissionStats()
        self._states: Dict[str, _FunctionState] = {}
        #: Hosts currently browned out (by engine name).
        self._browned_out: set = set()
        self._shutdown = False
        self._last_tick = -_INF
        #: Optional observatory; ``None`` keeps every hook inert.
        self.obs = None

    # -- wiring -----------------------------------------------------------
    def bind(self, sim) -> None:
        """Bind the simulator (done by ``attach_admission``)."""
        self.sim = sim

    def set_brownout(self, host: str, active: bool) -> None:
        """A host entered/left brownout (driven by HotC's control tick)."""
        if active:
            self._browned_out.add(host)
        else:
            self._browned_out.discard(host)

    @property
    def brownout_active(self) -> bool:
        """Whether any registered host is currently browned out."""
        return bool(self._browned_out)

    @property
    def draining(self) -> bool:
        """Whether :meth:`begin_shutdown` has run."""
        return self._shutdown

    # -- introspection ----------------------------------------------------
    def _state_for(self, name: str) -> _FunctionState:
        state = self._states.get(name)
        if state is None:
            state = self._states[name] = _FunctionState(self.config.aimd)
        return state

    def limit(self, name: str) -> int:
        """Current effective concurrency limit of ``name``."""
        state = self._states.get(name)
        if state is None:
            return max(1, int(self.config.aimd.initial_limit))
        return state.limiter.effective

    def inflight(self, name: str) -> int:
        """Admitted, not yet released requests of ``name``."""
        state = self._states.get(name)
        return 0 if state is None else state.inflight

    def queue_depth(self, name: str) -> int:
        """Live queued requests of ``name``."""
        state = self._states.get(name)
        return 0 if state is None else state.depth

    def queue_depth_total(self) -> int:
        """Live queued requests across all functions."""
        return sum(state.depth for state in self._states.values())

    # -- the admission decision -------------------------------------------
    def admit(self, spec: FunctionSpec, trace: RequestTrace) -> Generator:
        """Process: decide this request's fate before the proxy pipeline.

        Returns ``True`` when the request may proceed to the watchdog;
        ``False`` when it was shed or blew its deadline — the trace then
        already carries the terminal outcome and the caller only sends
        the error response back to the client.
        """
        sim = self.sim
        now = sim.now
        trace.qos = spec.qos
        if trace.deadline == _INF:
            relative = (
                spec.deadline_ms
                if spec.deadline_ms is not None
                else self.config.default_deadline_ms
            )
            if relative is not None:
                trace.deadline = trace.t0_client_send + relative
        if self._shutdown:
            return self._reject(spec, trace, REASON_SHUTDOWN)
        if now >= trace.deadline:
            return self._deadline_miss(spec, trace)
        if (
            self._browned_out
            and self.config.brownout_shed_standard
            and spec.qos != "critical"
        ):
            return self._reject(spec, trace, REASON_BROWNOUT)
        state = self._state_for(spec.name)
        if state.inflight < state.limiter.effective and state.depth == 0:
            state.inflight += 1
            return self._admitted(spec, trace, queued=False)
        if state.depth >= self.config.max_queue_depth:
            state.limiter.record_shed()
            return self._reject(spec, trace, REASON_QUEUE_FULL)

        waiter = _Waiter(sim.event(name=("admit", spec.name)), now)
        state.queue.append(waiter)
        depth = state.depth
        if depth > state.queue_depth_peak:
            state.queue_depth_peak = depth
        if depth > self.stats.queue_depth_peak:
            self.stats.queue_depth_peak = depth

        if trace.deadline < _INF:
            deadline = sim.timeout(trace.deadline - now)
            index, _ = yield AnyOf([waiter.event, deadline])
            if index == 0:
                deadline.cancel()
        else:
            yield waiter.event
            index = 0
        trace.queue_ms += sim.now - waiter.enqueued_at

        if index == 1:  # the deadline fired while we waited
            if waiter.state == _Waiter.GRANTED:
                # The grant raced the deadline inside this instant: give
                # the slot straight back so accounting stays exact.
                state.inflight -= 1
                self._grant_next(state)
            elif waiter.state == _Waiter.QUEUED:
                # Lazy-cancel: the record stays in the deque and is
                # skipped (and dropped) by the next _grant_next sweep.
                waiter.state = _Waiter.CANCELLED
                state.cancelled += 1
            # A SHED waiter was already unlinked by begin_shutdown.
            state.limiter.record_miss()
            return self._deadline_miss(spec, trace)
        if waiter.state == _Waiter.SHED:
            return self._reject(spec, trace, waiter.reason)
        return self._admitted(spec, trace, queued=True)

    def release(self, spec: FunctionSpec, trace: RequestTrace, now: float) -> None:
        """An admitted request left the gateway: feed AIMD, grant next."""
        state = self._state_for(spec.name)
        state.inflight -= 1
        if now > trace.deadline or trace.outcome is RequestOutcome.DEADLINE:
            state.limiter.record_miss()
        elif trace.outcome in (RequestOutcome.SUCCESS, RequestOutcome.RETRIED):
            state.limiter.record_success()
        self._grant_next(state)

    def _grant_next(self, state: _FunctionState) -> None:
        """Hand freed slots to the oldest live waiters (lazy-cancel aware)."""
        queue = state.queue
        while queue:
            if queue[0].state == _Waiter.CANCELLED:
                queue.popleft()
                state.cancelled -= 1
                continue
            if state.inflight >= state.limiter.effective:
                return
            waiter = queue.popleft()
            waiter.state = _Waiter.GRANTED
            state.inflight += 1
            # Grant at the current instant *via the queue* so the
            # releasing process finishes its step first (the Resource
            # idiom); bit-reproducible by (time, priority, seq) order.
            self.sim._queue.push(self.sim._now, waiter.event.succeed, (), 0, False)

    # -- the control-loop tick ---------------------------------------------
    def tick(self, now: float) -> None:
        """Apply one interval of AIMD feedback (idempotent per instant).

        Every HotC host calls this from its control tick; co-scheduled
        ticks of a multi-host cluster collapse into one adjustment.
        """
        if now <= self._last_tick:
            return
        self._last_tick = now
        obs = self.obs
        for name in sorted(self._states):
            state = self._states[name]
            state.limiter.tick()
            # A raised limit (or a cut that still leaves room) may free
            # slots without any release happening: wake waiters now.
            self._grant_next(state)
            if obs is not None:
                obs.gauge(
                    "admission_concurrency_limit",
                    help="Current AIMD concurrency limit",
                    function=name,
                ).set(state.limiter.effective)
                obs.gauge(
                    "admission_queue_depth",
                    help="Requests waiting for admission",
                    function=name,
                ).set(state.depth)

    # -- checkpoint / restore -------------------------------------------------
    def export_limits(self) -> Dict[str, float]:
        """Per-function AIMD limits, for control-plane checkpoints."""
        return {
            name: state.limiter.limit for name, state in self._states.items()
        }

    def reset_limits(self) -> None:
        """Forget every learned AIMD limit (control-plane crash).

        Each function falls back to its configured ``initial_limit``,
        exactly as if the controller had just been constructed.  A
        raised limit may free admission slots, so waiters are
        re-granted.
        """
        for name in sorted(self._states):
            state = self._states[name]
            state.limiter.limit = float(state.limiter.config.initial_limit)
            self._grant_next(state)

    def restore_limits(self, limits: Dict[str, float]) -> None:
        """Re-apply checkpointed AIMD limits after a recovery.

        Each restored limit is clamped to the function's configured
        ``[min_limit, max_limit]`` band; functions first seen after the
        checkpoint keep their current limit.  A raised limit may free
        admission slots, so waiters are re-granted.
        """
        for name in sorted(limits):
            state = self._states.get(name)
            if state is None:
                continue
            config = state.limiter.config
            state.limiter.limit = min(
                config.max_limit, max(config.min_limit, float(limits[name]))
            )
            self._grant_next(state)

    # -- shutdown -----------------------------------------------------------
    def begin_shutdown(self) -> None:
        """Reject new admissions and drain every queue deterministically.

        Queued waiters are shed (reason ``shutdown``) in FIFO order per
        function, functions in name order; their gateway processes wake
        through the simulator queue and answer the clients with SHED.
        Idempotent: the provider calls this once per host on shutdown.
        """
        if self._shutdown:
            return
        self._shutdown = True
        for name in sorted(self._states):
            state = self._states[name]
            while state.queue:
                waiter = state.queue.popleft()
                if waiter.state == _Waiter.CANCELLED:
                    state.cancelled -= 1
                    continue
                waiter.state = _Waiter.SHED
                waiter.reason = REASON_SHUTDOWN
                self.sim._queue.push(
                    self.sim._now, waiter.event.succeed, (), 0, False
                )

    # -- terminal stampers ----------------------------------------------------
    def _admitted(self, spec: FunctionSpec, trace: RequestTrace, queued: bool) -> bool:
        self.stats.admitted += 1
        if queued:
            self.stats.admitted_queued += 1
        if self.obs is not None:
            self.obs.emit(
                EventKind.ADMIT,
                t=self.sim.now,
                key=spec.name,
                queued=queued,
            )
        return True

    def _reject(self, spec: FunctionSpec, trace: RequestTrace, reason: str) -> bool:
        trace.outcome = RequestOutcome.SHED
        trace.shed_reason = reason
        self.stats.shed[reason] = self.stats.shed.get(reason, 0) + 1
        if self.obs is not None:
            self.obs.emit(
                EventKind.SHED,
                t=self.sim.now,
                key=spec.name,
                reason=reason,
                qos=spec.qos,
            )
            self.obs.counter(
                "requests_shed_total",
                help="Requests rejected by admission control, by reason",
                function=spec.name,
                reason=reason,
            ).inc()
        return False

    def _deadline_miss(self, spec: FunctionSpec, trace: RequestTrace) -> bool:
        trace.outcome = RequestOutcome.DEADLINE
        self.stats.deadline_misses += 1
        if self.obs is not None:
            self.obs.emit(
                EventKind.DEADLINE_MISS,
                t=self.sim.now,
                key=spec.name,
                where="queued",
            )
            self.obs.counter(
                "deadline_misses_total",
                help="Requests terminated against their deadline",
                function=spec.name,
                where="queued",
            ).inc()
        return False
