"""Overload protection: admission control, deadlines, shedding, brownout.

The subsystem between clients and the runtime pool (DESIGN.md §10):

- :mod:`repro.admission.controller` — bounded per-function admission
  queues with a hard depth cap, deadline enforcement while queued, and
  QoS-aware load shedding.
- :mod:`repro.admission.aimd` — the adaptive concurrency controller
  (additive increase on success, multiplicative decrease on deadline
  misses and shed bursts), ticked from the existing control loop.
- :mod:`repro.admission.brownout` — the hysteresis state machine for a
  host's degraded mode under memory pressure / container-cap trips.

A platform with no controller attached behaves bit-identically to one
built before this subsystem existed.
"""

from repro.admission.aimd import AIMDConfig, AIMDLimiter
from repro.admission.brownout import BrownoutController
from repro.admission.controller import (
    AdmissionConfig,
    AdmissionController,
    AdmissionStats,
)

__all__ = [
    "AIMDConfig",
    "AIMDLimiter",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionStats",
    "BrownoutController",
]
