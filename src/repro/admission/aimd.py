"""AIMD adaptive concurrency: additive raise, multiplicative cut.

One :class:`AIMDLimiter` per function tracks the admission concurrency
limit.  Requests finishing inside their deadline accumulate as
successes; deadline misses and shed bursts accumulate as congestion.
The limit only moves on :meth:`tick` (driven from the platform's
existing control-loop tick), so adjustment is deterministic and
independent of request interleaving inside an interval:

* congestion observed this interval → ``limit *= decrease`` (cut once
  per interval, floored at ``min_limit``);
* otherwise, any success this interval → ``limit += increase`` (capped
  at ``max_limit``).

The limit is a float internally so repeated cuts/raises compose
smoothly; the *effective* limit used for admission is ``floor(limit)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AIMDConfig", "AIMDLimiter"]


@dataclass(frozen=True)
class AIMDConfig:
    """Tunables of one AIMD controller."""

    #: Starting concurrency limit for a fresh function.
    initial_limit: float = 32.0
    min_limit: float = 1.0
    max_limit: float = 1_024.0
    #: Additive raise per congestion-free interval with traffic.
    increase: float = 1.0
    #: Multiplicative cut factor on congestion (deadline miss / shed burst).
    decrease: float = 0.5
    #: Sheds in one interval at or above this count are a congestion
    #: signal; below it they are absorbed (a lone queue-cap rejection
    #: must not halve the limit).
    shed_burst: int = 4

    def __post_init__(self) -> None:
        if self.min_limit < 1.0:
            raise ValueError("min_limit must be >= 1")
        if self.max_limit < self.min_limit:
            raise ValueError("max_limit must be >= min_limit")
        if not self.min_limit <= self.initial_limit <= self.max_limit:
            raise ValueError("initial_limit must be within [min, max]")
        if self.increase <= 0:
            raise ValueError("increase must be > 0")
        if not 0.0 < self.decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        if self.shed_burst < 1:
            raise ValueError("shed_burst must be >= 1")


class AIMDLimiter:
    """Per-function adaptive concurrency limit."""

    __slots__ = ("config", "limit", "successes", "misses", "sheds")

    def __init__(self, config: AIMDConfig) -> None:
        self.config = config
        self.limit = float(config.initial_limit)
        #: Interval accumulators, reset by :meth:`tick`.
        self.successes = 0
        self.misses = 0
        self.sheds = 0

    @property
    def effective(self) -> int:
        """The integer limit admission enforces (floor, >= 1)."""
        return max(1, int(self.limit))

    # -- feedback ---------------------------------------------------------
    def record_success(self) -> None:
        """A request finished within its deadline."""
        self.successes += 1

    def record_miss(self) -> None:
        """A request blew its deadline (queued or executing)."""
        self.misses += 1

    def record_shed(self) -> None:
        """A request was shed (queue full / brownout)."""
        self.sheds += 1

    # -- control ----------------------------------------------------------
    @property
    def congested(self) -> bool:
        """Whether this interval's feedback signals congestion."""
        return self.misses > 0 or self.sheds >= self.config.shed_burst

    def tick(self) -> float:
        """Apply one interval's feedback; returns the new limit."""
        if self.congested:
            self.limit = max(
                self.config.min_limit, self.limit * self.config.decrease
            )
        elif self.successes > 0:
            self.limit = min(
                self.config.max_limit, self.limit + self.config.increase
            )
        self.successes = 0
        self.misses = 0
        self.sheds = 0
        return self.limit
