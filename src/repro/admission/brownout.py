"""Brownout: the degraded mode between healthy and hard eviction.

A host under memory pressure (or at its container cap) should first
*degrade* — stop prewarming, shrink pool targets, shed standard-QoS
traffic — and only then fall back to evicting warm containers.  The
:class:`BrownoutController` is the hysteresis state machine deciding
when a host is in that degraded mode:

* **enter** when ``mem_fraction >= enter_threshold`` or the container
  cap trips;
* **exit** only when ``mem_fraction < enter_threshold - exit_margin``
  *and* the cap is clear, so the mode cannot flap around the threshold.

The controller is pure bookkeeping (no simulation events), so checking
it every control tick costs two float compares.
"""

from __future__ import annotations

__all__ = ["BrownoutController"]


class BrownoutController:
    """Hysteresis state machine for one host's degraded mode."""

    __slots__ = ("enter_threshold", "exit_margin", "active", "entries", "exits")

    def __init__(
        self, enter_threshold: float = 0.8, exit_margin: float = 0.05
    ) -> None:
        if not 0.0 < enter_threshold <= 1.0:
            raise ValueError("enter_threshold must be in (0, 1]")
        if not 0.0 <= exit_margin < enter_threshold:
            raise ValueError("exit_margin must be in [0, enter_threshold)")
        self.enter_threshold = enter_threshold
        self.exit_margin = exit_margin
        self.active = False
        self.entries = 0
        self.exits = 0

    def update(self, mem_fraction: float, cap_tripped: bool = False) -> str:
        """Advance the state machine with one pressure observation.

        Returns ``"enter"`` / ``"exit"`` on a transition, ``""``
        otherwise.
        """
        if not self.active:
            if mem_fraction >= self.enter_threshold or cap_tripped:
                self.active = True
                self.entries += 1
                return "enter"
            return ""
        if (
            mem_fraction < self.enter_threshold - self.exit_margin
            and not cap_tripped
        ):
            self.active = False
            self.exits += 1
            return "exit"
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "BROWNOUT" if self.active else "healthy"
        return (
            f"<BrownoutController {state} enter>={self.enter_threshold} "
            f"exit<{self.enter_threshold - self.exit_margin}>"
        )
