"""Image registry with pull + decompress cost model.

A :class:`Registry` is shared between hosts; each
:class:`~repro.containers.engine.ContainerEngine` keeps a local cache of
pulled images.  Pull time = wire transfer of the *compressed* layers;
decompress time is CPU-bound — exactly the split the Alibaba engineers
optimise in Section III-B.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.containers.image import Image

__all__ = ["Registry", "RegistryError"]


class RegistryError(KeyError):
    """Raised when an image reference cannot be resolved."""


class Registry:
    """A name:tag -> :class:`Image` catalog."""

    def __init__(self, images: Iterable[Image] = ()) -> None:
        self._images: Dict[str, Image] = {}
        self.pull_count: Dict[str, int] = {}
        for image in images:
            self.push(image)

    def push(self, image: Image) -> None:
        """Publish (or overwrite) an image."""
        self._images[image.reference] = image

    def resolve(self, reference: str) -> Image:
        """Resolve ``name:tag`` (bare names default to ``:latest``)."""
        if ":" not in reference:
            reference = f"{reference}:latest"
        try:
            return self._images[reference]
        except KeyError:
            known = ", ".join(sorted(self._images)) or "<empty>"
            raise RegistryError(
                f"image {reference!r} not in registry; known: {known}"
            ) from None

    def __contains__(self, reference: str) -> bool:
        if ":" not in reference:
            reference = f"{reference}:latest"
        return reference in self._images

    def __len__(self) -> int:
        return len(self._images)

    def references(self) -> Tuple[str, ...]:
        """All published references, sorted."""
        return tuple(sorted(self._images))

    def record_pull(self, reference: str) -> None:
        """Count a pull (diagnostics for the Fig 2/registry analyses)."""
        image = self.resolve(reference)
        self.pull_count[image.reference] = self.pull_count.get(image.reference, 0) + 1

    def most_pulled(self, top: Optional[int] = None) -> Tuple[Tuple[str, int], ...]:
        """``(reference, count)`` pairs sorted by descending pulls."""
        ranked = sorted(self.pull_count.items(), key=lambda kv: (-kv[1], kv[0]))
        return tuple(ranked[:top] if top is not None else ranked)
