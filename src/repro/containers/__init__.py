"""Docker-like container engine substrate (simulated).

The paper runs HotC against Docker 1.17; offline we reproduce the exact
surface HotC touches: image pulls (:mod:`repro.containers.registry`),
container lifecycle (:mod:`repro.containers.container`,
:mod:`repro.containers.engine`), network modes with their very different
setup costs (:mod:`repro.containers.network`), per-container volumes
(:mod:`repro.containers.volume`) and Dockerfile parsing
(:mod:`repro.containers.dockerfile`).

All engine operations are simulation processes whose latencies come
from :class:`repro.hardware.LatencyModel`, so the cost structure matches
the paper's Fig 4 calibration.
"""

from repro.containers.image import (
    Image,
    ImageLayer,
    derive_image,
    make_base_image,
    shared_layer_prefix,
)
from repro.containers.registry import Registry, RegistryError
from repro.containers.network import (
    NETWORK_MODES,
    NetworkConfig,
    validate_network_mode,
)
from repro.containers.volume import Volume, VolumeError, VolumeStore
from repro.containers.container import (
    Container,
    ContainerConfig,
    ContainerError,
    ContainerState,
    ExecResult,
    ExecSpec,
)
from repro.containers.engine import ContainerEngine, EngineStats
from repro.containers.dockerfile import (
    Dockerfile,
    DockerfileError,
    Instruction,
    parse_dockerfile,
)
from repro.containers.distribution import (
    DistributionNetwork,
    FullPullStrategy,
    LazyPullStrategy,
    P2PPullStrategy,
    PullStrategy,
)

__all__ = [
    "Container",
    "ContainerConfig",
    "ContainerEngine",
    "ContainerError",
    "ContainerState",
    "DistributionNetwork",
    "Dockerfile",
    "DockerfileError",
    "EngineStats",
    "FullPullStrategy",
    "LazyPullStrategy",
    "P2PPullStrategy",
    "PullStrategy",
    "ExecResult",
    "ExecSpec",
    "Image",
    "ImageLayer",
    "Instruction",
    "NETWORK_MODES",
    "NetworkConfig",
    "Registry",
    "RegistryError",
    "Volume",
    "VolumeError",
    "VolumeStore",
    "derive_image",
    "make_base_image",
    "shared_layer_prefix",
    "parse_dockerfile",
    "validate_network_mode",
]
