"""Container objects: configuration, lifecycle state machine, exec specs.

The lifecycle mirrors Docker's, restricted to what HotC needs::

    CREATED -> STARTING -> RUNNING <-> EXECUTING
                              |            |
                              v            v
                          STOPPING  ->  STOPPED -> REMOVED

``RUNNING`` is the *live idle* state the paper calls a hot container;
``EXECUTING`` is busy with a function.  The HotC pool layers its own
three-value availability view (-1 / 0 / 1, Fig 7) on top of this.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.containers.network import NetworkConfig
from repro.containers.volume import Volume

__all__ = [
    "Container",
    "ContainerConfig",
    "ContainerError",
    "ContainerState",
    "ExecResult",
    "ExecSpec",
]


class ContainerError(RuntimeError):
    """Raised on invalid lifecycle transitions or exec errors."""


class ContainerState(enum.Enum):
    """Docker-like lifecycle states."""

    CREATED = "created"
    STARTING = "starting"
    RUNNING = "running"          # live and idle: reusable
    EXECUTING = "executing"      # busy with a function
    STOPPING = "stopping"
    STOPPED = "stopped"
    REMOVED = "removed"


#: Legal transitions of the lifecycle FSM.
_TRANSITIONS: Dict[ContainerState, Tuple[ContainerState, ...]] = {
    ContainerState.CREATED: (ContainerState.STARTING, ContainerState.REMOVED),
    ContainerState.STARTING: (ContainerState.RUNNING, ContainerState.STOPPING),
    ContainerState.RUNNING: (ContainerState.EXECUTING, ContainerState.STOPPING),
    ContainerState.EXECUTING: (ContainerState.RUNNING, ContainerState.STOPPING),
    ContainerState.STOPPING: (ContainerState.STOPPED,),
    ContainerState.STOPPED: (ContainerState.REMOVED, ContainerState.STARTING),
    ContainerState.REMOVED: (),
}


@dataclass(frozen=True)
class ContainerConfig:
    """Everything that defines a container *runtime environment*.

    These are the parameters the paper's "Parameter Analysis" step
    extracts from the user command / configuration file (Section IV-B):
    image, network configuration, UTS and IPC settings, execution
    options, and resource limits.  Two containers with equal configs are
    the same *type* of runtime and are interchangeable for reuse.
    """

    image: str
    network: NetworkConfig = field(default_factory=NetworkConfig)
    uts_mode: str = "private"
    ipc_mode: str = "private"
    env: Tuple[Tuple[str, str], ...] = ()
    exec_options: Tuple[str, ...] = ()
    cpu_millicores: float = 250.0
    mem_mb: float = 128.0

    def __post_init__(self) -> None:
        if not self.image:
            raise ValueError("image reference must be non-empty")
        if self.uts_mode not in ("private", "host"):
            raise ValueError(f"invalid uts_mode {self.uts_mode!r}")
        if self.ipc_mode not in ("private", "host", "shareable"):
            raise ValueError(f"invalid ipc_mode {self.ipc_mode!r}")
        if self.cpu_millicores <= 0 or self.mem_mb <= 0:
            raise ValueError("resource limits must be positive")


@dataclass(frozen=True)
class ExecSpec:
    """One unit of work to run inside a container.

    Parameters
    ----------
    app_id:
        Identity of the application/function.  A container that last ran
        the same ``app_id`` keeps its business logic initialised (model
        loaded, caches hot), so ``app_init_ms`` is skipped on reuse.
    language:
        Language runtime key (see calibration tables).
    exec_ms:
        Warm execution time of the business logic on the reference host.
    app_init_ms:
        Business-logic initialisation (model load, connection setup)
        paid on the first run of this app in a given container.
    write_mb:
        Data the app writes to its volume (cleaned by HotC afterwards).
    payload:
        Optional real computation executed at exec time; its return
        value lands in :attr:`ExecResult.output`.
    """

    app_id: str
    language: str = "python"
    exec_ms: float = 100.0
    app_init_ms: float = 0.0
    write_mb: float = 0.0
    payload: Optional[Callable[[], Any]] = None

    def __post_init__(self) -> None:
        if not self.app_id:
            raise ValueError("app_id must be non-empty")
        if self.exec_ms < 0 or self.app_init_ms < 0 or self.write_mb < 0:
            raise ValueError("exec costs must be >= 0")


@dataclass(frozen=True)
class ExecResult:
    """Outcome of one exec, with the latency decomposition."""

    container_id: str
    app_id: str
    started_at: float
    finished_at: float
    cold_start: bool
    runtime_init_ms: float
    app_init_ms: float
    exec_ms: float
    output: Any = None

    @property
    def total_ms(self) -> float:
        """Wall-clock duration of the exec inside the container."""
        return self.finished_at - self.started_at


class Container:
    """A single simulated container instance."""

    def __init__(self, container_id: str, config: ContainerConfig, created_at: float) -> None:
        self.container_id = container_id
        self.config = config
        self.created_at = created_at
        self.started_at: Optional[float] = None
        self.state = ContainerState.CREATED
        self.volume: Optional[Volume] = None
        #: Whether the language runtime inside has been booted (first exec).
        self.runtime_initialized = False
        #: app_id of the last function run here (hot business logic).
        self.last_app_id: Optional[str] = None
        self.exec_count = 0
        #: How the last acquire obtained this container: "" (cold boot),
        #: "hit", "relaxed", or "repurpose" — stamped by the provider.
        self.reuse = ""
        #: Re-spec time (ms) charged by the last relaxed/repurpose
        #: acquire; the watchdog copies it into the request trace.
        self.respec_ms = 0.0
        #: Set by the engine: resource allocation backing the idle footprint.
        self.idle_allocation: Any = None
        self.exec_allocation: Any = None
        #: True while a request owns this container (set by the provider
        #: on acquire, cleared on release/discard).  Engine-side ground
        #: truth for busy-vs-idle when a crashed control plane rebuilds
        #: its pool from ``live_containers()``.
        self.leased = False
        #: True while the cleanup worker is recycling this container
        #: (between release and re-entering the pool as available); a
        #: recovery sweep must neither adopt it as idle nor count it as
        #: request-owned demand.
        self.recycling = False
        #: Degradation state, assigned by the fault injector at boot (or
        #: per exec for poison) and carried for life.  All defaults are
        #: inert: a clean run never reads past the guard checks.
        #: Leaked RSS accumulated so far (MB), beyond the configured
        #: footprint — observable trajectory, not a resource charge.
        self.rss_mb = 0.0
        #: RSS growth per completed exec (MB); 0 = no leak.
        self.leak_slope_mb = 0.0
        #: Dirty interpreter state: the next exec on this container
        #: fails until the runtime is sanitized or destroyed.
        self.poisoned = False
        #: Compounding per-reuse exec-time multiplier; 1.0 = healthy.
        self.decay_factor = 1.0
        #: Exec count after which every exec crashes; ``None`` = never.
        self.crash_loop_after: Optional[int] = None
        #: Health-plane verdicts, carried on the container so they
        #: survive a control-plane crash (like ``leased``/``recycling``):
        #: ``tainted`` (SUSPECT — stops serving and donating until
        #: recycled), ``condemned`` (QUARANTINED — never serves again).
        self.tainted = False
        self.condemned = False
        #: Exec time (ms) of the last successful execution, stamped by
        #: the engine; the health plane reads it at release time.
        self.last_exec_ms = 0.0

    # -- state machine ----------------------------------------------------
    def transition(self, new_state: ContainerState) -> None:
        """Move to ``new_state``; illegal moves raise ContainerError."""
        allowed = _TRANSITIONS[self.state]
        if new_state not in allowed:
            raise ContainerError(
                f"container {self.container_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    @property
    def is_live(self) -> bool:
        """Live means running or executing — i.e. keeps a warm runtime."""
        return self.state in (ContainerState.RUNNING, ContainerState.EXECUTING)

    @property
    def is_reusable(self) -> bool:
        """Idle and live: can accept new work immediately."""
        return self.state is ContainerState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Container {self.container_id} {self.state.value} "
            f"image={self.config.image}>"
        )
