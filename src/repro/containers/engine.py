"""The per-host container engine: Docker's API surface as sim processes.

Every public operation is a generator to be wrapped in
``Simulator.process`` (or yielded from another process).  Latencies come
from :class:`repro.hardware.LatencyModel`; resources are committed
against the host's :class:`repro.sim.HostResources` ledger.

Cost composition of a cold start (what HotC avoids)::

    [pull + decompress]   only on first use of the image on this host
    create                namespaces, cgroups, rootfs
    network setup         mode-dependent (Fig 4c: overlay is 23x host)
    volume create+mount   per-container volume (HotC cleanup unit)
    start                 main process launch
    runtime init          language VM boot + code load (first exec)
    app init              business-logic init (first run of an app)

A warm (reused) exec pays only ``code inject + exec`` (+ app init when
the container last ran a *different* app).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.containers.container import (
    Container,
    ContainerConfig,
    ContainerError,
    ContainerState,
    ExecResult,
    ExecSpec,
)
from repro.containers.registry import Registry
from repro.containers.volume import VolumeStore
from repro.hardware.calibration import LatencyModel
from repro.hardware.profiles import HostProfile, T430_SERVER
from repro.obs.events import EventKind
from repro.sim.engine import Simulator
from repro.sim.events import Event

__all__ = ["ContainerEngine", "EngineStats"]


@dataclass
class EngineStats:
    """Operation counters for one engine (diagnostics and benches).

    The failure block counts *observed* errors and recovery actions:
    ``boot_failures``/``transient_errors``/``exec_crashes`` are faults
    the engine actually surfaced; ``boot_retries``, ``hedged_boots``,
    ``breaker_opens``/``breaker_fastfails`` and ``request_retries``/
    ``requests_failed`` are bumped by the middleware and watchdog as
    they recover (or give up).  All stay 0 in fault-free runs.
    """

    boots: int = 0
    image_pulls: int = 0
    cold_execs: int = 0
    warm_execs: int = 0
    #: Acquires served by reconfiguring a relaxed-key match (HotC
    #: fallback path); disjoint from exact pool hits.
    relaxed_hits: int = 0
    #: Acquires served by re-specializing an idle donor container of a
    #: different key (inter-key repurposing).
    repurposes: int = 0
    stops: int = 0
    removes: int = 0
    volume_wipes: int = 0
    kills: int = 0
    boot_failures: int = 0
    transient_errors: int = 0
    exec_crashes: int = 0
    #: Execs refused because the container's runtime state was left
    #: dirty by an earlier run (STATE_POISON degradation).
    poison_failures: int = 0
    boot_retries: int = 0
    hedged_boots: int = 0
    breaker_opens: int = 0
    breaker_fastfails: int = 0
    request_retries: int = 0
    requests_failed: int = 0
    #: Requests the watchdog terminated against their deadline instead
    #: of retrying (only non-zero with an admission controller's
    #: deadlines in play).
    requests_deadline: int = 0

    @property
    def total_execs(self) -> int:
        """All function executions."""
        return self.cold_execs + self.warm_execs

    @property
    def reuse_ratio(self) -> float:
        """Fraction of executions served by a warm container."""
        total = self.total_execs
        return self.warm_execs / total if total else 0.0


class ContainerEngine:
    """Docker-like engine bound to one simulated host.

    Parameters
    ----------
    sim:
        The simulation kernel.
    registry:
        Shared image registry.
    profile:
        Host hardware profile (defaults to the paper's T430 server).
    rng:
        Jitter stream; ``None`` gives deterministic latencies.
    """

    def __init__(
        self,
        sim: Simulator,
        registry: Registry,
        profile: HostProfile = T430_SERVER,
        rng: Optional[np.random.Generator] = None,
        jitter_sigma: float = 0.06,
        name: str = "host-0",
        pull_strategy=None,
    ) -> None:
        self.sim = sim
        self.registry = registry
        self.profile = profile
        self.name = name
        self.latency = LatencyModel(profile=profile, rng=rng, jitter_sigma=jitter_sigma)
        self.resources = profile.make_resources()
        self.volumes = VolumeStore()
        self.stats = EngineStats()
        if pull_strategy is None:
            from repro.containers.distribution import FullPullStrategy

            pull_strategy = FullPullStrategy()
        self.pull_strategy = pull_strategy
        #: Optional fault injector (``FaultPlan.install`` attaches one).
        self.fault_injector = None
        #: Optional observatory; ``None`` keeps every hook inert.
        self.obs = None
        self._containers: Dict[str, Container] = {}
        self._local_images: set[str] = set()
        #: Lazy pulls defer bytes; the first exec per image pays them.
        self._pending_exec_penalty_ms: Dict[str, float] = {}
        self._ids = itertools.count()
        self._capacity_waiters: List[Event] = []

    # -- inventory ---------------------------------------------------------
    def get(self, container_id: str) -> Container:
        """Look up a container by id."""
        try:
            return self._containers[container_id]
        except KeyError:
            raise ContainerError(f"no such container {container_id!r}") from None

    def live_containers(self) -> Tuple[Container, ...]:
        """All live (running or executing) containers, by id."""
        return tuple(
            c
            for _, c in sorted(self._containers.items())
            if c.is_live
        )

    @property
    def live_count(self) -> int:
        """Number of live containers on this host."""
        return sum(1 for c in self._containers.values() if c.is_live)

    def has_image(self, reference: str) -> bool:
        """Whether the image is in the local cache."""
        image = self.registry.resolve(reference)
        return image.reference in self._local_images

    # -- fault injection ----------------------------------------------------
    def attach_fault_injector(self, injector) -> None:
        """Install a :class:`~repro.faults.injector.FaultInjector`.

        Boot and exec paths consult the injector from then on; pass
        ``None`` to detach it again.
        """
        self.fault_injector = injector

    # -- observability hooks -------------------------------------------------
    def attach_observatory(self, observatory) -> None:
        """Install a :class:`~repro.obs.Observatory` (``None`` detaches).

        Boot start/end events and boot-duration histograms are recorded
        from then on; detached, every hook costs one ``is None`` check.
        """
        self.obs = observatory

    @property
    def is_down(self) -> bool:
        """Whether a scheduled host outage currently holds this host."""
        return self.fault_injector is not None and self.fault_injector.host_is_down()

    @property
    def is_unreachable(self) -> bool:
        """Down *or* partitioned: the control plane cannot reach it.

        A partitioned host keeps its containers alive (the warm pool
        survives the heal) but cannot take new work; the cluster's
        health bookkeeping keys off this rather than :attr:`is_down`.
        """
        injector = self.fault_injector
        return injector is not None and (injector.down or injector.partitioned)

    def _fault_scale(self) -> float:
        """Gray-slowdown latency multiplier (1.0 with no injector)."""
        injector = self.fault_injector
        return 1.0 if injector is None else injector.latency_multiplier

    # -- capacity waiting ---------------------------------------------------
    def _acquire(self, owner: str, cpu: float, mem: float):
        """Process: block until the host can commit ``cpu``/``mem``."""
        while not self.resources.can_allocate(cpu, mem):
            waiter = self.sim.event(name=f"capacity({owner})")
            self._capacity_waiters.append(waiter)
            yield waiter
        return self.resources.allocate(owner, cpu, mem)

    def _release(self, allocation) -> None:
        self.resources.release(allocation)
        waiters, self._capacity_waiters = self._capacity_waiters, []
        for waiter in waiters:
            # Wake at the current instant; each waiter re-checks capacity.
            self.sim._queue.push(self.sim.now, waiter.succeed, (None,))

    # -- image handling -------------------------------------------------------
    def ensure_image(self, reference: str) -> Generator:
        """Process: materialise the image locally unless cached.

        The cost structure is delegated to the engine's pull strategy
        (full download, lazy/partial pull, or P2P — Section III-B's
        industry practices).  Lazy strategies may defer bytes whose
        fetch stalls the first execution instead.
        """
        image = self.registry.resolve(reference)
        if image.reference in self._local_images:
            return image
        yield from self.pull_strategy.pull(self, image)
        penalty = self.pull_strategy.first_exec_penalty_ms(self, image)
        if penalty > 0:
            self._pending_exec_penalty_ms[image.reference] = penalty
        self.registry.record_pull(image.reference)
        self.stats.image_pulls += 1
        self._local_images.add(image.reference)
        return image

    # -- lifecycle --------------------------------------------------------
    def boot_container(
        self, config: ContainerConfig, warm_runtime: bool = False
    ) -> Generator:
        """Process: full cold boot; returns a RUNNING container.

        Pays pull (if needed) + create + network + volume + start, then
        commits the idle live-container footprint (Fig 15a: ~0.7 MB).

        ``warm_runtime=True`` additionally boots the language runtime
        baked into the image (when it declares one) so the container is
        a genuinely *hot* runtime — this is what HotC's prewarm path
        uses: the init cost is paid here, off any request's critical
        path, instead of on the first exec.
        """
        obs = self.obs
        if obs is None:
            return (yield from self._boot_container(config, warm_runtime))
        started = self.sim.now
        obs.emit(
            EventKind.BOOT_START,
            t=started,
            host=self.name,
            key=config.image,
            warm_runtime=warm_runtime,
        )
        try:
            container = yield from self._boot_container(config, warm_runtime)
        except Exception as error:
            obs.emit(
                EventKind.BOOT_END,
                t=self.sim.now,
                host=self.name,
                key=config.image,
                ok=False,
                error=type(error).__name__,
            )
            obs.counter(
                "boot_failures_total",
                help="Boots that raised instead of returning a container",
                host=self.name,
            ).inc()
            raise
        obs.emit(
            EventKind.BOOT_END,
            t=self.sim.now,
            host=self.name,
            key=config.image,
            ok=True,
            container=container.container_id,
        )
        obs.counter(
            "boots_total", help="Completed container boots", host=self.name
        ).inc()
        obs.histogram(
            "boot_duration_ms",
            help="Wall time of a full cold boot",
            host=self.name,
        ).observe(self.sim.now - started)
        return container

    def _boot_container(
        self, config: ContainerConfig, warm_runtime: bool
    ) -> Generator:
        if config.network.peer is not None:
            peer = self.get(config.network.peer)
            if not peer.is_live:
                raise ContainerError(
                    f"network peer {config.network.peer} is not live"
                )
        if self.fault_injector is not None:
            # May raise (outage / transient / boot failure) or straggle.
            yield from self.fault_injector.boot_gate(self)
        yield from self.ensure_image(config.image)

        container = Container(
            container_id=f"{self.name}/c{next(self._ids):06d}",
            config=config,
            created_at=self.sim.now,
        )
        self._containers[container.container_id] = container

        # Gray slowdown: a degraded host pays every boot stage scaled by
        # the injector's multiplier (1.0x is bit-identical to no fault).
        scale = self._fault_scale()
        yield self.sim.timeout(
            scale
            * self.latency.container_create(
                shared_namespace=config.network.mode == "container"
            )
        )
        yield self.sim.timeout(
            scale * self.latency.network_setup(config.network.mode)
        )

        volume = self.volumes.create()
        self.volumes.mount(volume, container.container_id)
        container.volume = volume
        yield self.sim.timeout(scale * self.latency.volume_mount())

        container.transition(ContainerState.STARTING)
        yield self.sim.timeout(scale * self.latency.container_start())

        container.idle_allocation = yield from self._acquire(
            container.container_id,
            self.latency.ops.idle_container_cpu_millicores,
            self.latency.ops.idle_container_mem_mb,
        )
        container.transition(ContainerState.RUNNING)
        container.started_at = self.sim.now
        self.stats.boots += 1
        if self.fault_injector is not None:
            # Per-boot degradation lottery (leak / decay / crash loop);
            # zero-rate specs consume no RNG draw here.
            self.fault_injector.assign_degradation(container)

        image = self.registry.resolve(config.image)
        if warm_runtime and image.language is not None:
            yield self.sim.timeout(
                scale * self.latency.runtime_init(image.language)
            )
            container.runtime_initialized = True
        if self.is_down:
            # The host went down while this boot was in flight: the
            # container never becomes usable.
            self.kill_container(container)
            from repro.faults.errors import HostDownError

            raise HostDownError(f"host {self.name} went down during boot")
        return container

    def execute(self, container: Container, spec: ExecSpec) -> Generator:
        """Process: run ``spec`` in a RUNNING container; returns ExecResult.

        The first exec in a fresh container is the *cold* path (runtime
        init + app init); later execs are *warm* and pay only code
        injection, plus app init when the app changed.
        """
        if not container.is_reusable:
            raise ContainerError(
                f"container {container.container_id} is "
                f"{container.state.value}, not running/idle"
            )
        image = self.registry.resolve(container.config.image)
        if image.language is not None and image.language != spec.language:
            raise ContainerError(
                f"image {image.reference} provides {image.language!r}, "
                f"spec wants {spec.language!r}"
            )
        if container.poisoned:
            # Dirty interpreter state from an earlier run: fail before
            # touching the lifecycle so the watchdog can discard the
            # container and retry elsewhere.
            from repro.faults.errors import StatePoisonError

            self.stats.poison_failures += 1
            raise StatePoisonError(
                f"container {container.container_id} has poisoned "
                "runtime state"
            )

        container.transition(ContainerState.EXECUTING)
        started_at = self.sim.now
        cold = not container.runtime_initialized

        container.exec_allocation = yield from self._acquire(
            f"exec:{container.container_id}",
            container.config.cpu_millicores,
            container.config.mem_mb,
        )
        try:
            runtime_init_ms = 0.0
            app_init_ms = 0.0
            # Gray slowdown: exec stages on a degraded host run scaled.
            scale = self._fault_scale()

            # The pre-exec stages accumulate into a single timeout
            # charged together with the execution itself: an exec runs
            # once per request, so the event count matters at trace
            # scale.  Latency draws keep their stage order.
            pending_ms = 0.0
            if cold:
                # A lazily-pulled image stalls its first execution on
                # this host while the deferred layers stream in.
                penalty = self._pending_exec_penalty_ms.pop(
                    image.reference, 0.0
                )
                if penalty > 0:
                    pending_ms += scale * penalty
                runtime_init_ms = scale * self.latency.runtime_init(spec.language)
                pending_ms += runtime_init_ms
                container.runtime_initialized = True
                self.stats.cold_execs += 1
            else:
                pending_ms += scale * self.latency.code_inject()
                self.stats.warm_execs += 1

            if spec.app_init_ms > 0 and container.last_app_id != spec.app_id:
                app_init_ms = scale * self.latency.app_init(
                    spec.app_init_ms, spec.language
                )
                pending_ms += app_init_ms

            exec_ms = scale * self.latency.app_execution(spec.exec_ms, spec.language)
            if container.decay_factor != 1.0:
                # Compounding per-reuse slowdown (PERF_DECAY).
                exec_ms *= container.decay_factor ** container.exec_count
            if (
                container.crash_loop_after is not None
                and container.exec_count >= container.crash_loop_after
            ):
                from repro.faults.errors import ExecCrash

                yield self.sim.timeout(pending_ms + 0.5 * exec_ms)
                raise ExecCrash(
                    f"container {container.container_id} is crash-looping "
                    f"(exec #{container.exec_count})"
                )
            if self.fault_injector is not None:
                crash_at_ms = self.fault_injector.exec_crash_point(exec_ms)
                if crash_at_ms is not None:
                    from repro.faults.errors import ExecCrash

                    yield self.sim.timeout(pending_ms + min(crash_at_ms, exec_ms))
                    raise ExecCrash(
                        f"container {container.container_id} crashed mid-execution"
                    )
            yield self.sim.timeout(pending_ms + exec_ms)

            output = spec.payload() if spec.payload is not None else None

            if spec.write_mb > 0:
                if container.volume is None:
                    raise ContainerError(
                        f"container {container.container_id} has no volume"
                    )
                container.volume.write(
                    f"output/{spec.app_id}-{container.exec_count}.dat",
                    spec.write_mb,
                )
        except Exception as error:
            from repro.faults.errors import ExecCrash

            if isinstance(error, ExecCrash):
                self.stats.exec_crashes += 1
                self._destroy_crashed(container)
            raise
        finally:
            self._release(container.exec_allocation)
            container.exec_allocation = None

        if self.is_down:
            # The host died under this execution: the result is lost.
            from repro.faults.errors import HostDownError

            self.stats.exec_crashes += 1
            self._destroy_crashed(container)
            raise HostDownError(
                f"host {self.name} went down during execution of "
                f"{container.container_id}"
            )
        container.last_app_id = spec.app_id
        container.exec_count += 1
        container.last_exec_ms = exec_ms
        if container.leak_slope_mb:
            container.rss_mb += container.leak_slope_mb
        if (
            self.fault_injector is not None
            and self.fault_injector.exec_poison()
        ):
            container.poisoned = True
        container.transition(ContainerState.RUNNING)
        return ExecResult(
            container_id=container.container_id,
            app_id=spec.app_id,
            started_at=started_at,
            finished_at=self.sim.now,
            cold_start=cold,
            runtime_init_ms=runtime_init_ms,
            app_init_ms=app_init_ms,
            exec_ms=exec_ms,
            output=output,
        )

    def clean_container(self, container: Container) -> Generator:
        """Process: HotC Algorithm 2 — wipe the volume, mount a fresh one.

        The container must be idle.  Afterwards it is indistinguishable
        from a freshly booted container of the same runtime type, except
        that its runtime (and last app's business logic) stay hot.
        """
        if not container.is_reusable:
            raise ContainerError(
                f"cannot clean {container.state.value} container "
                f"{container.container_id}"
            )
        old_volume = container.volume
        if old_volume is None:
            raise ContainerError(
                f"container {container.container_id} has no volume"
            )
        # Wipe and remount share one timeout (cleans run once per
        # recycled request, so the event count matters at trace scale);
        # the latency draws keep their wipe-then-mount RNG order.
        wipe_ms = self.latency.volume_wipe()
        mount_ms = self.latency.volume_mount()
        yield self.sim.timeout(wipe_ms + mount_ms)
        old_volume.wipe()
        self.volumes.unmount(old_volume)
        self.volumes.delete(old_volume)

        fresh = self.volumes.create()
        self.volumes.mount(fresh, container.container_id)
        container.volume = fresh
        self.stats.volume_wipes += 1
        return fresh

    def stop_container(self, container: Container) -> Generator:
        """Process: stop a live container, releasing its footprint."""
        if not container.is_live:
            raise ContainerError(
                f"container {container.container_id} is not live"
            )
        container.transition(ContainerState.STOPPING)
        yield self.sim.timeout(self.latency.container_stop())
        container.transition(ContainerState.STOPPED)
        if container.idle_allocation is not None:
            self._release(container.idle_allocation)
            container.idle_allocation = None
        if container.volume is not None:
            self.volumes.unmount(container.volume)
            self.volumes.delete(container.volume)
            container.volume = None
        self.stats.stops += 1
        return container

    def kill_container(self, container: Container) -> Container:
        """Instantly terminate an *idle* container (failure injection).

        Models a crash / OOM-kill of a pooled runtime: no graceful stop
        latency, resources and volume reclaimed immediately.  Busy
        containers cannot be killed through this API (their in-flight
        exec owns the lifecycle).
        """
        if not container.is_reusable:
            raise ContainerError(
                f"can only kill idle containers; "
                f"{container.container_id} is {container.state.value}"
            )
        container.transition(ContainerState.STOPPING)
        container.transition(ContainerState.STOPPED)
        if container.idle_allocation is not None:
            self._release(container.idle_allocation)
            container.idle_allocation = None
        if container.volume is not None:
            self.volumes.unmount(container.volume)
            self.volumes.delete(container.volume)
            container.volume = None
        container.transition(ContainerState.REMOVED)
        del self._containers[container.container_id]
        self.stats.kills += 1
        return container

    def _destroy_crashed(self, container: Container) -> None:
        """Instant teardown of a container whose execution died.

        Like :meth:`kill_container` but starting from ``EXECUTING``:
        resources and volume are reclaimed immediately; the in-flight
        exec allocation is the caller's to release.
        """
        container.transition(ContainerState.STOPPING)
        container.transition(ContainerState.STOPPED)
        if container.idle_allocation is not None:
            self._release(container.idle_allocation)
            container.idle_allocation = None
        if container.volume is not None:
            self.volumes.unmount(container.volume)
            self.volumes.delete(container.volume)
            container.volume = None
        container.transition(ContainerState.REMOVED)
        del self._containers[container.container_id]

    def remove_container(self, container: Container) -> Generator:
        """Process: remove a stopped (or never-started) container."""
        if container.state not in (ContainerState.STOPPED, ContainerState.CREATED):
            raise ContainerError(
                f"cannot remove {container.state.value} container "
                f"{container.container_id}"
            )
        yield self.sim.timeout(self.latency.container_remove())
        container.transition(ContainerState.REMOVED)
        del self._containers[container.container_id]
        self.stats.removes += 1
        return container

    # -- observability ----------------------------------------------------
    def sample_resources(self) -> None:
        """Record a host resource snapshot at the current sim time."""
        self.resources.sample(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ContainerEngine {self.name} profile={self.profile.name} "
            f"live={self.live_count}>"
        )
