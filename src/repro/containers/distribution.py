"""Image distribution strategies (the industry practices of Section III-B).

The paper surveys Alibaba's cold-start work: "a new image format that
does not need to fully download", "an efficient compress algorithm",
and "a P2P network for data and image distribution" to relieve registry
congestion.  These are implemented as pluggable pull strategies so the
image-pull ablation can quantify how much of the cold start each one
removes — and show that none of them eliminates the runtime-init part
HotC targets.

* :class:`FullPullStrategy` — classic Docker behaviour: download and
  decompress every layer before the container can start.
* :class:`LazyPullStrategy` — pull only the *essential fraction* of the
  image up front (estargz/DADI-style); the remainder streams in the
  background and charges a one-time readahead penalty to the first
  execution on that host.
* :class:`P2PPullStrategy` — fetch layers from peer hosts that already
  hold the image; aggregate bandwidth scales with the number of seeds
  (up to a cap) plus a small coordination overhead.
"""

from __future__ import annotations

import abc
from typing import Dict, Generator, Set

from repro.containers.image import Image

__all__ = [
    "DistributionNetwork",
    "FullPullStrategy",
    "LazyPullStrategy",
    "P2PPullStrategy",
    "PullStrategy",
]


class DistributionNetwork:
    """Tracks which hosts hold which images (the P2P seed map)."""

    def __init__(self) -> None:
        self._holders: Dict[str, Set[str]] = {}

    def register(self, host: str, reference: str) -> None:
        """Record that ``host`` now holds ``reference``."""
        self._holders.setdefault(reference, set()).add(host)

    def seeds(self, reference: str, excluding: str) -> int:
        """Peers (other than ``excluding``) holding the image."""
        holders = self._holders.get(reference, set())
        return len(holders - {excluding})

    def holders(self, reference: str) -> Set[str]:
        """All hosts holding the image."""
        return set(self._holders.get(reference, set()))


class PullStrategy(abc.ABC):
    """How an engine materialises an image locally."""

    @abc.abstractmethod
    def pull(self, engine, image: Image) -> Generator:
        """Process: make the image available; yields sim timeouts."""

    def first_exec_penalty_ms(self, engine, image: Image) -> float:
        """Extra cost charged to the first exec after a pull (default 0)."""
        return 0.0


class FullPullStrategy(PullStrategy):
    """Download + decompress everything before use (Docker default)."""

    def pull(self, engine, image: Image) -> Generator:
        yield engine.sim.timeout(engine.latency.image_pull(image.compressed_mb))
        yield engine.sim.timeout(
            engine.latency.image_decompress(image.compressed_mb)
        )


class LazyPullStrategy(PullStrategy):
    """Pull only the essential fraction up front (estargz-style).

    Parameters
    ----------
    essential_fraction:
        Share of the compressed image needed before the entrypoint can
        run (file-access profiles put this around 6-25%; default 0.25).
    readahead_penalty_fraction:
        Share of the *deferred* bytes whose on-demand fetches stall the
        first execution.
    """

    def __init__(
        self,
        essential_fraction: float = 0.25,
        readahead_penalty_fraction: float = 0.15,
    ) -> None:
        if not 0 < essential_fraction <= 1:
            raise ValueError("essential_fraction must be in (0, 1]")
        if not 0 <= readahead_penalty_fraction <= 1:
            raise ValueError("readahead_penalty_fraction must be in [0, 1]")
        self.essential_fraction = essential_fraction
        self.readahead_penalty_fraction = readahead_penalty_fraction

    def pull(self, engine, image: Image) -> Generator:
        essential_mb = image.compressed_mb * self.essential_fraction
        yield engine.sim.timeout(engine.latency.image_pull(essential_mb))
        yield engine.sim.timeout(engine.latency.image_decompress(essential_mb))

    def first_exec_penalty_ms(self, engine, image: Image) -> float:
        deferred_mb = image.compressed_mb * (1.0 - self.essential_fraction)
        stalled_mb = deferred_mb * self.readahead_penalty_fraction
        return engine.latency.image_pull(stalled_mb)


class P2PPullStrategy(PullStrategy):
    """Fetch from peer hosts already holding the image.

    Parameters
    ----------
    network:
        The shared seed map; engines register after each pull.
    max_parallel_peers:
        Bandwidth multiplier cap (chunk parallelism limit).
    coordination_ms:
        Tracker/coordination overhead per pull.
    """

    def __init__(
        self,
        network: DistributionNetwork,
        max_parallel_peers: int = 4,
        coordination_ms: float = 25.0,
    ) -> None:
        if max_parallel_peers < 1:
            raise ValueError("max_parallel_peers must be >= 1")
        if coordination_ms < 0:
            raise ValueError("coordination_ms must be >= 0")
        self.network = network
        self.max_parallel_peers = max_parallel_peers
        self.coordination_ms = coordination_ms

    def pull(self, engine, image: Image) -> Generator:
        seeds = self.network.seeds(image.reference, excluding=engine.name)
        speedup = min(seeds + 1, self.max_parallel_peers)
        yield engine.sim.timeout(self.coordination_ms)
        yield engine.sim.timeout(
            engine.latency.image_pull(image.compressed_mb) / speedup
        )
        yield engine.sim.timeout(
            engine.latency.image_decompress(image.compressed_mb)
        )
        self.network.register(engine.name, image.reference)
