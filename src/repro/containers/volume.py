"""Volumes: host-backed writable directories mounted into containers.

HotC keeps reused containers clean by giving every container a unique
volume, wiping the old volume's contents after each run and mounting a
fresh one (Algorithm 2 / Section IV-B "Used Container Cleanup").  This
module tracks volume identity, mount state and written bytes so the
cleanup path can be tested for exactly those semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["Volume", "VolumeError", "VolumeStore"]


class VolumeError(RuntimeError):
    """Raised on invalid volume operations."""


@dataclass
class Volume:
    """One host directory mountable into a single container."""

    volume_id: str
    mounted_by: Optional[str] = None
    deleted: bool = False
    _files: Dict[str, float] = field(default_factory=dict, repr=False)

    @property
    def files(self) -> Tuple[str, ...]:
        """Paths currently present, sorted."""
        return tuple(sorted(self._files))

    @property
    def bytes_mb(self) -> float:
        """Total data stored (MB)."""
        return sum(self._files.values())

    def write(self, path: str, size_mb: float) -> None:
        """Write (or overwrite) a file of ``size_mb`` at ``path``."""
        self._ensure_usable()
        if self.mounted_by is None:
            raise VolumeError(f"volume {self.volume_id} is not mounted")
        if size_mb < 0:
            raise ValueError("file size must be >= 0")
        self._files[path] = size_mb

    def wipe(self) -> int:
        """Delete all files and directories; returns how many were removed."""
        self._ensure_usable()
        count = len(self._files)
        self._files.clear()
        return count

    def _ensure_usable(self) -> None:
        if self.deleted:
            raise VolumeError(f"volume {self.volume_id} was deleted")


class VolumeStore:
    """Host-level volume manager."""

    def __init__(self) -> None:
        self._volumes: Dict[str, Volume] = {}
        self._ids = itertools.count()

    def __len__(self) -> int:
        return sum(1 for v in self._volumes.values() if not v.deleted)

    def create(self) -> Volume:
        """Create a fresh empty volume."""
        volume = Volume(volume_id=f"vol-{next(self._ids):06d}")
        self._volumes[volume.volume_id] = volume
        return volume

    def get(self, volume_id: str) -> Volume:
        """Look up a live volume by id."""
        try:
            volume = self._volumes[volume_id]
        except KeyError:
            raise VolumeError(f"no such volume {volume_id!r}") from None
        if volume.deleted:
            raise VolumeError(f"volume {volume_id!r} was deleted")
        return volume

    def mount(self, volume: Volume, container_id: str) -> None:
        """Attach ``volume`` to a container; volumes are single-mount."""
        volume._ensure_usable()
        if volume.mounted_by is not None:
            raise VolumeError(
                f"volume {volume.volume_id} already mounted by "
                f"{volume.mounted_by}"
            )
        volume.mounted_by = container_id

    def unmount(self, volume: Volume) -> None:
        """Detach a mounted volume."""
        volume._ensure_usable()
        if volume.mounted_by is None:
            raise VolumeError(f"volume {volume.volume_id} is not mounted")
        volume.mounted_by = None

    def delete(self, volume: Volume) -> None:
        """Destroy a volume; it must be unmounted first.

        Matches the paper: "the corresponding volumes are deleted once
        the containers stop execution" — no zombie files.
        """
        volume._ensure_usable()
        if volume.mounted_by is not None:
            raise VolumeError(
                f"cannot delete mounted volume {volume.volume_id}"
            )
        volume.deleted = True
        volume._files.clear()

    def live_volumes(self) -> Tuple[Volume, ...]:
        """All not-deleted volumes."""
        return tuple(
            v for _, v in sorted(self._volumes.items()) if not v.deleted
        )
