"""Container images: layers, sizes, and well-known base images.

Sizes matter because pull + decompress cost is proportional to the
compressed image size (the Alibaba practice discussed in Section III-B),
and because the Dockerfile survey (Fig 2) groups projects by base image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "Image",
    "ImageLayer",
    "derive_image",
    "make_base_image",
    "shared_layer_prefix",
    "WELL_KNOWN_BASES",
]


@dataclass(frozen=True)
class ImageLayer:
    """One filesystem layer of an image."""

    digest: str
    size_mb: float
    compressed_mb: float

    def __post_init__(self) -> None:
        if self.size_mb < 0 or self.compressed_mb < 0:
            raise ValueError("layer sizes must be >= 0")
        if self.compressed_mb > self.size_mb and self.size_mb > 0:
            raise ValueError("compressed size cannot exceed uncompressed size")


@dataclass(frozen=True)
class Image:
    """An immutable container image.

    ``language`` records the primary language runtime baked into the
    image (used by the FaaS layer to pick cold-start costs) and
    ``os_family`` the base OS (used by the Fig 2 survey).
    """

    name: str
    tag: str
    layers: Tuple[ImageLayer, ...]
    language: Optional[str] = None
    os_family: str = "linux"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("image name must be non-empty")
        if not self.tag:
            raise ValueError("image tag must be non-empty")

    @property
    def reference(self) -> str:
        """Canonical ``name:tag`` reference."""
        return f"{self.name}:{self.tag}"

    @property
    def size_mb(self) -> float:
        """Total uncompressed size."""
        return sum(layer.size_mb for layer in self.layers)

    @property
    def compressed_mb(self) -> float:
        """Total compressed (wire) size."""
        return sum(layer.compressed_mb for layer in self.layers)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.reference


def make_base_image(
    name: str,
    tag: str = "latest",
    size_mb: float = 100.0,
    language: Optional[str] = None,
    os_family: str = "debian",
    compression_ratio: float = 0.42,
    n_layers: int = 3,
) -> Image:
    """Build a plausible layered image of roughly ``size_mb``.

    Layer sizes follow a fixed 60/30/10-ish split so images are
    deterministic; digests are derived from the reference.
    """
    if size_mb <= 0:
        raise ValueError("size_mb must be positive")
    if not 0 < compression_ratio <= 1:
        raise ValueError("compression_ratio must be in (0, 1]")
    if n_layers < 1:
        raise ValueError("n_layers must be >= 1")
    weights = [2.0 ** (n_layers - 1 - i) for i in range(n_layers)]
    total_weight = sum(weights)
    layers = []
    for index, weight in enumerate(weights):
        layer_size = size_mb * weight / total_weight
        layers.append(
            ImageLayer(
                digest=f"sha256:{name}-{tag}-{index:02d}",
                size_mb=layer_size,
                compressed_mb=layer_size * compression_ratio,
            )
        )
    return Image(
        name=name,
        tag=tag,
        layers=tuple(layers),
        language=language,
        os_family=os_family,
    )


def derive_image(
    base: Image,
    name: str,
    tag: str = "latest",
    extra_mb: float = 20.0,
    language: Optional[str] = None,
    os_family: Optional[str] = None,
    compression_ratio: float = 0.42,
) -> Image:
    """Build an application image layered on top of ``base``.

    The derived image shares the base's layer objects verbatim (same
    digests, as a real registry would content-address them) and adds a
    single app layer of ``extra_mb`` on top.  Sharing the layer tuple
    is what makes inter-key repurposing measurable: two functions built
    from the same base have a long common layer prefix even though
    their references differ.
    """
    if extra_mb < 0:
        raise ValueError("extra_mb must be >= 0")
    if not 0 < compression_ratio <= 1:
        raise ValueError("compression_ratio must be in (0, 1]")
    app_layer = ImageLayer(
        digest=f"sha256:{base.reference}+{name}-{tag}",
        size_mb=extra_mb,
        compressed_mb=extra_mb * compression_ratio,
    )
    return Image(
        name=name,
        tag=tag,
        layers=base.layers + (app_layer,),
        language=base.language if language is None else language,
        os_family=base.os_family if os_family is None else os_family,
    )


def shared_layer_prefix(a: Image, b: Image) -> Tuple[ImageLayer, ...]:
    """The common bottom layers of two images (matched by digest).

    Layers are content-addressed, so a shared digest prefix means the
    filesystems are identical up to that depth — a repurposed container
    keeps those layers in place and only swaps what sits above them.
    """
    shared = []
    for layer_a, layer_b in zip(a.layers, b.layers):
        if layer_a.digest != layer_b.digest:
            break
        shared.append(layer_a)
    return tuple(shared)


#: The base images dominating the paper's GitHub survey (Fig 2a):
#: common OSes, language runtimes, and their combinations.
WELL_KNOWN_BASES: Tuple[Image, ...] = (
    make_base_image("alpine", "3.8", size_mb=4.5, os_family="alpine"),
    make_base_image("ubuntu", "16.04", size_mb=120.0, os_family="ubuntu"),
    make_base_image("debian", "stretch", size_mb=101.0, os_family="debian"),
    make_base_image("centos", "7", size_mb=200.0, os_family="centos"),
    make_base_image("busybox", "1.29", size_mb=1.2, os_family="busybox"),
    make_base_image("python", "3.6", size_mb=330.0, language="python"),
    make_base_image("python", "3.6-alpine", size_mb=62.0, language="python",
                    os_family="alpine"),
    make_base_image("node", "10", size_mb=290.0, language="node"),
    make_base_image("golang", "1.11", size_mb=310.0, language="go"),
    make_base_image("openjdk", "8", size_mb=360.0, language="java"),
    make_base_image("nginx", "1.15", size_mb=44.0, os_family="debian"),
    make_base_image("redis", "5.0", size_mb=35.0, os_family="debian"),
    make_base_image("mysql", "5.7", size_mb=140.0, os_family="debian"),
    make_base_image("postgres", "11", size_mb=115.0, os_family="debian"),
    make_base_image("cassandra", "3.11", size_mb=145.0, language="java"),
    make_base_image("tensorflow/tensorflow", "1.13", size_mb=410.0,
                    language="python"),
)
