"""A small Dockerfile parser.

Used twice in the reproduction:

* the Fig 2 survey (:mod:`repro.analysis.dockerfiles`) parses a corpus
  of Dockerfiles and groups projects by base image and by the OS /
  language / application category of that base;
* HotC's parameter analysis (:mod:`repro.core.keys`) can derive a
  container configuration from a Dockerfile-style definition.

Supports the common instruction set, comments, blank lines, line
continuations with ``\\`` and multi-stage builds (``FROM ... AS name``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Dockerfile",
    "DockerfileError",
    "Instruction",
    "parse_dockerfile",
    "categorize_base_image",
]


class DockerfileError(ValueError):
    """Raised on malformed Dockerfile text."""


_KNOWN_INSTRUCTIONS = frozenset(
    {
        "FROM", "RUN", "CMD", "ENTRYPOINT", "ENV", "EXPOSE", "COPY", "ADD",
        "WORKDIR", "VOLUME", "USER", "LABEL", "ARG", "HEALTHCHECK",
        "SHELL", "STOPSIGNAL", "ONBUILD", "MAINTAINER",
    }
)


@dataclass(frozen=True)
class Instruction:
    """One parsed instruction: keyword plus its raw argument string."""

    keyword: str
    argument: str
    line: int

    def __post_init__(self) -> None:
        if self.keyword not in _KNOWN_INSTRUCTIONS:
            raise DockerfileError(
                f"line {self.line}: unknown instruction {self.keyword!r}"
            )


@dataclass(frozen=True)
class Dockerfile:
    """A parsed Dockerfile."""

    instructions: Tuple[Instruction, ...]

    @property
    def stages(self) -> Tuple[str, ...]:
        """The FROM references, one per build stage, in order."""
        return tuple(
            _strip_stage_alias(i.argument)
            for i in self.instructions
            if i.keyword == "FROM"
        )

    @property
    def base_image(self) -> str:
        """The final stage's base image (what the built image runs on)."""
        stages = self.stages
        if not stages:
            raise DockerfileError("Dockerfile has no FROM instruction")
        return stages[-1]

    @property
    def exposed_ports(self) -> Tuple[int, ...]:
        """All EXPOSEd ports, sorted, duplicates removed."""
        ports: set[int] = set()
        for instruction in self.instructions:
            if instruction.keyword != "EXPOSE":
                continue
            for token in instruction.argument.split():
                port_text = token.split("/", 1)[0]
                try:
                    port = int(port_text)
                except ValueError:
                    raise DockerfileError(
                        f"line {instruction.line}: bad port {token!r}"
                    ) from None
                ports.add(port)
        return tuple(sorted(ports))

    @property
    def env(self) -> Tuple[Tuple[str, str], ...]:
        """Accumulated ENV bindings, sorted by key (later wins)."""
        bindings: Dict[str, str] = {}
        for instruction in self.instructions:
            if instruction.keyword != "ENV":
                continue
            bindings.update(_parse_env(instruction.argument, instruction.line))
        return tuple(sorted(bindings.items()))

    @property
    def run_count(self) -> int:
        """Number of RUN steps (a proxy for build complexity)."""
        return sum(1 for i in self.instructions if i.keyword == "RUN")

    def has(self, keyword: str) -> bool:
        """Whether any instruction of ``keyword`` appears."""
        return any(i.keyword == keyword for i in self.instructions)


def _strip_stage_alias(argument: str) -> str:
    """``ubuntu:16.04 AS builder`` -> ``ubuntu:16.04``."""
    tokens = argument.split()
    if len(tokens) >= 3 and tokens[-2].upper() == "AS":
        return " ".join(tokens[:-2])
    return argument.strip()


def _parse_env(argument: str, line: int) -> Dict[str, str]:
    """Parse both ``ENV k v`` and ``ENV k1=v1 k2=v2`` forms."""
    argument = argument.strip()
    if "=" in argument.split()[0]:
        bindings: Dict[str, str] = {}
        for token in argument.split():
            if "=" not in token:
                raise DockerfileError(
                    f"line {line}: expected key=value, got {token!r}"
                )
            key, _, value = token.partition("=")
            bindings[key] = value.strip('"')
        return bindings
    parts = argument.split(None, 1)
    if len(parts) != 2:
        raise DockerfileError(f"line {line}: ENV needs a key and a value")
    return {parts[0]: parts[1]}


def parse_dockerfile(text: str) -> Dockerfile:
    """Parse Dockerfile ``text`` into a :class:`Dockerfile`.

    Raises :class:`DockerfileError` on unknown instructions, missing
    arguments, or content before the first FROM (ARG excepted, as per
    the Dockerfile spec).
    """
    instructions: List[Instruction] = []
    pending: Optional[str] = None
    pending_line = 0

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        stripped = line.strip()
        if pending is None and (not stripped or stripped.startswith("#")):
            continue
        if pending is not None:
            merged = pending + " " + stripped
        else:
            merged = stripped
            pending_line = line_number
        if merged.endswith("\\"):
            pending = merged[:-1].rstrip()
            continue
        pending = None
        _append_instruction(instructions, merged, pending_line)

    if pending is not None:
        _append_instruction(instructions, pending, pending_line)

    dockerfile = Dockerfile(instructions=tuple(instructions))
    _validate_order(dockerfile)
    # Force EXPOSE/ENV validation now so malformed files fail at parse
    # time rather than on first property access.
    dockerfile.exposed_ports
    dockerfile.env
    return dockerfile


def _append_instruction(
    instructions: List[Instruction], text: str, line: int
) -> None:
    parts = text.split(None, 1)
    keyword = parts[0].upper()
    if keyword not in _KNOWN_INSTRUCTIONS:
        raise DockerfileError(f"line {line}: unknown instruction {parts[0]!r}")
    if len(parts) < 2 or not parts[1].strip():
        raise DockerfileError(f"line {line}: {keyword} needs an argument")
    instructions.append(Instruction(keyword, parts[1].strip(), line))


def _validate_order(dockerfile: Dockerfile) -> None:
    seen_from = False
    for instruction in dockerfile.instructions:
        if instruction.keyword == "FROM":
            seen_from = True
        elif instruction.keyword != "ARG" and not seen_from:
            raise DockerfileError(
                f"line {instruction.line}: {instruction.keyword} before FROM"
            )
    if not seen_from:
        raise DockerfileError("Dockerfile has no FROM instruction")


#: Category tables for Fig 2b: the paper groups dominant base images by
#: whether they pin an OS, a language runtime, or an application stack.
_OS_BASES = frozenset(
    {"alpine", "ubuntu", "debian", "centos", "busybox", "fedora",
     "amazonlinux", "scratch"}
)
_LANGUAGE_BASES = frozenset(
    {"python", "node", "golang", "openjdk", "java", "ruby", "php",
     "dotnet", "rust", "erlang"}
)
_APPLICATION_BASES = frozenset(
    {"nginx", "redis", "mysql", "postgres", "mongo", "cassandra",
     "httpd", "memcached", "rabbitmq", "elasticsearch",
     "tensorflow/tensorflow", "wordpress", "tomcat"}
)


def categorize_base_image(reference: str) -> str:
    """Classify a base image as ``os``, ``language``, ``application``
    or ``other`` — the Fig 2b grouping."""
    name = reference.split(":", 1)[0].strip().lower()
    if name in _OS_BASES:
        return "os"
    if name in _LANGUAGE_BASES:
        return "language"
    if name in _APPLICATION_BASES:
        return "application"
    return "other"
