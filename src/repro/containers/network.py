"""Container network modes and configuration.

The paper's Fig 4c measures container boot under different network
configurations: ``none``, ``bridge``, ``host`` and ``container`` mode on
a single host, and ``host`` vs ``overlay`` vs ``routing`` across hosts
(overlay/routing up to 23x slower to set up).  The latency table lives
in :mod:`repro.hardware.calibration`; this module owns the mode
vocabulary and per-container network state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.hardware.calibration import NETWORK_SETUP_MS

__all__ = ["NETWORK_MODES", "NetworkConfig", "validate_network_mode"]

#: All supported network modes (keys of the calibration table).
NETWORK_MODES: FrozenSet[str] = frozenset(NETWORK_SETUP_MS)

#: Modes that require a peer container whose namespace is joined.
_JOIN_MODES = frozenset({"container"})

#: Modes that only make sense in a multi-host deployment.
MULTI_HOST_MODES: FrozenSet[str] = frozenset(
    {"multihost-host", "overlay", "routing"}
)


def validate_network_mode(mode: str) -> str:
    """Return ``mode`` if known, else raise ``ValueError`` listing modes."""
    if mode not in NETWORK_MODES:
        known = ", ".join(sorted(NETWORK_MODES))
        raise ValueError(f"unknown network mode {mode!r}; known: {known}")
    return mode


@dataclass(frozen=True)
class NetworkConfig:
    """Network half of a container configuration.

    ``peer`` names the proxy container joined in ``container`` mode;
    ``ports`` are published ports (part of the HotC runtime key).
    """

    mode: str = "bridge"
    ports: Tuple[int, ...] = ()
    dns: Tuple[str, ...] = ()
    peer: Optional[str] = None

    def __post_init__(self) -> None:
        validate_network_mode(self.mode)
        if self.mode in _JOIN_MODES and not self.peer:
            raise ValueError(
                f"network mode {self.mode!r} requires a peer container"
            )
        if self.peer and self.mode not in _JOIN_MODES:
            raise ValueError(f"peer is only valid in container mode")
        if any(not (0 < p < 65536) for p in self.ports):
            raise ValueError("ports must be in (0, 65536)")

    @property
    def is_multi_host(self) -> bool:
        """Whether this configuration spans hosts."""
        return self.mode in MULTI_HOST_MODES

    def canonical(self) -> Tuple:
        """Stable tuple used in HotC runtime keys."""
        return (
            self.mode,
            tuple(sorted(self.ports)),
            tuple(sorted(self.dns)),
            self.peer or "",
        )
