"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is the single source of truth for everything that
goes wrong in a run: *probabilistic* faults (a rate per decision point,
drawn from a named RNG stream per host) and *scheduled* faults (a fixed
``(time, kind, host)`` list executed by simulator callbacks).  Two plans
built from the same seed produce bit-identical injection schedules and
per-decision draws, so every chaos run is reproducible.

Usage::

    plan = FaultPlan.random(seed=7, duration_ms=60_000, hosts=("host-0",))
    injectors = plan.install(platform.sim, [platform.engine])
    platform.run(until=120_000)
    print(plan.stats)          # what was actually injected
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.sim.rng import derive_seed

__all__ = ["FaultKind", "FaultPlan", "FaultSpec", "FaultStats", "ScheduledFault"]


class FaultKind(enum.Enum):
    """Every failure mode the subsystem can inject."""

    BOOT_FAILURE = "boot_failure"
    BOOT_STRAGGLER = "boot_straggler"
    TRANSIENT_ERROR = "transient_error"
    EXEC_CRASH = "exec_crash"
    POOL_DEATH = "pool_death"
    HOST_OUTAGE = "host_outage"
    #: Gray failure: the host stays up but every boot/exec stage runs
    #: ``factor`` times slower for ``duration_ms``.
    GRAY_SLOWDOWN = "gray_slowdown"
    #: Network partition: the host is unreachable (new boots refused,
    #: heartbeats lost) but its containers stay alive, so the warm pool
    #: survives the heal.
    PARTITION = "partition"
    #: Heartbeat loss/flap: telemetry-only — the host keeps serving but
    #: the failure detector sees silence for ``duration_ms``.
    HEARTBEAT_LOSS = "heartbeat_loss"
    #: The control plane itself crashes, losing its in-memory pool
    #: metadata; a :class:`~repro.recovery.RecoveryManager` rebuilds it
    #: after ``duration_ms``.
    CONTROLLER_CRASH = "controller_crash"
    #: Container-degradation kinds (assigned probabilistically per boot
    #: or per exec; the container carries the affliction from then on).
    #: The container leaks ``memory_leak_mb`` of RSS per reuse.
    MEMORY_LEAK = "memory_leak"
    #: An exec (or a repurpose re-spec) leaves the runtime dirty;
    #: every subsequent exec on the container fails.
    STATE_POISON = "state_poison"
    #: Each reuse multiplies the container's exec time by
    #: ``perf_decay_factor`` (compounding slowdown).
    PERF_DECAY = "perf_decay"
    #: After ``crash_loop_after`` execs the container crashes on every
    #: further exec until it is destroyed.
    CRASH_LOOP = "crash_loop"


@dataclass(frozen=True)
class FaultSpec:
    """Probabilistic fault rates, applied per decision point.

    ``boot_*`` and ``transient_error_rate`` are evaluated once per boot
    attempt; ``exec_crash_rate`` once per execution.  A rate of 0
    removes that decision entirely (no RNG draw is consumed), so a
    zero-rate spec leaves the simulation bit-identical to one with no
    injector attached.
    """

    boot_failure_rate: float = 0.0
    boot_straggler_rate: float = 0.0
    #: Extra delay a straggling boot pays before proceeding.
    boot_straggler_ms: float = 10_000.0
    transient_error_rate: float = 0.0
    exec_crash_rate: float = 0.0
    #: Degradation rates: ``*_rate`` decides per boot (MEMORY_LEAK,
    #: PERF_DECAY, CRASH_LOOP) or per successful exec (STATE_POISON)
    #: whether the container picks up the affliction; the companion
    #: magnitude fields shape it.
    memory_leak_rate: float = 0.0
    #: RSS growth (MB) a leaky container accumulates per reuse.
    memory_leak_mb: float = 8.0
    state_poison_rate: float = 0.0
    perf_decay_rate: float = 0.0
    #: Compounding per-reuse exec-time multiplier of a decaying
    #: container (must be > 1 to be a decay).
    perf_decay_factor: float = 1.05
    crash_loop_rate: float = 0.0
    #: Execs a crash-looping container completes before every further
    #: exec crashes.
    crash_loop_after: int = 5

    _RATES = (
        "boot_failure_rate",
        "boot_straggler_rate",
        "transient_error_rate",
        "exec_crash_rate",
        "memory_leak_rate",
        "state_poison_rate",
        "perf_decay_rate",
        "crash_loop_rate",
    )

    def __post_init__(self) -> None:
        for name in self._RATES:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.boot_straggler_ms < 0:
            raise ValueError("boot_straggler_ms must be >= 0")
        if self.memory_leak_mb <= 0:
            raise ValueError("memory_leak_mb must be > 0")
        if self.perf_decay_factor <= 1.0:
            raise ValueError("perf_decay_factor must be > 1")
        if self.crash_loop_after < 1:
            raise ValueError("crash_loop_after must be >= 1")

    @property
    def is_zero(self) -> bool:
        """Whether this spec injects nothing probabilistically."""
        return all(getattr(self, name) == 0.0 for name in self._RATES)


@dataclass(frozen=True)
class ScheduledFault:
    """One fault pinned to an absolute simulation time.

    ``POOL_DEATH`` kills ``count`` idle pooled containers on ``host``;
    ``HOST_OUTAGE`` takes ``host`` down for ``duration_ms`` (idle
    containers die instantly, in-flight boots and executions fail with
    :class:`~repro.faults.errors.HostDownError` when they complete).
    """

    at_ms: float
    kind: FaultKind
    host: str = ""
    duration_ms: float = 0.0
    count: int = 1
    #: Latency multiplier applied for GRAY_SLOWDOWN's duration.
    factor: float = 2.0

    #: Kinds that run for a duration and therefore require one.
    _TIMED = (
        FaultKind.HOST_OUTAGE,
        FaultKind.GRAY_SLOWDOWN,
        FaultKind.PARTITION,
        FaultKind.HEARTBEAT_LOSS,
        FaultKind.CONTROLLER_CRASH,
    )

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("at_ms must be >= 0")
        if self.kind in (
            FaultKind.BOOT_FAILURE,
            FaultKind.BOOT_STRAGGLER,
            FaultKind.TRANSIENT_ERROR,
            FaultKind.EXEC_CRASH,
            FaultKind.MEMORY_LEAK,
            FaultKind.STATE_POISON,
            FaultKind.PERF_DECAY,
            FaultKind.CRASH_LOOP,
        ):
            raise ValueError(
                f"{self.kind} is probabilistic (FaultSpec), not schedulable"
            )
        if self.kind in self._TIMED and self.duration_ms <= 0:
            raise ValueError(f"{self.kind.value} needs duration_ms > 0")
        if self.kind is FaultKind.GRAY_SLOWDOWN and self.factor <= 1.0:
            raise ValueError("GRAY_SLOWDOWN needs factor > 1")
        if self.count < 1:
            raise ValueError("count must be >= 1")


@dataclass
class FaultStats:
    """Counts of faults actually injected (one instance per plan)."""

    boot_failures: int = 0
    boot_stragglers: int = 0
    transient_errors: int = 0
    exec_crashes: int = 0
    pool_deaths: int = 0
    host_outages: int = 0
    gray_slowdowns: int = 0
    partitions: int = 0
    heartbeat_losses: int = 0
    controller_crashes: int = 0
    memory_leaks: int = 0
    state_poisons: int = 0
    perf_decays: int = 0
    crash_loops: int = 0

    @property
    def total(self) -> int:
        """All injected faults."""
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> Dict[str, int]:
        """Counter name → count (report input)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultPlan:
    """A seeded set of probabilistic rates plus scheduled faults.

    Parameters
    ----------
    seed:
        Root seed; every injector stream and every scheduled-fault
        target choice is derived from it.
    spec:
        Probabilistic rates (defaults to all-zero: no probabilistic
        faults).
    scheduled:
        :class:`ScheduledFault` entries, stored sorted by time so the
        schedule is order-independent of construction.
    """

    def __init__(
        self,
        seed: int = 0,
        spec: Optional[FaultSpec] = None,
        scheduled: Iterable[ScheduledFault] = (),
    ) -> None:
        self.seed = int(seed)
        self.spec = spec or FaultSpec()
        self.scheduled: Tuple[ScheduledFault, ...] = tuple(
            sorted(scheduled, key=lambda f: (f.at_ms, f.host, f.kind.value))
        )
        #: Injected-fault counters, shared by every injector of the plan.
        self.stats = FaultStats()

    # -- construction helpers -------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: attaches injectors that never fire."""
        return cls(seed=0)

    @classmethod
    def random(
        cls,
        seed: int,
        duration_ms: float,
        hosts: Sequence[str] = ("host-0",),
        spec: Optional[FaultSpec] = None,
        pool_deaths: int = 3,
        outages: int = 1,
        outage_ms: float = 5_000.0,
        gray_slowdowns: int = 0,
        gray_ms: float = 10_000.0,
        gray_factor: float = 3.0,
        partitions: int = 0,
        partition_ms: float = 5_000.0,
        heartbeat_losses: int = 0,
        heartbeat_loss_ms: float = 3_000.0,
        controller_crashes: int = 0,
        controller_crash_ms: float = 1_500.0,
        memory_leak_rate: float = 0.0,
        memory_leak_mb: float = 8.0,
        state_poison_rate: float = 0.0,
        perf_decay_rate: float = 0.0,
        perf_decay_factor: float = 1.05,
        crash_loop_rate: float = 0.0,
        crash_loop_after: int = 5,
    ) -> "FaultPlan":
        """A randomized-but-deterministic plan for chaos runs.

        Scheduled pool deaths and host outages are drawn uniformly over
        ``[0, duration_ms)`` (timed faults over the first 80% so
        recovery is observable); the same ``seed`` always yields the
        identical schedule.  ``spec`` defaults to a moderate
        probabilistic mix.  The gray-failure and controller-crash kinds
        default to zero occurrences, and the container-degradation
        rates (memory leak, state poison, perf decay, crash loop)
        default to zero, so existing plans are unchanged.
        Controller crashes are stratified over equal slices of the run
        so consecutive crash/recover windows never overlap.
        """
        if duration_ms <= 0:
            raise ValueError("duration_ms must be > 0")
        if not hosts:
            raise ValueError("need at least one host name")
        rng = np.random.default_rng(derive_seed(seed, "fault-plan"))
        scheduled = []
        for _ in range(pool_deaths):
            scheduled.append(
                ScheduledFault(
                    at_ms=float(rng.uniform(0.0, duration_ms)),
                    kind=FaultKind.POOL_DEATH,
                    host=str(hosts[int(rng.integers(len(hosts)))]),
                )
            )
        for _ in range(outages):
            scheduled.append(
                ScheduledFault(
                    at_ms=float(rng.uniform(0.0, duration_ms * 0.8)),
                    kind=FaultKind.HOST_OUTAGE,
                    host=str(hosts[int(rng.integers(len(hosts)))]),
                    duration_ms=float(outage_ms),
                )
            )
        timed = (
            (gray_slowdowns, FaultKind.GRAY_SLOWDOWN, gray_ms),
            (partitions, FaultKind.PARTITION, partition_ms),
            (heartbeat_losses, FaultKind.HEARTBEAT_LOSS, heartbeat_loss_ms),
        )
        for n, kind, fault_ms in timed:
            for _ in range(n):
                extra = (
                    {"factor": float(gray_factor)}
                    if kind is FaultKind.GRAY_SLOWDOWN
                    else {}
                )
                scheduled.append(
                    ScheduledFault(
                        at_ms=float(rng.uniform(0.0, duration_ms * 0.8)),
                        kind=kind,
                        host=str(hosts[int(rng.integers(len(hosts)))]),
                        duration_ms=float(fault_ms),
                        **extra,
                    )
                )
        if controller_crashes > 0:
            span = duration_ms * 0.8
            slice_ms = span / controller_crashes
            if controller_crash_ms >= slice_ms:
                raise ValueError(
                    "controller_crash_ms must be shorter than the per-crash "
                    f"slice ({slice_ms:.0f} ms) so crash windows never overlap"
                )
            for index in range(controller_crashes):
                # Uniform within the slice, leaving room for the recovery.
                lo = index * slice_ms
                hi = (index + 1) * slice_ms - controller_crash_ms
                scheduled.append(
                    ScheduledFault(
                        at_ms=float(rng.uniform(lo, hi)),
                        kind=FaultKind.CONTROLLER_CRASH,
                        duration_ms=float(controller_crash_ms),
                    )
                )
        if spec is None:
            spec = FaultSpec(
                boot_failure_rate=0.10,
                boot_straggler_rate=0.05,
                boot_straggler_ms=2_000.0,
                transient_error_rate=0.05,
                exec_crash_rate=0.05,
            )
        if (
            memory_leak_rate
            or state_poison_rate
            or perf_decay_rate
            or crash_loop_rate
        ):
            # Degradation rates layer onto the spec (default or caller
            # supplied); all-zero keeps the spec — and thus every
            # existing plan — untouched.
            spec = replace(
                spec,
                memory_leak_rate=memory_leak_rate,
                memory_leak_mb=memory_leak_mb,
                state_poison_rate=state_poison_rate,
                perf_decay_rate=perf_decay_rate,
                perf_decay_factor=perf_decay_factor,
                crash_loop_rate=crash_loop_rate,
                crash_loop_after=crash_loop_after,
            )
        return cls(seed=seed, spec=spec, scheduled=tuple(scheduled))

    # -- installation ---------------------------------------------------------
    def install(self, sim, engines, recovery=None) -> Dict[str, "FaultInjector"]:
        """Attach one injector per engine and arm the scheduled faults.

        Scheduled entries naming an unknown host target the first
        engine.  ``recovery`` is the
        :class:`~repro.recovery.RecoveryManager` that CONTROLLER_CRASH
        entries crash and recover; scheduling one without a manager is a
        plan error.  Returns the injectors by engine name.
        """
        from repro.faults.injector import FaultInjector

        engines = list(engines)
        if not engines:
            raise ValueError("install() needs at least one engine")
        by_name = {engine.name: engine for engine in engines}
        injectors: Dict[str, FaultInjector] = {}
        for engine in engines:
            injector = FaultInjector(
                spec=self.spec,
                rng=np.random.default_rng(
                    derive_seed(self.seed, f"faults:{engine.name}")
                ),
                stats=self.stats,
            )
            engine.attach_fault_injector(injector)
            injectors[engine.name] = injector
        victim_rng = np.random.default_rng(
            derive_seed(self.seed, "faults:scheduled")
        )
        for fault in self.scheduled:
            engine = by_name.get(fault.host, engines[0])
            injector = injectors[engine.name]
            delay = max(0.0, fault.at_ms - sim.now)
            after = delay + fault.duration_ms
            if fault.kind is FaultKind.POOL_DEATH:
                sim.schedule(delay, self._kill_idle, engine, fault.count, victim_rng)
            elif fault.kind is FaultKind.HOST_OUTAGE:
                sim.schedule(delay, self._begin_outage, engine, injector)
                sim.schedule(after, self._end_outage, injector)
            elif fault.kind is FaultKind.GRAY_SLOWDOWN:
                sim.schedule(delay, self._begin_gray, injector, fault.factor)
                sim.schedule(after, self._end_gray, injector)
            elif fault.kind is FaultKind.PARTITION:
                sim.schedule(delay, self._begin_partition, injector)
                sim.schedule(after, self._end_partition, injector)
            elif fault.kind is FaultKind.HEARTBEAT_LOSS:
                sim.schedule(delay, self._begin_heartbeat_loss, injector)
                sim.schedule(after, self._end_heartbeat_loss, injector)
            else:  # CONTROLLER_CRASH
                if recovery is None:
                    raise ValueError(
                        "the plan schedules a CONTROLLER_CRASH but no "
                        "recovery manager was passed to install()"
                    )
                sim.schedule(delay, self._crash_controller, recovery)
                sim.schedule(after, self._recover_controller, recovery)
        return injectors

    # -- scheduled-fault executors (simulator callbacks) ----------------------
    def _kill_idle(self, engine, count: int, rng: np.random.Generator) -> None:
        candidates = sorted(
            (c for c in engine.live_containers() if c.is_reusable),
            key=lambda c: c.container_id,
        )
        for _ in range(min(count, len(candidates))):
            victim = candidates.pop(int(rng.integers(len(candidates))))
            engine.kill_container(victim)
            self.stats.pool_deaths += 1

    def _begin_outage(self, engine, injector) -> None:
        injector.down = True
        self.stats.host_outages += 1
        # Idle containers die with the host; busy ones crash when their
        # in-flight execution (or boot) reaches its completion check.
        for container in engine.live_containers():
            if container.is_reusable:
                engine.kill_container(container)

    def _end_outage(self, injector) -> None:
        injector.down = False

    def _begin_gray(self, injector, factor: float) -> None:
        injector.latency_multiplier = factor
        self.stats.gray_slowdowns += 1

    def _end_gray(self, injector) -> None:
        injector.latency_multiplier = 1.0

    def _begin_partition(self, injector) -> None:
        # Unreachable but alive: new boots are refused and heartbeats
        # stop, yet no container is killed — the warm pool survives.
        injector.partitioned = True
        self.stats.partitions += 1

    def _end_partition(self, injector) -> None:
        injector.partitioned = False

    def _begin_heartbeat_loss(self, injector) -> None:
        injector.heartbeats_lost = True
        self.stats.heartbeat_losses += 1

    def _end_heartbeat_loss(self, injector) -> None:
        injector.heartbeats_lost = False

    def _crash_controller(self, recovery) -> None:
        if recovery.crash():
            self.stats.controller_crashes += 1

    def _recover_controller(self, recovery) -> None:
        recovery.recover()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultPlan seed={self.seed} scheduled={len(self.scheduled)} "
            f"spec_zero={self.spec.is_zero}>"
        )
