"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is the single source of truth for everything that
goes wrong in a run: *probabilistic* faults (a rate per decision point,
drawn from a named RNG stream per host) and *scheduled* faults (a fixed
``(time, kind, host)`` list executed by simulator callbacks).  Two plans
built from the same seed produce bit-identical injection schedules and
per-decision draws, so every chaos run is reproducible.

Usage::

    plan = FaultPlan.random(seed=7, duration_ms=60_000, hosts=("host-0",))
    injectors = plan.install(platform.sim, [platform.engine])
    platform.run(until=120_000)
    print(plan.stats)          # what was actually injected
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.sim.rng import derive_seed

__all__ = ["FaultKind", "FaultPlan", "FaultSpec", "FaultStats", "ScheduledFault"]


class FaultKind(enum.Enum):
    """Every failure mode the subsystem can inject."""

    BOOT_FAILURE = "boot_failure"
    BOOT_STRAGGLER = "boot_straggler"
    TRANSIENT_ERROR = "transient_error"
    EXEC_CRASH = "exec_crash"
    POOL_DEATH = "pool_death"
    HOST_OUTAGE = "host_outage"


@dataclass(frozen=True)
class FaultSpec:
    """Probabilistic fault rates, applied per decision point.

    ``boot_*`` and ``transient_error_rate`` are evaluated once per boot
    attempt; ``exec_crash_rate`` once per execution.  A rate of 0
    removes that decision entirely (no RNG draw is consumed), so a
    zero-rate spec leaves the simulation bit-identical to one with no
    injector attached.
    """

    boot_failure_rate: float = 0.0
    boot_straggler_rate: float = 0.0
    #: Extra delay a straggling boot pays before proceeding.
    boot_straggler_ms: float = 10_000.0
    transient_error_rate: float = 0.0
    exec_crash_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "boot_failure_rate",
            "boot_straggler_rate",
            "transient_error_rate",
            "exec_crash_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.boot_straggler_ms < 0:
            raise ValueError("boot_straggler_ms must be >= 0")

    @property
    def is_zero(self) -> bool:
        """Whether this spec injects nothing probabilistically."""
        return (
            self.boot_failure_rate == 0.0
            and self.boot_straggler_rate == 0.0
            and self.transient_error_rate == 0.0
            and self.exec_crash_rate == 0.0
        )


@dataclass(frozen=True)
class ScheduledFault:
    """One fault pinned to an absolute simulation time.

    ``POOL_DEATH`` kills ``count`` idle pooled containers on ``host``;
    ``HOST_OUTAGE`` takes ``host`` down for ``duration_ms`` (idle
    containers die instantly, in-flight boots and executions fail with
    :class:`~repro.faults.errors.HostDownError` when they complete).
    """

    at_ms: float
    kind: FaultKind
    host: str = ""
    duration_ms: float = 0.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("at_ms must be >= 0")
        if self.kind not in (FaultKind.POOL_DEATH, FaultKind.HOST_OUTAGE):
            raise ValueError(
                f"only POOL_DEATH and HOST_OUTAGE can be scheduled, got {self.kind}"
            )
        if self.kind is FaultKind.HOST_OUTAGE and self.duration_ms <= 0:
            raise ValueError("HOST_OUTAGE needs duration_ms > 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")


@dataclass
class FaultStats:
    """Counts of faults actually injected (one instance per plan)."""

    boot_failures: int = 0
    boot_stragglers: int = 0
    transient_errors: int = 0
    exec_crashes: int = 0
    pool_deaths: int = 0
    host_outages: int = 0

    @property
    def total(self) -> int:
        """All injected faults."""
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> Dict[str, int]:
        """Counter name → count (report input)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultPlan:
    """A seeded set of probabilistic rates plus scheduled faults.

    Parameters
    ----------
    seed:
        Root seed; every injector stream and every scheduled-fault
        target choice is derived from it.
    spec:
        Probabilistic rates (defaults to all-zero: no probabilistic
        faults).
    scheduled:
        :class:`ScheduledFault` entries, stored sorted by time so the
        schedule is order-independent of construction.
    """

    def __init__(
        self,
        seed: int = 0,
        spec: Optional[FaultSpec] = None,
        scheduled: Iterable[ScheduledFault] = (),
    ) -> None:
        self.seed = int(seed)
        self.spec = spec or FaultSpec()
        self.scheduled: Tuple[ScheduledFault, ...] = tuple(
            sorted(scheduled, key=lambda f: (f.at_ms, f.host, f.kind.value))
        )
        #: Injected-fault counters, shared by every injector of the plan.
        self.stats = FaultStats()

    # -- construction helpers -------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: attaches injectors that never fire."""
        return cls(seed=0)

    @classmethod
    def random(
        cls,
        seed: int,
        duration_ms: float,
        hosts: Sequence[str] = ("host-0",),
        spec: Optional[FaultSpec] = None,
        pool_deaths: int = 3,
        outages: int = 1,
        outage_ms: float = 5_000.0,
    ) -> "FaultPlan":
        """A randomized-but-deterministic plan for chaos runs.

        Scheduled pool deaths and host outages are drawn uniformly over
        ``[0, duration_ms)`` (outages over the first 80% so recovery is
        observable); the same ``seed`` always yields the identical
        schedule.  ``spec`` defaults to a moderate probabilistic mix.
        """
        if duration_ms <= 0:
            raise ValueError("duration_ms must be > 0")
        if not hosts:
            raise ValueError("need at least one host name")
        rng = np.random.default_rng(derive_seed(seed, "fault-plan"))
        scheduled = []
        for _ in range(pool_deaths):
            scheduled.append(
                ScheduledFault(
                    at_ms=float(rng.uniform(0.0, duration_ms)),
                    kind=FaultKind.POOL_DEATH,
                    host=str(hosts[int(rng.integers(len(hosts)))]),
                )
            )
        for _ in range(outages):
            scheduled.append(
                ScheduledFault(
                    at_ms=float(rng.uniform(0.0, duration_ms * 0.8)),
                    kind=FaultKind.HOST_OUTAGE,
                    host=str(hosts[int(rng.integers(len(hosts)))]),
                    duration_ms=float(outage_ms),
                )
            )
        if spec is None:
            spec = FaultSpec(
                boot_failure_rate=0.10,
                boot_straggler_rate=0.05,
                boot_straggler_ms=2_000.0,
                transient_error_rate=0.05,
                exec_crash_rate=0.05,
            )
        return cls(seed=seed, spec=spec, scheduled=tuple(scheduled))

    # -- installation ---------------------------------------------------------
    def install(self, sim, engines) -> Dict[str, "FaultInjector"]:
        """Attach one injector per engine and arm the scheduled faults.

        Scheduled entries naming an unknown host target the first
        engine.  Returns the injectors by engine name.
        """
        from repro.faults.injector import FaultInjector

        engines = list(engines)
        if not engines:
            raise ValueError("install() needs at least one engine")
        by_name = {engine.name: engine for engine in engines}
        injectors: Dict[str, FaultInjector] = {}
        for engine in engines:
            injector = FaultInjector(
                spec=self.spec,
                rng=np.random.default_rng(
                    derive_seed(self.seed, f"faults:{engine.name}")
                ),
                stats=self.stats,
            )
            engine.attach_fault_injector(injector)
            injectors[engine.name] = injector
        victim_rng = np.random.default_rng(
            derive_seed(self.seed, "faults:scheduled")
        )
        for fault in self.scheduled:
            engine = by_name.get(fault.host, engines[0])
            delay = max(0.0, fault.at_ms - sim.now)
            if fault.kind is FaultKind.POOL_DEATH:
                sim.schedule(delay, self._kill_idle, engine, fault.count, victim_rng)
            else:  # HOST_OUTAGE
                injector = injectors[engine.name]
                sim.schedule(delay, self._begin_outage, engine, injector)
                sim.schedule(delay + fault.duration_ms, self._end_outage, injector)
        return injectors

    # -- scheduled-fault executors (simulator callbacks) ----------------------
    def _kill_idle(self, engine, count: int, rng: np.random.Generator) -> None:
        candidates = sorted(
            (c for c in engine.live_containers() if c.is_reusable),
            key=lambda c: c.container_id,
        )
        for _ in range(min(count, len(candidates))):
            victim = candidates.pop(int(rng.integers(len(candidates))))
            engine.kill_container(victim)
            self.stats.pool_deaths += 1

    def _begin_outage(self, engine, injector) -> None:
        injector.down = True
        self.stats.host_outages += 1
        # Idle containers die with the host; busy ones crash when their
        # in-flight execution (or boot) reaches its completion check.
        for container in engine.live_containers():
            if container.is_reusable:
                engine.kill_container(container)

    def _end_outage(self, injector) -> None:
        injector.down = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultPlan seed={self.seed} scheduled={len(self.scheduled)} "
            f"spec_zero={self.spec.is_zero}>"
        )
