"""Per-host fault injector: the hook surface the engine consults.

One :class:`FaultInjector` is attached to each
:class:`~repro.containers.engine.ContainerEngine` (see
``FaultPlan.install``).  The engine consults it at two decision points:

* :meth:`boot_gate` at the start of every ``boot_container`` — may
  raise (host down / transient error / boot failure) or delay (boot
  straggler);
* :meth:`exec_crash_point` at the start of every execution — returns
  the time offset at which the exec should crash, or ``None``.

Probabilistic decisions draw from the injector's own RNG stream in a
fixed order, so runs are reproducible given the same seed and workload.
Unit tests can bypass probability entirely with the ``*_next_*``
scripting hooks, which inject exactly-N deterministic faults.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.faults.errors import (
    BootFailure,
    HostDownError,
    TransientEngineError,
)
from repro.faults.plan import FaultSpec, FaultStats

__all__ = ["FaultInjector"]


class FaultInjector:
    """Decides, per engine operation, whether and how to fail it."""

    def __init__(
        self,
        spec: Optional[FaultSpec] = None,
        rng: Optional[np.random.Generator] = None,
        stats: Optional[FaultStats] = None,
    ) -> None:
        #: Mutable on purpose: tests flip rates mid-run to steer phases.
        self.spec = spec or FaultSpec()
        self.rng = rng or np.random.default_rng(0)
        self.stats = stats or FaultStats()
        #: Host-outage flag, toggled by the plan's scheduled callbacks.
        self.down = False
        #: Network-partition flag: the host is unreachable (new boots
        #: refused, heartbeats lost) but its containers stay alive.
        self.partitioned = False
        #: Gray-slowdown multiplier applied to boot/exec stage latencies
        #: (1.0 = healthy; the engine multiplies timeouts by this).
        self.latency_multiplier = 1.0
        #: Telemetry-only fault: heartbeats stop while the data plane
        #: keeps serving (exercises the failure detector's false-alarm
        #: handling).
        self.heartbeats_lost = False
        self._forced_boot_failures = 0
        self._forced_transient_errors = 0
        self._forced_exec_crashes = 0
        self._forced_boot_delays: List[float] = []
        self._forced_leaks: List[float] = []
        self._forced_decays: List[float] = []
        self._forced_crash_loops: List[int] = []
        self._forced_poisons = 0

    # -- scripting hooks (deterministic unit-test control) --------------------
    def fail_next_boots(self, n: int = 1) -> None:
        """Force the next ``n`` boots to raise :class:`BootFailure`."""
        self._forced_boot_failures += n

    def glitch_next_boots(self, n: int = 1) -> None:
        """Force the next ``n`` boots to raise :class:`TransientEngineError`."""
        self._forced_transient_errors += n

    def delay_next_boots(self, ms: float, n: int = 1) -> None:
        """Make the next ``n`` boots straggle by ``ms`` milliseconds."""
        self._forced_boot_delays.extend([float(ms)] * n)

    def crash_next_execs(self, n: int = 1) -> None:
        """Force the next ``n`` executions to crash mid-run."""
        self._forced_exec_crashes += n

    def leak_next_boots(self, slope_mb: float, n: int = 1) -> None:
        """Give the next ``n`` booted containers a memory leak."""
        self._forced_leaks.extend([float(slope_mb)] * n)

    def decay_next_boots(self, factor: float, n: int = 1) -> None:
        """Give the next ``n`` booted containers compounding perf decay."""
        self._forced_decays.extend([float(factor)] * n)

    def crashloop_next_boots(self, after: int, n: int = 1) -> None:
        """Make the next ``n`` booted containers crash-loop after
        ``after`` completed execs."""
        self._forced_crash_loops.extend([int(after)] * n)

    def poison_next_execs(self, n: int = 1) -> None:
        """Leave the container dirty after each of the next ``n``
        successful executions."""
        self._forced_poisons += n

    # -- engine hook: boot path ------------------------------------------------
    def host_is_down(self) -> bool:
        """Whether a scheduled outage currently holds the host down."""
        return self.down

    def boot_gate(self, engine) -> Generator:
        """Process fragment run at the top of every ``boot_container``.

        Raises the selected fault (counting it both as injected on the
        plan's :class:`FaultStats` and as observed on the engine's
        stats) or delays the boot for a straggler.  Order of checks:
        outage, transient error, boot failure, straggler.
        """
        if self.down:
            raise HostDownError(f"host {engine.name} is down")
        if self.partitioned:
            raise HostDownError(
                f"host {engine.name} is unreachable (network partition)"
            )
        if self._forced_transient_errors > 0:
            self._forced_transient_errors -= 1
            yield from self._raise_transient(engine)
        if self._forced_boot_failures > 0:
            self._forced_boot_failures -= 1
            yield from self._raise_boot_failure(engine)
        if self._forced_boot_delays:
            yield from self._straggle(engine, self._forced_boot_delays.pop(0))
        spec = self.spec
        if spec.transient_error_rate and self.rng.random() < spec.transient_error_rate:
            yield from self._raise_transient(engine)
        if spec.boot_failure_rate and self.rng.random() < spec.boot_failure_rate:
            yield from self._raise_boot_failure(engine)
        if spec.boot_straggler_rate and self.rng.random() < spec.boot_straggler_rate:
            yield from self._straggle(engine, spec.boot_straggler_ms)

    def _raise_transient(self, engine) -> Generator:
        self.stats.transient_errors += 1
        engine.stats.transient_errors += 1
        raise TransientEngineError(f"injected transient error on {engine.name}")
        yield  # pragma: no cover - generator marker

    def _raise_boot_failure(self, engine) -> Generator:
        self.stats.boot_failures += 1
        engine.stats.boot_failures += 1
        raise BootFailure(f"injected boot failure on {engine.name}")
        yield  # pragma: no cover - generator marker

    def _straggle(self, engine, ms: float) -> Generator:
        self.stats.boot_stragglers += 1
        yield engine.sim.timeout(ms)

    # -- engine hook: exec path ------------------------------------------------
    def exec_crash_point(self, exec_ms: float) -> Optional[float]:
        """When (ms into the exec) the execution should crash, else ``None``.

        The engine calls this once per execution with the already
        jittered exec duration; a crash lands somewhere inside it.
        """
        if self._forced_exec_crashes > 0:
            self._forced_exec_crashes -= 1
            self.stats.exec_crashes += 1
            return exec_ms * 0.5
        spec = self.spec
        if spec.exec_crash_rate and self.rng.random() < spec.exec_crash_rate:
            self.stats.exec_crashes += 1
            return exec_ms * float(self.rng.uniform(0.1, 0.9))
        return None

    # -- engine hook: container degradation ------------------------------------
    def assign_degradation(self, container) -> None:
        """Afflict a freshly booted container (called once per boot).

        Decision order is fixed — memory leak, perf decay, crash loop —
        and each zero-rate kind consumes no RNG draw, so an all-zero
        spec leaves the boot path bit-identical.  Scripted hooks take
        precedence over (and skip) the probabilistic draw of their kind.
        """
        spec = self.spec
        if self._forced_leaks:
            container.leak_slope_mb = self._forced_leaks.pop(0)
            self.stats.memory_leaks += 1
        elif spec.memory_leak_rate and self.rng.random() < spec.memory_leak_rate:
            container.leak_slope_mb = spec.memory_leak_mb
            self.stats.memory_leaks += 1
        if self._forced_decays:
            container.decay_factor = self._forced_decays.pop(0)
            self.stats.perf_decays += 1
        elif spec.perf_decay_rate and self.rng.random() < spec.perf_decay_rate:
            container.decay_factor = spec.perf_decay_factor
            self.stats.perf_decays += 1
        if self._forced_crash_loops:
            container.crash_loop_after = self._forced_crash_loops.pop(0)
            self.stats.crash_loops += 1
        elif spec.crash_loop_rate and self.rng.random() < spec.crash_loop_rate:
            container.crash_loop_after = spec.crash_loop_after
            self.stats.crash_loops += 1

    def exec_poison(self) -> bool:
        """Whether this (successful) exec leaves the container dirty.

        Called once per successful execution on a not-yet-poisoned
        container; a zero rate consumes no RNG draw.
        """
        if self._forced_poisons > 0:
            self._forced_poisons -= 1
            self.stats.state_poisons += 1
            return True
        spec = self.spec
        if spec.state_poison_rate and self.rng.random() < spec.state_poison_rate:
            self.stats.state_poisons += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector down={self.down} spec_zero={self.spec.is_zero}>"
