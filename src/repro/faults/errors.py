"""Failure taxonomy of the fault-injection subsystem.

All injected faults derive from :class:`InjectedFault`, itself a
:class:`~repro.containers.container.ContainerError`, so every existing
``except ContainerError`` site already treats an injected fault like a
real engine failure.  The middleware distinguishes three recovery
classes:

* **retryable on the same host** — :class:`BootFailure`,
  :class:`TransientEngineError`: a fresh boot attempt may succeed, so
  HotC retries with exponential backoff (and the per-key circuit
  breaker counts the failures).
* **host-level** — :class:`HostDownError`: retrying on the same host is
  pointless; the cluster scheduler fails over to the next-best host.
* **request-level** — :class:`ExecCrash`: the container died mid
  execution; the watchdog discards it and retries the whole request.
  :class:`StatePoisonError` is its sibling for contaminated runtimes:
  the container is intact but its interpreter state is dirty, so the
  exec fails instantly and the watchdog discards the container.

:class:`RuntimeUnavailableError` is *not* injected: it is raised by the
middleware itself when a circuit breaker is open (fail fast instead of
queueing boot attempts behind a failing runtime type).
"""

from __future__ import annotations

from repro.containers.container import ContainerError

__all__ = [
    "BootFailure",
    "ExecCrash",
    "HostDownError",
    "InjectedFault",
    "RuntimeUnavailableError",
    "StatePoisonError",
    "TransientEngineError",
]


class InjectedFault(ContainerError):
    """Base class of every failure produced by a :class:`FaultPlan`."""


class BootFailure(InjectedFault):
    """A container boot failed outright (image corrupt, runc error)."""


class TransientEngineError(InjectedFault):
    """A one-off engine hiccup (daemon restart, API timeout); retryable."""


class ExecCrash(InjectedFault):
    """The container died mid-execution (OOM kill, segfault)."""


class StatePoisonError(InjectedFault):
    """The container's runtime state was left dirty by an earlier
    execution or re-spec; execs on it fail until it is sanitized or
    destroyed."""


class HostDownError(InjectedFault):
    """The whole backend host is unreachable (outage in progress)."""


class RuntimeUnavailableError(ContainerError):
    """Fail-fast refusal: the circuit breaker for this runtime key is
    open (or no healthy host is left to route to)."""
