"""Deterministic fault injection (the reliability extension, Section VII).

The paper's middleware keeps *live* container runtimes, so real
deployments must survive runtimes that die: failed and straggling
boots, containers crashing mid-execution, pooled runtimes OOM-killed
out from under the pool, transient engine errors, and whole-host
outages.  This package injects all of those deterministically:

* :class:`~repro.faults.plan.FaultPlan` — a seeded plan of
  probabilistic rates plus scheduled faults; same seed, same schedule.
* :class:`~repro.faults.injector.FaultInjector` — the per-host hook
  surface :class:`~repro.containers.engine.ContainerEngine` consults on
  every boot and execution.
* :mod:`~repro.faults.errors` — the failure taxonomy consumers
  recover from (retry + backoff, hedged boot, circuit breaker, cluster
  failover, bounded request retries).
"""

from repro.faults.errors import (
    BootFailure,
    ExecCrash,
    HostDownError,
    InjectedFault,
    RuntimeUnavailableError,
    StatePoisonError,
    TransientEngineError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultStats,
    ScheduledFault,
)

__all__ = [
    "BootFailure",
    "ExecCrash",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultStats",
    "HostDownError",
    "InjectedFault",
    "RuntimeUnavailableError",
    "ScheduledFault",
    "StatePoisonError",
    "TransientEngineError",
]
