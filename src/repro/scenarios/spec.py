"""Declarative scenario specifications.

A :class:`ScenarioSpec` names everything one run needs — the traffic
(a figure-style request pattern or a :class:`~repro.workloads.tracegen.
TraceConfig` production trace), the cluster shape, an optional fault
plan and admission policy, and the arms to run — and compiles to a
:class:`~repro.scenarios.report.ScenarioReport` via
:func:`repro.scenarios.runner.run_scenario`.

Specs are plain frozen dataclasses: picklable (for ``--jobs N`` arm
parallelism), JSON round-trippable (:meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict`) and deterministic given their seed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Optional, Tuple

from repro.workloads.patterns import (
    BurstPattern,
    ExponentialPattern,
    LinearPattern,
    ParallelPattern,
    PoissonPattern,
    RequestPattern,
    SerialPattern,
    SinusoidalPattern,
)
from repro.workloads.tracegen import TraceConfig

__all__ = [
    "AdmissionSpec",
    "ArmSpec",
    "ClusterSpec",
    "FaultsSpec",
    "ScenarioSpec",
    "TrafficSpec",
    "load_spec",
]

#: JSON-expressible pattern types (``MarkovModulatedPattern`` and
#: ``TracePattern`` carry non-scalar state and stay Python-only).
_PATTERN_TYPES: Dict[str, type] = {
    "serial": SerialPattern,
    "parallel": ParallelPattern,
    "linear": LinearPattern,
    "exponential": ExponentialPattern,
    "burst": BurstPattern,
    "poisson": PoissonPattern,
    "sinusoidal": SinusoidalPattern,
}


def _pattern_to_dict(pattern: RequestPattern) -> Dict[str, object]:
    for name, cls in _PATTERN_TYPES.items():
        if type(pattern) is cls:
            params = {
                key: sorted(value) if isinstance(value, frozenset) else value
                for key, value in vars(pattern).items()
                if not key.startswith("_")
            }
            return {"type": name, **params}
    raise ValueError(
        f"pattern {type(pattern).__name__} is not JSON-expressible; "
        f"supported: {sorted(_PATTERN_TYPES)}"
    )


def _pattern_from_dict(data: Dict[str, object]) -> RequestPattern:
    params = dict(data)
    type_name = params.pop("type", None)
    cls = _PATTERN_TYPES.get(str(type_name))
    if cls is None:
        raise ValueError(
            f"unknown pattern type {type_name!r}; known: {sorted(_PATTERN_TYPES)}"
        )
    return cls(**params)


def _dataclass_from_dict(cls, data: Dict[str, object]):
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"{cls.__name__}: unknown fields {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    return cls(**data)


@dataclass(frozen=True)
class ClusterSpec:
    """Cluster shape: host count, placement policy, and jitter."""

    n_hosts: int = 1
    placement: str = "reuse-aware"
    jitter_sigma: float = 0.06

    def __post_init__(self) -> None:
        if self.n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        if self.placement not in ("reuse-aware", "round-robin"):
            raise ValueError(f"unknown placement {self.placement!r}")


@dataclass(frozen=True)
class TrafficSpec:
    """What drives the run: a figure pattern or a production trace.

    ``kind="pattern"`` replays a round-structured request pattern
    through the full FaaS gateway stack (exactly what Figs 12–14 do);
    ``kind="trace"`` streams a :class:`TraceConfig` arrival schedule
    directly into a multi-host provider with bounded-memory per-tenant
    accounting.
    """

    kind: str = "pattern"
    pattern: Optional[RequestPattern] = None
    trace: Optional[TraceConfig] = None
    #: Trace mode: warm handler cost and one-time app init per key.
    exec_ms: float = 15.0
    app_init_ms: float = 0.0
    #: Trace mode: distinct base images cycled over the key space.
    n_images: int = 3

    def __post_init__(self) -> None:
        if self.kind not in ("pattern", "trace"):
            raise ValueError(f"traffic kind must be pattern|trace, got {self.kind!r}")
        if self.kind == "pattern" and self.pattern is None:
            raise ValueError("pattern traffic needs a pattern")
        if self.kind == "trace" and self.trace is None:
            raise ValueError("trace traffic needs a TraceConfig")
        if self.exec_ms < 0 or self.app_init_ms < 0:
            raise ValueError("cost fields must be >= 0")
        if not 1 <= self.n_images <= 3:
            raise ValueError("n_images must be in [1, 3]")


@dataclass(frozen=True)
class ArmSpec:
    """One run of the scenario's traffic under a provider configuration."""

    name: str
    use_hotc: bool = True
    adaptive: bool = False
    control_interval_ms: float = 5_000.0
    #: Pattern mode: distinct runtime configurations (fig 12b threads).
    n_functions: int = 1
    gateway_concurrency: int = 1024
    #: Trace mode: enable the per-container health plane (aging,
    #: contamination, token-bucket recycling) with default tunables.
    container_health: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("arm name must be non-empty")
        if self.n_functions < 1:
            raise ValueError("n_functions must be >= 1")
        if self.control_interval_ms <= 0:
            raise ValueError("control_interval_ms must be > 0")
        if self.gateway_concurrency < 1:
            raise ValueError("gateway_concurrency must be >= 1")
        if self.container_health and not self.use_hotc:
            raise ValueError(
                "container_health needs use_hotc (the cold-boot baseline "
                "pools no containers to recycle)"
            )


@dataclass(frozen=True)
class FaultsSpec:
    """Declarative fault plan (compiled via ``FaultPlan.random``)."""

    pool_deaths: int = 0
    outages: int = 0
    outage_ms: float = 5_000.0
    gray_slowdowns: int = 0
    gray_ms: float = 10_000.0
    gray_factor: float = 3.0
    #: Container-degradation rates (per boot / per exec); zero keeps
    #: the degradation lottery fully inert (no RNG draws).
    memory_leak_rate: float = 0.0
    memory_leak_mb: float = 8.0
    state_poison_rate: float = 0.0
    perf_decay_rate: float = 0.0
    perf_decay_factor: float = 1.05
    crash_loop_rate: float = 0.0
    crash_loop_after: int = 5

    def __post_init__(self) -> None:
        if min(self.pool_deaths, self.outages, self.gray_slowdowns) < 0:
            raise ValueError("fault counts must be >= 0")
        for name in (
            "memory_leak_rate",
            "state_poison_rate",
            "perf_decay_rate",
            "crash_loop_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.memory_leak_mb <= 0:
            raise ValueError("memory_leak_mb must be > 0")
        if self.perf_decay_factor <= 1.0:
            raise ValueError("perf_decay_factor must be > 1")
        if self.crash_loop_after < 1:
            raise ValueError("crash_loop_after must be >= 1")


@dataclass(frozen=True)
class AdmissionSpec:
    """Declarative admission policy (compiled to ``AdmissionConfig``)."""

    max_queue_depth: int = 64
    default_deadline_ms: Optional[float] = 30_000.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be > 0 (or None)")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete scenario: traffic × cluster × faults × policy × arms."""

    name: str
    traffic: TrafficSpec
    arms: Tuple[ArmSpec, ...]
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    faults: Optional[FaultsSpec] = None
    admission: Optional[AdmissionSpec] = None
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.arms:
            raise ValueError("scenario needs at least one arm")
        names = [arm.name for arm in self.arms]
        if len(set(names)) != len(names):
            raise ValueError(f"arm names must be unique, got {names}")

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict form (inverse of :meth:`from_dict`)."""
        traffic: Dict[str, object] = {
            "kind": self.traffic.kind,
            "exec_ms": self.traffic.exec_ms,
            "app_init_ms": self.traffic.app_init_ms,
            "n_images": self.traffic.n_images,
        }
        if self.traffic.pattern is not None:
            traffic["pattern"] = _pattern_to_dict(self.traffic.pattern)
        if self.traffic.trace is not None:
            traffic["trace"] = asdict(self.traffic.trace)
        document: Dict[str, object] = {
            "name": self.name,
            "seed": self.seed,
            "description": self.description,
            "traffic": traffic,
            "cluster": asdict(self.cluster),
            "arms": [asdict(arm) for arm in self.arms],
        }
        if self.faults is not None:
            document["faults"] = asdict(self.faults)
        if self.admission is not None:
            document["admission"] = asdict(self.admission)
        return document

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Build a spec from its :meth:`to_dict` form."""
        data = dict(data)
        traffic_data = dict(data.pop("traffic", {}))
        pattern = traffic_data.pop("pattern", None)
        trace = traffic_data.pop("trace", None)
        traffic = TrafficSpec(
            pattern=_pattern_from_dict(pattern) if pattern is not None else None,
            trace=TraceConfig(**trace) if trace is not None else None,
            **traffic_data,
        )
        cluster = _dataclass_from_dict(ClusterSpec, dict(data.pop("cluster", {})))
        arms = tuple(
            _dataclass_from_dict(ArmSpec, dict(arm)) for arm in data.pop("arms", [])
        )
        faults = data.pop("faults", None)
        admission = data.pop("admission", None)
        return cls(
            traffic=traffic,
            cluster=cluster,
            arms=arms,
            faults=(
                _dataclass_from_dict(FaultsSpec, dict(faults))
                if faults is not None
                else None
            ),
            admission=(
                _dataclass_from_dict(AdmissionSpec, dict(admission))
                if admission is not None
                else None
            ),
            **data,
        )

    def to_json(self) -> str:
        """Pretty-printed, key-sorted JSON form."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def load_spec(path: str) -> ScenarioSpec:
    """Load a :class:`ScenarioSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as fp:
        return ScenarioSpec.from_dict(json.load(fp))
