"""Structured scenario run reports.

One :class:`ScenarioReport` per run, one :class:`ArmReport` per arm,
one :class:`TenantRow` per tenant.  Everything in the serialised form
is a function of (spec, seed) only — no wall-clock stamps — so two runs
of the same scenario at the same seed produce byte-identical report
files, which is the property the CI determinism smoke compares.

Latency quantiles come from fixed-bucket streaming histograms (bounded
memory at any request count); a tenant whose tail lands past the last
finite bucket reports the overflow count and an ``inf`` quantile rather
than a silently clamped value.  Tenants with zero successful requests
produce explicit ``n=0`` rows with NaN statistics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ArmReport", "ScenarioReport", "TenantRow"]


def _round_or_none(value: float, digits: int = 3) -> object:
    if value != value:  # NaN
        return None
    if value == float("inf"):
        return "inf"
    return round(value, digits)


@dataclass(frozen=True)
class TenantRow:
    """Per-tenant accounting of one arm.

    ``n`` counts successful requests; ``cold_ratio`` is cold starts
    over successes.  A tenant that saw traffic but had no successes
    still appears, with ``n=0`` and NaN latency statistics.
    """

    tenant: str
    n: int
    cold: int
    failed: int
    shed: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    #: Observations past the last finite histogram bucket.
    overflow: int

    @property
    def cold_ratio(self) -> float:
        """Cold starts per successful request (NaN when ``n=0``)."""
        return self.cold / self.n if self.n else float("nan")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (NaN→null, inf→"inf")."""
        return {
            "tenant": self.tenant,
            "n": self.n,
            "cold": self.cold,
            "failed": self.failed,
            "shed": self.shed,
            "cold_ratio": _round_or_none(self.cold_ratio, 5),
            "mean_ms": _round_or_none(self.mean_ms),
            "p50_ms": _round_or_none(self.p50_ms),
            "p99_ms": _round_or_none(self.p99_ms),
            "p999_ms": _round_or_none(self.p999_ms),
            "overflow": self.overflow,
        }


@dataclass
class ArmReport:
    """One arm's outcome: totals, overall quantiles, per-tenant rows."""

    name: str
    kind: str
    requests: int
    cold: int
    failed: int
    shed: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    overflow: int
    sim_time_ms: float
    tenants: Tuple[TenantRow, ...] = ()
    #: Routing/reuse counters (cluster stats in trace mode).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Pattern arms keep the raw per-round result for figure parity;
    #: excluded from serialisation (and dropped by parallel workers).
    workload_result: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def cold_ratio(self) -> float:
        """Cold starts per successful request (NaN when none)."""
        return self.cold / self.requests if self.requests else float("nan")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form — a pure function of (spec, seed)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "requests": self.requests,
            "cold": self.cold,
            "failed": self.failed,
            "shed": self.shed,
            "cold_ratio": _round_or_none(self.cold_ratio, 5),
            "mean_ms": _round_or_none(self.mean_ms),
            "p50_ms": _round_or_none(self.p50_ms),
            "p99_ms": _round_or_none(self.p99_ms),
            "p999_ms": _round_or_none(self.p999_ms),
            "overflow": self.overflow,
            "sim_time_ms": round(self.sim_time_ms, 3),
            "counters": dict(sorted(self.counters.items())),
            "tenants": [row.to_dict() for row in self.tenants],
        }


@dataclass
class ScenarioReport:
    """The full outcome of one scenario run."""

    scenario: str
    seed: int
    arms: Tuple[ArmReport, ...]

    def arm(self, name: str) -> ArmReport:
        """Look up an arm's report by name."""
        for report in self.arms:
            if report.name == name:
                return report
        known = ", ".join(a.name for a in self.arms)
        raise KeyError(f"no arm {name!r}; arms: {known}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of the whole report."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "arms": [arm.to_dict() for arm in self.arms],
        }

    def to_json(self) -> str:
        """Deterministic (sorted-key) JSON rendering."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        """Fixed-width text rendering for terminals and CI logs."""
        lines: List[str] = [f"scenario {self.scenario} (seed {self.seed})"]
        for arm in self.arms:
            lines.append(
                f"  arm {arm.name} [{arm.kind}]: "
                f"{arm.requests} ok, {arm.cold} cold "
                f"(ratio {_format(arm.cold_ratio, 4)}), "
                f"{arm.failed} failed, {arm.shed} shed, "
                f"mean {_format(arm.mean_ms)} ms, "
                f"p50/p99/p999 {_format(arm.p50_ms)}/"
                f"{_format(arm.p99_ms)}/{_format(arm.p999_ms)} ms, "
                f"overflow {arm.overflow}, "
                f"sim {arm.sim_time_ms / 1000.0:.1f} s"
            )
            if arm.tenants:
                header = (
                    "    tenant        n     cold  ratio    p50      p99      "
                    "p999     failed  shed"
                )
                lines.append(header)
                for row in arm.tenants:
                    lines.append(
                        f"    {row.tenant:<10}{row.n:>8} {row.cold:>8}  "
                        f"{_format(row.cold_ratio, 4):<8}"
                        f"{_format(row.p50_ms):<9}{_format(row.p99_ms):<9}"
                        f"{_format(row.p999_ms):<9}"
                        f"{row.failed:>6} {row.shed:>5}"
                    )
        return "\n".join(lines) + "\n"


def _format(value: float, digits: int = 1) -> str:
    if value != value:
        return "-"
    if value == float("inf"):
        return "inf"
    return f"{value:.{digits}f}"
