"""Bundled scenario specs: the figure workloads and trace-driven days.

Two families:

* ``fig12-*`` … ``fig14-*`` re-express the request-pattern figures as
  scenarios.  Their arms delegate to the same harness call the figure
  modules make, so running them reproduces the figures' numbers
  bit-for-bit (the parity test in ``tests/scenarios`` asserts this).
* ``day-smoke`` / ``day-1m`` are production-trace days: Zipf key
  popularity, a diurnal cycle, flash crowds, and tenant churn over a
  multi-host cluster.  ``day-1m`` is the planet-scale gate — an
  expected one million requests over 1 000 runtime keys and 3 hosts,
  finishing in well under a minute of wall clock.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.scenarios.spec import (
    ArmSpec,
    ClusterSpec,
    FaultsSpec,
    ScenarioSpec,
    TrafficSpec,
)
from repro.workloads.patterns import (
    BurstPattern,
    ExponentialPattern,
    LinearPattern,
    ParallelPattern,
    SerialPattern,
)
from repro.workloads.tracegen import TraceConfig

__all__ = ["BUNDLED_SCENARIOS", "bundled_names", "bundled_spec"]

_DEFAULT_ROUND_MS = 30_000.0


def _pattern_arms(adaptive: bool = False, round_ms: float = _DEFAULT_ROUND_MS,
                  n_functions: int = 1) -> Tuple[ArmSpec, ...]:
    return (
        ArmSpec(name="default", use_hotc=False, n_functions=n_functions),
        ArmSpec(
            name="hotc",
            use_hotc=True,
            adaptive=adaptive,
            control_interval_ms=round_ms if adaptive else 5_000.0,
            n_functions=n_functions,
        ),
    )


def fig12_serial(seed: int = 0, n_rounds: int = 20,
                 round_ms: float = _DEFAULT_ROUND_MS) -> ScenarioSpec:
    """Fig 12a as a scenario: one request per round, default vs HotC."""
    return ScenarioSpec(
        name="fig12-serial",
        seed=seed,
        description="Fig 12a serial requests (1 per round)",
        traffic=TrafficSpec(
            kind="pattern",
            pattern=SerialPattern(n_rounds=n_rounds, round_ms=round_ms),
        ),
        arms=_pattern_arms(),
    )


def fig12_parallel(seed: int = 0, n_rounds: int = 20, n_threads: int = 10,
                   round_ms: float = _DEFAULT_ROUND_MS) -> ScenarioSpec:
    """Fig 12b as a scenario: ten per-thread runtime configurations."""
    return ScenarioSpec(
        name="fig12-parallel",
        seed=seed,
        description="Fig 12b parallel requests (10 thread configs)",
        traffic=TrafficSpec(
            kind="pattern",
            pattern=ParallelPattern(
                n_threads=n_threads, n_rounds=n_rounds, round_ms=round_ms
            ),
        ),
        arms=_pattern_arms(n_functions=n_threads),
    )


def fig13_increasing(seed: int = 0, n_rounds: int = 10,
                     round_ms: float = _DEFAULT_ROUND_MS) -> ScenarioSpec:
    """Fig 13 increasing flow as a scenario (+2 requests per round)."""
    return ScenarioSpec(
        name="fig13-increasing",
        seed=seed,
        description="Fig 13 linear increasing flow (+2/round)",
        traffic=TrafficSpec(
            kind="pattern",
            pattern=LinearPattern(
                start=2, step=2, n_rounds=n_rounds, round_ms=round_ms
            ),
        ),
        arms=_pattern_arms(),
    )


def fig13_decreasing(seed: int = 0, n_rounds: int = 10, start: int = 20,
                     round_ms: float = _DEFAULT_ROUND_MS) -> ScenarioSpec:
    """Fig 13 decreasing flow as a scenario (−2 requests per round)."""
    return ScenarioSpec(
        name="fig13-decreasing",
        seed=seed,
        description="Fig 13 linear decreasing flow (-2/round)",
        traffic=TrafficSpec(
            kind="pattern",
            pattern=LinearPattern(
                start=start, step=-2, n_rounds=n_rounds, round_ms=round_ms
            ),
        ),
        arms=_pattern_arms(),
    )


def fig14_exponential(seed: int = 0, n_rounds: int = 6, decreasing: bool = False,
                      round_ms: float = _DEFAULT_ROUND_MS) -> ScenarioSpec:
    """Fig 14a as a scenario: 2^i requests at round i (or mirrored)."""
    direction = "decreasing" if decreasing else "increasing"
    return ScenarioSpec(
        name=f"fig14-exponential-{direction}",
        seed=seed,
        description=f"Fig 14a exponential {direction} flow",
        traffic=TrafficSpec(
            kind="pattern",
            pattern=ExponentialPattern(
                n_rounds=n_rounds, round_ms=round_ms, decreasing=decreasing
            ),
        ),
        arms=_pattern_arms(),
    )


def fig14_burst(seed: int = 0, n_rounds: int = 20,
                round_ms: float = _DEFAULT_ROUND_MS) -> ScenarioSpec:
    """Fig 14b as a scenario: 10x bursts with the adaptive control loop."""
    return ScenarioSpec(
        name="fig14-burst",
        seed=seed,
        description="Fig 14b request bursts (adaptive HotC arm)",
        traffic=TrafficSpec(
            kind="pattern",
            pattern=BurstPattern(
                n_rounds=n_rounds,
                round_ms=round_ms,
                burst_rounds=tuple(r for r in (4, 8, 12, 16) if r < n_rounds),
            ),
        ),
        arms=_pattern_arms(adaptive=True, round_ms=round_ms),
    )


def day_smoke(seed: int = 0) -> ScenarioSpec:
    """A two-hour, ~20k-request trace day that finishes in seconds.

    Small enough for the CI smoke step, but exercises every trace-mode
    axis: Zipf keys, diurnal shape, one flash crowd, churn, 2 hosts.
    """
    return ScenarioSpec(
        name="day-smoke",
        seed=seed,
        description="2-hour smoke trace: 60 keys, ~20k requests, 2 hosts",
        traffic=TrafficSpec(
            kind="trace",
            trace=TraceConfig(
                n_keys=60,
                n_tenants=6,
                duration_ms=7_200_000.0,
                slot_ms=60_000.0,
                total_requests=20_000.0,
                zipf_s=1.1,
                diurnal_amplitude=0.4,
                diurnal_period_ms=7_200_000.0,
                flash_crowds=1,
                flash_factor=6.0,
                flash_duration_ms=300_000.0,
                flash_keys=3,
                churn_fraction=0.15,
                churn_interval_ms=1_800_000.0,
            ),
        ),
        cluster=ClusterSpec(n_hosts=2),
        arms=(
            ArmSpec(name="hotc", use_hotc=True, adaptive=True,
                    control_interval_ms=60_000.0),
        ),
    )


def leaky_day(seed: int = 0) -> ScenarioSpec:
    """A degradation day: leaky, poisonous containers, with and without
    the self-healing recycle loop.

    One hour of Zipf-headed traffic over 2 hosts while every boot rolls
    the container-degradation lottery: 20 % of containers leak RSS each
    exec, 1 % of execs leave poisoned state behind, 5 % of containers
    slow down per reuse, and 2 % crash-loop after a few execs.  The
    ``hotc`` arm reuses at depth with no defenses; the ``hotc-health``
    arm runs the container health plane (quarantine + token-bucket
    recycling + paired prewarm).  Comparing the two arms' p99/failed
    columns is the point of the scenario.
    """
    return ScenarioSpec(
        name="leaky-day",
        seed=seed,
        description="1-hour degradation trace: leaks+poison, health on/off",
        traffic=TrafficSpec(
            kind="trace",
            trace=TraceConfig(
                n_keys=40,
                n_tenants=4,
                duration_ms=3_600_000.0,
                slot_ms=60_000.0,
                total_requests=12_000.0,
                zipf_s=1.1,
                diurnal_amplitude=0.3,
                diurnal_period_ms=3_600_000.0,
            ),
        ),
        cluster=ClusterSpec(n_hosts=2),
        faults=FaultsSpec(
            memory_leak_rate=0.2,
            memory_leak_mb=24.0,
            state_poison_rate=0.01,
            perf_decay_rate=0.05,
            perf_decay_factor=1.03,
            crash_loop_rate=0.02,
            crash_loop_after=8,
        ),
        arms=(
            ArmSpec(name="hotc", use_hotc=True, adaptive=True,
                    control_interval_ms=60_000.0),
            ArmSpec(name="hotc-health", use_hotc=True, adaptive=True,
                    control_interval_ms=60_000.0, container_health=True),
        ),
    )


def day_1m(seed: int = 0) -> ScenarioSpec:
    """The planet-scale gate: an expected 1M-request simulated day.

    1 000 runtime keys with a Zipf(1.1) head, a ±45 % diurnal cycle,
    two 8× flash crowds, hourly tenant churn, 20 tenants over 3 hosts.
    The adaptive control loop stays off at this scale (its per-tick
    sweep is O(keys × hosts); ``day-smoke`` covers the adaptive path) —
    the arm exercises steady-state pool reuse, placement, and
    repurposing.  Must complete in < 60 s wall
    (``benchmarks/bench_scenario_day.py --check``).
    """
    return ScenarioSpec(
        name="day-1m",
        seed=seed,
        description="1M-request day: 1000 keys, Zipf head, 3 hosts",
        traffic=TrafficSpec(
            kind="trace",
            trace=TraceConfig(
                n_keys=1_000,
                n_tenants=20,
                duration_ms=86_400_000.0,
                slot_ms=60_000.0,
                total_requests=1_000_000.0,
                zipf_s=1.1,
                diurnal_amplitude=0.45,
                diurnal_period_ms=86_400_000.0,
                flash_crowds=2,
                flash_factor=8.0,
                flash_duration_ms=600_000.0,
                flash_keys=5,
                churn_fraction=0.1,
                churn_interval_ms=3_600_000.0,
            ),
        ),
        cluster=ClusterSpec(n_hosts=3),
        arms=(ArmSpec(name="hotc", use_hotc=True, adaptive=False),),
    )


#: Name → builder for every bundled scenario (CLI ``scenarios list``).
BUNDLED_SCENARIOS: Dict[str, Callable[..., ScenarioSpec]] = {
    "fig12-serial": fig12_serial,
    "fig12-parallel": fig12_parallel,
    "fig13-increasing": fig13_increasing,
    "fig13-decreasing": fig13_decreasing,
    "fig14-exponential-increasing": fig14_exponential,
    "fig14-exponential-decreasing": lambda seed=0: fig14_exponential(
        seed=seed, decreasing=True
    ),
    "fig14-burst": fig14_burst,
    "day-smoke": day_smoke,
    "leaky-day": leaky_day,
    "day-1m": day_1m,
}


def bundled_names() -> Tuple[str, ...]:
    """Names of every bundled scenario, sorted."""
    return tuple(sorted(BUNDLED_SCENARIOS))


def bundled_spec(name: str, seed: int = 0) -> ScenarioSpec:
    """Build the bundled scenario ``name`` at ``seed``."""
    try:
        builder = BUNDLED_SCENARIOS[name]
    except KeyError:
        known = ", ".join(bundled_names())
        raise KeyError(f"no bundled scenario {name!r}; known: {known}") from None
    return builder(seed=seed)
