"""Scenario DSL: declarative workload × cluster × fault × policy runs.

The subsystem every large-scale evaluation plugs into (ROADMAP item 1):

- :mod:`repro.scenarios.spec` — the declarative :class:`ScenarioSpec`
  (traffic, cluster shape, fault plan, admission policy, arms), JSON
  round-trippable and picklable.
- :mod:`repro.scenarios.runner` — compiles a spec into simulations:
  figure patterns through the existing harness (bit-identical), trace
  workloads direct-driven into a multi-host ``ClusterHotC`` with
  streaming per-tenant accounting.
- :mod:`repro.scenarios.report` — structured, deterministic run
  reports: per-tenant p50/p99/p999 and cold-start ratios.
- :mod:`repro.scenarios.bundled` — named specs: the Figs 12–14
  workloads and the ``day-smoke`` / ``day-1m`` trace days.

Run from the CLI: ``python -m repro scenarios run day-smoke``.
"""

from repro.scenarios.bundled import BUNDLED_SCENARIOS, bundled_names, bundled_spec
from repro.scenarios.report import ArmReport, ScenarioReport, TenantRow
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import (
    AdmissionSpec,
    ArmSpec,
    ClusterSpec,
    FaultsSpec,
    ScenarioSpec,
    TrafficSpec,
    load_spec,
)

__all__ = [
    "AdmissionSpec",
    "ArmReport",
    "ArmSpec",
    "BUNDLED_SCENARIOS",
    "ClusterSpec",
    "FaultsSpec",
    "ScenarioReport",
    "ScenarioSpec",
    "TenantRow",
    "TrafficSpec",
    "bundled_names",
    "bundled_spec",
    "load_spec",
    "run_scenario",
]
