"""Compile and run scenario specs.

:func:`run_scenario` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into a :class:`~repro.scenarios.report.ScenarioReport`:

* **Pattern traffic** delegates each arm to
  :func:`repro.experiments._pattern_harness.run_pattern_arm` with the
  exact argument shape the figure modules use, so a figure re-expressed
  as a scenario reproduces its original outputs bit-for-bit.  The raw
  :class:`~repro.workloads.generator.WorkloadResult` rides along on the
  arm report for the figure code to consume.
* **Trace traffic** streams a :class:`~repro.workloads.tracegen.
  TraceWorkload` arrival schedule straight into a multi-host
  :class:`~repro.core.cluster.ClusterHotC` (or a per-host cold-boot
  baseline), bypassing the gateway stack.  Accounting is streaming and
  bounded: per-tenant fixed-bucket histograms plus a handful of
  counters, never a list of traces — which is what lets a
  million-request simulated day finish in seconds.

Arms are independent simulations, so ``jobs > 1`` fans them out over a
spawn-based process pool; results are reassembled in spec order and the
serialised report is byte-identical to a serial run.
"""

from __future__ import annotations

import contextlib
import gc
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.admission.controller import AdmissionConfig, AdmissionController
from repro.containers.container import ContainerError
from repro.containers.engine import ContainerEngine
from repro.core.cluster import ClusterHotC, make_cluster_engines
from repro.core.hotc import HotCConfig
from repro.health.container import ContainerHealthConfig
from repro.faas.function import FunctionSpec
from repro.faas.platform import ColdBootProvider
from repro.faas.tracing import RequestOutcome, RequestTrace
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.registry import Histogram, MetricsRegistry, WIDE_LATENCY_BUCKETS_MS
from repro.scenarios.report import ArmReport, ScenarioReport, TenantRow
from repro.scenarios.spec import ArmSpec, ScenarioSpec
from repro.sim.engine import Simulator
from repro.sim.rng import derive_seed
from repro.workloads.apps import default_catalog
from repro.workloads.tracegen import TraceWorkload

__all__ = ["run_scenario"]

#: Image/language pairs cycled over the key space in trace mode.
_TRACE_IMAGES: Tuple[Tuple[str, str], ...] = (
    ("python:3.6", "python"),
    ("node:10", "node"),
    ("golang:1.11", "go"),
)


def run_scenario(
    spec: ScenarioSpec,
    jobs: int = 1,
    out_dir: Optional[str] = None,
) -> ScenarioReport:
    """Run every arm of ``spec``; optionally write report artifacts.

    ``jobs > 1`` runs arms in parallel worker processes; the report is
    byte-identical to the serial run (each arm is an independent,
    seed-determined simulation; parallel workers merely drop the
    in-memory ``workload_result`` payload, which is never serialised).
    ``out_dir`` receives ``report.json`` and ``report.txt``.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs == 1 or len(spec.arms) == 1:
        arm_reports = [_run_arm(spec, arm) for arm in spec.arms]
    else:
        import multiprocessing as mp

        context = mp.get_context("spawn")
        tasks = [(spec, arm) for arm in spec.arms]
        with context.Pool(processes=min(jobs, len(tasks))) as pool:
            arm_reports = pool.map(_arm_task, tasks)
    report = ScenarioReport(
        scenario=spec.name, seed=spec.seed, arms=tuple(arm_reports)
    )
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        with open(os.path.join(out_dir, "report.json"), "w", encoding="utf-8") as fp:
            fp.write(report.to_json())
        with open(os.path.join(out_dir, "report.txt"), "w", encoding="utf-8") as fp:
            fp.write(report.render())
    return report


def _arm_task(payload: Tuple[ScenarioSpec, ArmSpec]) -> ArmReport:
    """Worker entry point: run one arm, strip the in-memory payload."""
    spec, arm = payload
    report = _run_arm(spec, arm)
    report.workload_result = None
    return report


def _run_arm(spec: ScenarioSpec, arm: ArmSpec) -> ArmReport:
    """Run one arm of ``spec`` (dispatch on traffic kind)."""
    if spec.traffic.kind == "pattern":
        return _run_pattern_arm_report(spec, arm)
    return _run_trace_arm_report(spec, arm)


# -- pattern arms ------------------------------------------------------------


def _run_pattern_arm_report(spec: ScenarioSpec, arm: ArmSpec) -> ArmReport:
    """One pattern arm via the figure harness (bit-identical to figs)."""
    from repro.experiments._pattern_harness import run_pattern_arm

    if spec.faults is not None or spec.admission is not None:
        raise ValueError(
            "pattern traffic runs through the figure harness, which has "
            "no fault/admission hooks; use trace traffic for those axes"
        )
    result, platform = run_pattern_arm(
        spec.traffic.pattern,
        use_hotc=arm.use_hotc,
        seed=spec.seed,
        n_functions=arm.n_functions,
        adaptive=arm.adaptive,
        control_interval_ms=arm.control_interval_ms,
        gateway_concurrency=arm.gateway_concurrency,
    )
    latencies = result.latencies()
    if latencies.size:
        p50, p99, p999 = (
            float(np.percentile(latencies, q)) for q in (50.0, 99.0, 99.9)
        )
        mean = float(latencies.mean())
    else:
        p50 = p99 = p999 = mean = float("nan")
    return ArmReport(
        name=arm.name,
        kind="pattern",
        requests=int(latencies.size),
        cold=result.total_cold(),
        failed=result.total_failed(),
        shed=0,
        mean_ms=mean,
        p50_ms=p50,
        p99_ms=p99,
        p999_ms=p999,
        overflow=0,
        sim_time_ms=float(platform.sim.now),
        counters={},
        workload_result=result,
    )


# -- trace arms --------------------------------------------------------------


@contextlib.contextmanager
def _gc_quiet():
    """Tame the cyclic GC for the duration of a trace-scale run.

    A million-request arm allocates tens of millions of short-lived
    objects; at the default thresholds the collector runs hundreds of
    full (gen-2) passes over an ever-growing heap — measured at ~17 % of
    the wall clock for the ``day-1m`` gate.  Freezing the post-setup
    baseline and raising the thresholds keeps collection work bounded to
    the young, per-request churn.  Purely a wall-clock change: no effect
    on simulation behaviour or results.
    """
    gc.collect()
    gc.freeze()
    old_thresholds = gc.get_threshold()
    gc.set_threshold(50_000, 25, 25)
    try:
        yield
    finally:
        gc.set_threshold(*old_thresholds)
        gc.unfreeze()
        gc.collect()


class _RoundRobinCold:
    """Baseline provider for trace arms: per-host cold boots, no reuse."""

    def __init__(self, engines) -> None:
        self.providers = [ColdBootProvider(engine) for engine in engines]
        self._owner: Dict[str, int] = {}
        self._next = 0

    def acquire(self, config):
        """Process: boot a fresh container on the next host."""
        index = self._next
        self._next = (self._next + 1) % len(self.providers)
        container, cold = yield from self.providers[index].acquire(config)
        self._owner[container.container_id] = index
        return container, cold

    def release(self, container):
        """Process: destroy the container on its owning host."""
        index = self._owner.pop(container.container_id, 0)
        yield from self.providers[index].release(container)

    def discard(self, container) -> None:
        """Forget a container that died mid-request."""
        self._owner.pop(container.container_id, None)

    def engine_for(self, container) -> ContainerEngine:
        """The engine executing on the container's host."""
        index = self._owner.get(container.container_id, 0)
        return self.providers[index].engine


def _trace_function_specs(spec: ScenarioSpec) -> List[FunctionSpec]:
    """One spec per runtime key: distinct env, images cycled."""
    traffic = spec.traffic
    images = _TRACE_IMAGES[: traffic.n_images]
    deadline = None
    if spec.admission is not None:
        deadline = spec.admission.default_deadline_ms
    specs = []
    for key in range(traffic.trace.n_keys):
        image, language = images[key % len(images)]
        specs.append(
            FunctionSpec(
                name=f"fn-{key:04d}",
                image=image,
                language=language,
                exec_ms=traffic.exec_ms,
                app_init_ms=traffic.app_init_ms,
                env=(("KEY", str(key)),),
                deadline_ms=deadline,
            )
        )
    return specs


def _run_trace_arm_report(spec: ScenarioSpec, arm: ArmSpec) -> ArmReport:
    """One trace arm: direct-drive the provider, streaming accounting."""
    config = spec.traffic.trace.with_seed(derive_seed(spec.seed, "trace-arrivals"))
    workload = TraceWorkload(config)
    sim = Simulator()
    registry = default_catalog().make_registry()
    engines = make_cluster_engines(
        sim,
        registry,
        n_hosts=spec.cluster.n_hosts,
        seed=derive_seed(spec.seed, f"arm:{arm.name}"),
        jitter_sigma=spec.cluster.jitter_sigma,
    )
    if arm.use_hotc:
        provider = ClusterHotC(
            engines,
            config=HotCConfig(
                control_interval_ms=arm.control_interval_ms if arm.adaptive else 0.0,
                container_health=(
                    ContainerHealthConfig() if arm.container_health else None
                ),
            ),
            placement=spec.cluster.placement,
        )
    else:
        provider = _RoundRobinCold(engines)

    admission = None
    if spec.admission is not None:
        admission = AdmissionController(
            AdmissionConfig(
                max_queue_depth=spec.admission.max_queue_depth,
                default_deadline_ms=spec.admission.default_deadline_ms,
            )
        )
        admission.bind(sim)

    if spec.faults is not None:
        plan = FaultPlan.random(
            seed=derive_seed(spec.seed, "faults"),
            duration_ms=config.duration_ms,
            hosts=tuple(engine.name for engine in engines),
            spec=FaultSpec(),
            pool_deaths=spec.faults.pool_deaths,
            outages=spec.faults.outages,
            outage_ms=spec.faults.outage_ms,
            gray_slowdowns=spec.faults.gray_slowdowns,
            gray_ms=spec.faults.gray_ms,
            gray_factor=spec.faults.gray_factor,
            memory_leak_rate=spec.faults.memory_leak_rate,
            memory_leak_mb=spec.faults.memory_leak_mb,
            state_poison_rate=spec.faults.state_poison_rate,
            perf_decay_rate=spec.faults.perf_decay_rate,
            perf_decay_factor=spec.faults.perf_decay_factor,
            crash_loop_rate=spec.faults.crash_loop_rate,
            crash_loop_after=spec.faults.crash_loop_after,
        )
        plan.install(sim, engines)

    function_specs = _trace_function_specs(spec)
    configs = [fn.container_config() for fn in function_specs]
    exec_specs = [fn.exec_spec() for fn in function_specs]
    tenant_by_key = workload.tenant_ids().tolist()
    n_tenants = config.n_tenants

    metrics = MetricsRegistry()
    hists = [
        metrics.histogram(
            "scenario_latency_ms",
            bounds=WIDE_LATENCY_BUCKETS_MS,
            help="End-to-end request latency per tenant",
            tenant=f"t{tenant:03d}",
        )
        for tenant in range(n_tenants)
    ]
    cold_counts = [0] * n_tenants
    failed_counts = [0] * n_tenants
    shed_counts = [0] * n_tenants
    inflight = [0]
    request_seq = [0]

    for image, _ in _TRACE_IMAGES[: spec.traffic.n_images]:
        for engine in engines:
            sim.process(engine.ensure_image(image))
    sim.run()

    def request(key: int):
        tenant = tenant_by_key[key]
        t0 = sim.now
        trace = None
        if admission is not None:
            request_seq[0] += 1
            trace = RequestTrace(
                request_id=request_seq[0],
                function=function_specs[key].name,
                t0_client_send=t0,
            )
            admitted = yield from admission.admit(function_specs[key], trace)
            if not admitted:
                shed_counts[tenant] += 1
                inflight[0] -= 1
                return
        container = None
        try:
            container, cold = yield from provider.acquire(configs[key])
            yield from provider.engine_for(container).execute(
                container, exec_specs[key]
            )
        except ContainerError:
            failed_counts[tenant] += 1
            if container is not None:
                provider.discard(container)
            if admission is not None:
                trace.outcome = RequestOutcome.FAILED
                admission.release(function_specs[key], trace, sim.now)
            inflight[0] -= 1
            return
        hists[tenant].observe(sim.now - t0)
        if cold:
            cold_counts[tenant] += 1
        if admission is not None:
            trace.outcome = RequestOutcome.SUCCESS
            admission.release(function_specs[key], trace, sim.now)
        inflight[0] -= 1
        yield from provider.release(container)

    def spawn(key: int) -> None:
        inflight[0] += 1
        sim.process(request(key))

    def driver():
        # One timeout per slot, then direct heap callbacks per arrival:
        # cheaper than resuming a generator for every request, and the
        # heap never holds more than a couple of slots' worth of events.
        schedule = sim.schedule
        for batch in workload.batches():
            if not batch.size:
                continue
            if batch.start_ms > sim.now:
                yield sim.timeout(batch.start_ms - sim.now)
            base = sim.now
            # Guard against the resume instant overshooting the slot
            # start by an ulp, which would make the first delay negative.
            offsets = np.maximum(
                batch.start_ms - base + batch.offsets_ms, 0.0
            ).tolist()
            for delay, key in zip(offsets, batch.key_ids.tolist()):
                schedule(delay, spawn, key)

    sim.process(driver(), name="trace-driver")
    with _gc_quiet():
        if arm.use_hotc and arm.adaptive:
            provider.start_control_loops()
            sim.run(until=config.duration_ms)
            provider.stop_control_loops()
        else:
            sim.run(until=config.duration_ms)
        sim.run()
    if inflight[0] != 0:
        raise AssertionError(
            f"trace arm {arm.name!r} drained with {inflight[0]} requests "
            "still in flight"
        )

    overall = Histogram("scenario_latency_ms", bounds=WIDE_LATENCY_BUCKETS_MS)
    for hist in hists:
        overall.merge_from(hist)
    tenants = []
    for tenant in range(n_tenants):
        hist = hists[tenant]
        tenants.append(
            TenantRow(
                tenant=f"t{tenant:03d}",
                n=hist.count,
                cold=cold_counts[tenant],
                failed=failed_counts[tenant],
                shed=shed_counts[tenant],
                mean_ms=hist.sum / hist.count if hist.count else float("nan"),
                p50_ms=hist.quantile(0.5),
                p99_ms=hist.quantile(0.99),
                p999_ms=hist.quantile(0.999),
                overflow=hist.overflow_count,
            )
        )
    counters: Dict[str, int] = {}
    stats = getattr(provider, "stats", None)
    if stats is not None:
        counters = {
            "reuse_routed": stats.reuse_routed,
            "cold_routed": stats.cold_routed,
            "relaxed_hits": stats.relaxed_hits,
            "repurposes": stats.repurposes,
            "failovers": stats.failovers,
            "hosts_lost": stats.hosts_lost,
        }
    if arm.use_hotc and arm.container_health:
        counters["quarantined"] = sum(
            host.pool.stats.quarantined for host in provider.hosts
        )
        counters["recycled"] = sum(
            host.pool.stats.recycled for host in provider.hosts
        )
    return ArmReport(
        name=arm.name,
        kind="trace",
        requests=overall.count,
        cold=sum(cold_counts),
        failed=sum(failed_counts),
        shed=sum(shed_counts),
        mean_ms=overall.sum / overall.count if overall.count else float("nan"),
        p50_ms=overall.quantile(0.5),
        p99_ms=overall.quantile(0.99),
        p999_ms=overall.quantile(0.999),
        overflow=overall.overflow_count,
        sim_time_ms=float(sim.now),
        counters=counters,
        tenants=tuple(tenants),
    )
