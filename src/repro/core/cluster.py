"""Multi-host HotC: reuse-aware scheduling across backends.

Implements the paper's first future-work direction (Section VII): "in a
distributed system, a few containers are extremely popular ... Some
host machines might become overloaded and we need to consider load
balancing when reusing the hot runtime."

:class:`ClusterHotC` fronts one :class:`~repro.core.hotc.HotC` instance
per host and routes each request with a two-level policy:

1. **Reuse first** — prefer hosts holding an *available* container of
   the request's runtime key (warm hit beats any cold boot);
   among them pick the least loaded.
2. **Balance the cold boots** — otherwise pick the least-loaded host
   overall (by in-flight requests, with committed memory as the
   tie-breaker) and cold-boot there.

The scheduler also exposes per-host statistics so the load-balancing
ablation can quantify skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.containers.container import Container, ContainerConfig, ContainerError
from repro.containers.engine import ContainerEngine
from repro.core.hotc import HotC, HotCConfig
from repro.faas.platform import RuntimeProvider
from repro.faults.errors import HostDownError, RuntimeUnavailableError
from repro.obs.events import EventKind

__all__ = [
    "ClusterHotC",
    "ClusterStats",
    "make_cluster_engines",
    "make_cluster_platform",
]


@dataclass
class ClusterStats:
    """Routing counters for one cluster."""

    reuse_routed: int = 0
    cold_routed: int = 0
    #: Acquires a host served by reconfiguring a relaxed-key match.
    relaxed_hits: int = 0
    #: Acquires a host served by repurposing an idle donor container.
    repurposes: int = 0
    #: Requests re-routed to another host after an acquire failure.
    failovers: int = 0
    #: Host outages detected (a host recovering and dying again counts twice).
    hosts_lost: int = 0

    @property
    def total_routed(self) -> int:
        """All routing decisions taken."""
        return self.reuse_routed + self.cold_routed


class ClusterHotC(RuntimeProvider):
    """A HotC instance per host plus a reuse-aware scheduler.

    Parameters
    ----------
    engines:
        One container engine per backend host.
    config:
        Shared HotC configuration (per-host pools use the same limits).
    placement:
        ``"reuse-aware"`` (the future-work design) or ``"round-robin"``
        (the strawman used as the ablation baseline).
    """

    def __init__(
        self,
        engines: Sequence[ContainerEngine],
        config: Optional[HotCConfig] = None,
        placement: str = "reuse-aware",
    ) -> None:
        if not engines:
            raise ValueError("cluster needs at least one engine")
        if placement not in ("reuse-aware", "round-robin"):
            raise ValueError(f"unknown placement policy {placement!r}")
        self.placement = placement
        self.hosts: List[HotC] = [HotC(engine, config) for engine in engines]
        self.sim = self.hosts[0].sim
        self.stats = ClusterStats()
        self._inflight: Dict[int, int] = {index: 0 for index in range(len(engines))}
        self._by_container: Dict[str, int] = {}
        self._rr_next = 0
        #: Host indexes currently believed down (outage in progress).
        self._down: set = set()
        #: Optional observatory; ``None`` keeps the hooks inert.
        self.obs = None
        #: Optional shared admission controller (attach_admission).
        self.admission = None
        #: Optional health monitor; ``None`` keeps routing decisions
        #: exactly as before (binary lazy down-set only).
        self.health = None
        #: Optional recovery manager; ``None`` keeps release/discard
        #: strict about unknown containers.
        self.recovery = None
        #: True between crash_control_plane() and recover_from().
        self._crashed = False

    def attach_observatory(self, observatory) -> None:
        """Wire one shared observatory through every host.

        Per-host series stay distinguishable via the ``host`` label each
        hook stamps; the cluster itself records failover events.
        """
        self.obs = observatory
        for host in self.hosts:
            host.attach_observatory(observatory)
        if self.health is not None:
            self.health.attach_observatory(observatory)

    def attach_admission(self, controller) -> None:
        """Wire one shared admission controller through every host.

        Each host drives its own brownout state machine against the
        shared controller; the AIMD tick collapses across co-scheduled
        control loops.
        """
        self.admission = controller
        for host in self.hosts:
            host.attach_admission(controller)

    def attach_health(self, monitor) -> None:
        """Route around sick hosts via a phi-accrual monitor.

        Every host is registered with the monitor; its drain hook drops
        the host's pool metadata and absorbs in-flight prewarm boots
        when the detector declares the host lost.  The scheduler then
        skips unroutable (suspect/quarantined/draining) hosts and ramps
        probation hosts back in by weighting their load key.
        ``None`` detaches and restores the pure down-set behaviour.
        """
        self.health = monitor
        if monitor is None:
            return
        if self.obs is not None:
            monitor.attach_observatory(self.obs)
        for index, host in enumerate(self.hosts):
            monitor.register_host(
                host.engine.name, host.engine, on_drain=self._drain_hook(index)
            )

    def _drain_hook(self, index: int):
        def drain() -> None:
            host = self.hosts[index]
            host.drain_dead()
            host.absorb_pending_boots()

        return drain

    def attach_recovery(self, manager) -> None:
        """Wire a recovery manager through the cluster (``None`` detaches).

        Hosts share the one manager: any host's control tick drives its
        audit/checkpoint cadence (the manager collapses co-scheduled
        ticks), and release/discard become tolerant of containers the
        rebuilt control plane no longer tracks.
        """
        self.recovery = manager
        for host in self.hosts:
            host.recovery = manager

    # -- introspection ----------------------------------------------------
    @property
    def n_hosts(self) -> int:
        """Number of backend hosts."""
        return len(self.hosts)

    def host_of(self, container: Container) -> HotC:
        """The per-host HotC that owns ``container``."""
        try:
            return self.hosts[self._by_container[container.container_id]]
        except KeyError:
            raise KeyError(
                f"container {container.container_id} is not tracked by this cluster"
            ) from None

    def engine_for(self, container: Container) -> ContainerEngine:
        """The engine a container runs on (used by the watchdog)."""
        return self.host_of(container).engine

    def inflight(self, host_index: int) -> int:
        """Requests currently assigned to a host."""
        return self._inflight[host_index]

    def pool_sizes(self) -> Tuple[int, ...]:
        """Live pooled containers per host."""
        return tuple(host.pool.total_live for host in self.hosts)

    def down_hosts(self) -> Tuple[int, ...]:
        """Indexes of hosts currently believed down."""
        return tuple(sorted(self._down))

    # -- host health ---------------------------------------------------------
    def _refresh_health(self) -> None:
        """Reconcile the down-set with engine reality (lazy health check).

        A recovered host simply rejoins the candidate set; its pool
        starts empty (the outage drained it) and refills via prewarm.
        """
        for index in tuple(self._down):
            engine = self.hosts[index].engine
            if not engine.is_unreachable:
                self._down.discard(index)
                if self.obs is not None:
                    self.obs.emit(
                        EventKind.HOST_RECOVERED,
                        t=self.sim.now,
                        host=engine.name,
                        state="rejoined",
                    )
                    self.obs.counter(
                        "hosts_recovered_total",
                        help="Hosts rejoining the candidate set after an outage",
                        host=engine.name,
                    ).inc()

    def _note_host_down(self, index: int) -> None:
        """Record an outage and drain the dead host's pool metadata.

        Without the drain, the scheduler would keep routing "warm"
        requests at containers that no longer exist; without absorbing
        the host's in-flight prewarm boots, their doomed reservations
        would keep counting against ``max_containers``.
        """
        if index in self._down:
            return
        self._down.add(index)
        self.stats.hosts_lost += 1
        host = self.hosts[index]
        host.drain_dead()
        host.absorb_pending_boots()
        if self.health is not None:
            # Confirmed unreachability beats any phi estimate.
            self.health.on_host_down(host.engine.name)

    # -- placement ----------------------------------------------------------
    def _routable(self, index: int) -> bool:
        health = self.health
        return health is None or health.routable(self.hosts[index].engine.name)

    def _load_key(self, index: int) -> Tuple[float, float, int]:
        host = self.hosts[index]
        load = float(self._inflight[index])
        if self.health is not None:
            weight = self.health.routing_weight(host.engine.name)
            if weight < 1.0:
                # Probation ramp: a low weight inflates apparent load so
                # the host wins ties progressively more often as its
                # on-time heartbeat streak grows.
                load = (load + 1.0) / max(weight, 1e-9)
        return (
            load,
            host.engine.resources.mem_fraction,
            index,
        )

    def _pick_host(
        self, config: ContainerConfig, excluded: frozenset = frozenset()
    ) -> Tuple[int, bool]:
        """Returns ``(host index, found_warm)`` among routable hosts.

        Hosts in ``excluded`` (already failed for this request) or in
        the down-set are skipped; with every host ruled out the request
        cannot be served and :class:`RuntimeUnavailableError` is raised.
        """
        if not excluded and not self._down and self.health is None:
            # Healthy-cluster fast path: every host is a candidate, and
            # rebuilding that list per request is measurable at trace
            # scale.
            candidates = range(len(self.hosts))
        else:
            candidates = [
                index
                for index in range(len(self.hosts))
                if index not in excluded
                and index not in self._down
                and self._routable(index)
            ]
        if not candidates:
            raise RuntimeUnavailableError(
                f"no routable host left ({len(self.hosts)} total, "
                f"{len(self._down)} down, {len(excluded)} failed)"
            )
        if self.placement == "round-robin":
            # Advance past unroutable hosts; with all hosts healthy this
            # is the plain one-step advance.
            while True:
                index = self._rr_next % len(self.hosts)
                self._rr_next += 1
                if index in candidates:
                    break
            key = self.hosts[index].key_of(config)
            return index, self.hosts[index].pool.num_available(key) > 0

        warm_hosts = []
        for index in candidates:
            host = self.hosts[index]
            key = host.key_of(config)
            if host.pool.num_available(key) > 0:
                warm_hosts.append(index)
        if warm_hosts:
            return min(warm_hosts, key=self._load_key), True
        return min(candidates, key=self._load_key), False

    # -- provider protocol --------------------------------------------------
    def acquire(self, config: ContainerConfig) -> Generator:
        """Process: route to the best host, failing over on host errors.

        A :class:`HostDownError` marks the host down (and drains its
        pool metadata); any other acquire failure merely excludes the
        host for this request.  Either way the request is re-routed to
        the next-best host until one serves it or none is left.
        """
        if self._crashed:
            # Control-plane crash window: fail fast, data plane lives.
            raise RuntimeUnavailableError("cluster control plane is down")
        self._refresh_health()
        excluded: set = set()
        while True:
            index, warm = self._pick_host(config, frozenset(excluded))
            if warm:
                self.stats.reuse_routed += 1
            else:
                self.stats.cold_routed += 1
            self._inflight[index] += 1
            try:
                container, cold = yield from self.hosts[index].acquire(config)
            except HostDownError:
                self._dec_inflight(index)
                self._note_host_down(index)
                excluded.add(index)
                reason = "host_down"
            except ContainerError as error:
                self._dec_inflight(index)
                excluded.add(index)
                if len(excluded) + len(self._down - excluded) >= len(self.hosts):
                    raise  # nothing left to fail over to
                reason = type(error).__name__
            else:
                # Cluster-level reuse metadata: how the serving host
                # actually obtained the container (the routing guess
                # above is made before the host answers).
                if container.reuse == "relaxed":
                    self.stats.relaxed_hits += 1
                elif container.reuse == "repurpose":
                    self.stats.repurposes += 1
                self._by_container[container.container_id] = index
                return container, cold
            self.stats.failovers += 1
            if self.obs is not None:
                host = self.hosts[index].engine.name
                self.obs.emit(
                    EventKind.FAILOVER,
                    t=self.hosts[index].sim.now,
                    host=host,
                    reason=reason,
                )
                self.obs.counter(
                    "failovers_total",
                    help="Requests re-routed off a failed host",
                    host=host,
                ).inc()

    def _dec_inflight(self, index: int) -> None:
        count = self._inflight[index] - 1
        if count < 0 and self.recovery is not None:
            # The routing increment predates a control-plane crash that
            # zeroed the counters; floor instead of going negative.
            count = 0
        self._inflight[index] = count

    def _host_index_of(self, container: Container) -> Optional[int]:
        """Recover routing from the container id's host-name prefix."""
        for index, host in enumerate(self.hosts):
            if container.container_id.startswith(host.engine.name + "/"):
                return index
        return None

    def release(self, container: Container) -> Generator:
        index = self._by_container.pop(container.container_id, None)
        if index is None:
            if self.recovery is None:
                raise KeyError(
                    f"container {container.container_id} is not tracked "
                    "by this cluster"
                )
            # The routing entry died with a control-plane crash; the
            # container id itself names the host that runs it.
            index = self._host_index_of(container)
            if index is None:
                return
        self._dec_inflight(index)
        yield from self.hosts[index].release(container)

    def discard(self, container: Container) -> None:
        """Drop a mid-request casualty: bookkeeping only, no cleanup I/O."""
        index = self._by_container.pop(container.container_id, None)
        if index is None:
            if self.recovery is None:
                return
            index = self._host_index_of(container)
            if index is None:
                return
        self._dec_inflight(index)
        self.hosts[index].discard(container)

    # -- checkpoint / crash / recover ---------------------------------------
    def snapshot_state(self):
        """Provider hook: one host checkpoint per backend."""
        return tuple(host._snapshot_host() for host in self.hosts)

    def crash_control_plane(self) -> int:
        """Lose the scheduler's and every host's indexed state."""
        self._crashed = True
        lost = 0
        for host in self.hosts:
            lost += host.crash_control_plane()
        self._by_container.clear()
        for index in self._inflight:
            self._inflight[index] = 0
        self._down.clear()
        return lost

    def recover_from(self, checkpoint=None):
        """Rebuild every host, then re-derive the routing indexes.

        Host-level recovery re-adopts containers from engine ground
        truth; the cluster then rebuilds ``_by_container``/``_inflight``
        from the leased (request-owned) pool entries and re-derives the
        down-set from engine reachability.
        """
        host_checkpoints = {}
        if checkpoint is not None:
            host_checkpoints = {hc.host: hc for hc in checkpoint.hosts}
        repairs = []
        for host in self.hosts:
            repairs.extend(
                host._recover_host(host_checkpoints.get(host.engine.name))
            )
        self._by_container.clear()
        for index, host in enumerate(self.hosts):
            inflight = 0
            for entry in host.pool.entries():
                if not entry.available and entry.container.leased:
                    self._by_container[entry.container.container_id] = index
                    inflight += 1
            self._inflight[index] = inflight
        self._down.clear()
        for index, host in enumerate(self.hosts):
            if host.engine.is_unreachable:
                self._down.add(index)
        self._crashed = False
        return repairs

    def check_consistency(self) -> None:
        """Cross-layer invariant audit (pools + routing indexes)."""
        busy_routed = {index: 0 for index in range(len(self.hosts))}
        for container_id, index in self._by_container.items():
            assert 0 <= index < len(self.hosts), (
                f"container {container_id} routed to invalid host {index}"
            )
            host = self.hosts[index]
            assert container_id.startswith(host.engine.name + "/"), (
                f"container {container_id} routed to wrong host "
                f"{host.engine.name}"
            )
            busy_routed[index] += 1
        for index, host in enumerate(self.hosts):
            host.check_consistency()
            assert self._inflight[index] >= 0, (
                f"negative in-flight count on host {index}"
            )
            if self.recovery is None:
                # Post-crash floors can transiently break this bound,
                # so it only holds in the never-crashed regime.
                assert self._inflight[index] >= busy_routed[index], (
                    f"host {index} tracks more busy containers "
                    f"({busy_routed[index]}) than in-flight requests "
                    f"({self._inflight[index]})"
                )
        for index in self._down:
            assert 0 <= index < len(self.hosts), (
                f"down-set contains invalid host index {index}"
            )

    def scan_divergences(self):
        """Report-only ground-truth sweep across hosts and routing."""
        problems = []
        for host in self.hosts:
            problems.extend(host.scan_divergences())
        return problems

    def on_tick(self, now: float) -> None:
        for host in self.hosts:
            host.on_tick(now)

    def start_control_loops(self) -> None:
        """Start every per-host adaptive control loop."""
        for host in self.hosts:
            host.start_control_loop()

    def stop_control_loops(self) -> None:
        """Stop every per-host adaptive control loop."""
        for host in self.hosts:
            host.stop_control_loop()

    def shutdown(self) -> Generator:
        for host in self.hosts:
            yield from host.shutdown()


def make_cluster_engines(
    sim,
    registry,
    n_hosts: int = 3,
    seed: int = 0,
    profile=None,
    jitter_sigma: float = 0.06,
) -> List[ContainerEngine]:
    """Build ``n_hosts`` engines on one simulator, jitter streams forked.

    This is the engine-construction half of
    :func:`make_cluster_platform`, for callers that drive a
    :class:`ClusterHotC` directly without the FaaS gateway stack (the
    scenario runner's trace mode).  Hosts are named ``host-0`` …
    ``host-{n-1}`` and each draws jitter from its own named RNG stream,
    so adding hosts never perturbs existing ones.
    """
    from repro.hardware.profiles import T430_SERVER
    from repro.sim.rng import RngRegistry

    if n_hosts < 1:
        raise ValueError("n_hosts must be >= 1")
    profile = profile or T430_SERVER
    rngs = RngRegistry(seed).fork("cluster-hosts")
    return [
        ContainerEngine(
            sim,
            registry,
            profile=profile,
            rng=rngs.stream(f"engine-jitter-{index}"),
            jitter_sigma=jitter_sigma,
            name=f"host-{index}",
        )
        for index in range(n_hosts)
    ]


def make_cluster_platform(
    registry,
    n_hosts: int = 3,
    seed: int = 0,
    profile=None,
    hotc_config: Optional[HotCConfig] = None,
    placement: str = "reuse-aware",
    jitter_sigma: float = 0.06,
    gateway_concurrency: int = 1024,
):
    """Build a :class:`~repro.faas.FaasPlatform` backed by ``n_hosts``.

    The first host is the platform's default engine (gateway-side
    latencies come from it); the remaining hosts are created on the same
    simulator with independent jitter streams.  Returns the platform;
    its ``provider`` is the :class:`ClusterHotC`.
    """
    from repro.faas.platform import FaasPlatform
    from repro.hardware.profiles import T430_SERVER
    from repro.sim.rng import RngRegistry

    if n_hosts < 1:
        raise ValueError("n_hosts must be >= 1")
    profile = profile or T430_SERVER
    extra_rngs = RngRegistry(seed).fork("cluster-hosts")

    def factory(first_engine: ContainerEngine) -> ClusterHotC:
        engines = [first_engine]
        for index in range(1, n_hosts):
            engines.append(
                ContainerEngine(
                    first_engine.sim,
                    registry,
                    profile=profile,
                    rng=extra_rngs.stream(f"engine-jitter-{index}"),
                    jitter_sigma=jitter_sigma,
                    name=f"host-{index}",
                )
            )
        return ClusterHotC(engines, config=hotc_config, placement=placement)

    return FaasPlatform(
        registry,
        seed=seed,
        profile=profile,
        provider_factory=factory,
        jitter_sigma=jitter_sigma,
        gateway_concurrency=gateway_concurrency,
    )
