"""HotC: the container-based runtime management middleware (Section IV).

HotC sits between clients and backend hosts as a
:class:`~repro.faas.platform.RuntimeProvider`:

* **acquire** — parameter analysis derives the runtime key; an
  available pooled container of that type is reused (Algorithm 1),
  otherwise a new one is booted, after making room if the pool is at
  its container cap or the host shows memory pressure.
* **release** — the used container is cleaned (Algorithm 2) and
  returned to the pool off the critical path.
* **control loop** — every interval, per-key demand (peak concurrent
  containers needed) feeds the combined ES+Markov predictor; the pool
  is resized toward the forecast: pre-boot on predicted growth, retire
  the oldest idle containers on predicted decline.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.admission.brownout import BrownoutController
from repro.containers.container import Container, ContainerConfig
from repro.containers.engine import ContainerEngine
from repro.core.breaker import CircuitBreaker
from repro.core.cleanup import CleanupWorker
from repro.core.keys import KeyPolicy, RuntimeKey, runtime_key
from repro.core.pool import ContainerRuntimePool, PoolLimits
from repro.core.predictor.combined import CombinedPredictor
from repro.core.predictor.controller import AdaptivePoolController
from repro.core.similarity import KeySimilarityModel
from repro.faas.platform import RuntimeProvider
from repro.health.container import (
    ContainerCondition,
    ContainerHealthConfig,
    ContainerHealthPlane,
)
from repro.obs.events import EventKind
from repro.faults.errors import (
    BootFailure,
    RuntimeUnavailableError,
    TransientEngineError,
)
from repro.recovery.checkpoint import HostCheckpoint, PoolEntrySnapshot
from repro.recovery.manager import RepairEvent, RepairKind
from repro.sim.engine import AnyOf

__all__ = ["HotC", "HotCConfig"]

#: Boot failures HotC retries on the same host (host outages are not
#: retryable locally; the cluster scheduler fails over instead).
_RETRYABLE = (BootFailure, TransientEngineError)


@dataclass(frozen=True)
class HotCConfig:
    """Tunables of the middleware (defaults follow the paper)."""

    key_policy: KeyPolicy = KeyPolicy.FULL
    limits: PoolLimits = field(default_factory=PoolLimits)
    eviction: str = "oldest"
    #: Adaptive control period; 0 disables the prediction loop.
    control_interval_ms: float = 1_000.0
    #: Eq. 1 smoothing coefficient (paper: 0.8).
    alpha: float = 0.8
    #: Markov region states for the residual chain.
    n_states: int = 4
    #: Initial-value policy of the smoother ("auto" per the paper).
    init: str = "auto"
    #: Use the Markov correction (False = ES only; the Fig 10a ablation).
    markov_correction: bool = True
    #: Pre-boot containers toward the forecast (False = reuse only).
    prewarm: bool = True
    #: Pool-sizing risk level: provision for this quantile of the
    #: predicted demand over ``target_horizon`` control intervals.
    target_quantile: float = 0.9
    #: Look-ahead (control intervals) for the k-step Markov forecast.
    target_horizon: int = 4
    #: Future-work partial-key matching (Section VII): on a full-key
    #: miss, reuse an idle container whose *relaxed* key matches and
    #: apply the configuration delta.  ``None`` disables the fallback.
    fallback_key_policy: Optional[KeyPolicy] = None
    #: Inter-key repurposing ("zygote" sharing, à la Pagurus): after a
    #: full-key *and* relaxed-key miss, re-specialize an idle donor
    #: container of a different key when its deterministic re-spec cost
    #: beats the predicted cold boot and the donor key's forecast says
    #: the container will not be missed.  Strictly opt-in: disabled
    #: runs take no extra sim events and stay bit-identical.
    repurpose: bool = False
    #: Minimum key-similarity score a donor must reach to be priced.
    repurpose_min_score: float = 0.5
    #: Extra boot attempts after a retryable boot failure (0 = one shot).
    boot_retries: int = 2
    #: Exponential backoff between boot attempts: the n-th retry waits
    #: ``base * factor**(n-1)`` ms, +/- ``jitter`` fraction when the
    #: engine has a jitter RNG.
    boot_backoff_base_ms: float = 50.0
    boot_backoff_factor: float = 2.0
    boot_backoff_jitter: float = 0.1
    #: Boot deadline; when a boot exceeds it, one hedged fallback boot
    #: races the straggler (first to finish wins, the loser is pooled).
    #: ``None`` disables hedging and keeps the boot inline.
    boot_timeout_ms: Optional[float] = None
    #: Per-key circuit breaker: open after this many consecutive boot
    #: failures and fail fast (also pausing prewarm) until the cooldown
    #: elapses; a half-open probe then decides.  <= 0 disables it.
    breaker_threshold: int = 3
    breaker_cooldown_ms: float = 5_000.0
    #: Sliding-window length of each key's residual Markov chain; a
    #: long-running gateway must not grow predictor state without bound.
    #: ``None`` keeps every residual (the pre-window batch behaviour).
    markov_window: Optional[int] = 512
    #: Container aging & self-healing (DESIGN.md §14): a per-container
    #: health plane scores exec outcomes, latency residuals and RSS
    #: trajectory, quarantines contaminated containers, and proactively
    #: recycles aged ones (demote-drain-replace, token-bucket limited).
    #: ``None`` disables the whole plane: no records, no RNG, no events
    #: — runs stay bit-identical to a build without it.
    container_health: Optional[ContainerHealthConfig] = None

    def __post_init__(self) -> None:
        if self.fallback_key_policy is self.key_policy:
            raise ValueError(
                "fallback_key_policy must differ from key_policy"
            )
        if not 0.0 <= self.repurpose_min_score <= 1.0:
            raise ValueError("repurpose_min_score must be in [0, 1]")
        if self.boot_retries < 0:
            raise ValueError("boot_retries must be >= 0")
        if self.boot_backoff_base_ms < 0:
            raise ValueError("boot_backoff_base_ms must be >= 0")
        if self.boot_backoff_factor < 1.0:
            raise ValueError("boot_backoff_factor must be >= 1")
        if not 0.0 <= self.boot_backoff_jitter < 1.0:
            raise ValueError("boot_backoff_jitter must be in [0, 1)")
        if self.boot_timeout_ms is not None and self.boot_timeout_ms <= 0:
            raise ValueError("boot_timeout_ms must be > 0 (or None)")
        if self.breaker_cooldown_ms <= 0:
            raise ValueError("breaker_cooldown_ms must be > 0")
        if self.markov_window is not None and self.markov_window < 2:
            raise ValueError("markov_window must be >= 2 (or None)")

    def make_predictor(self) -> CombinedPredictor:
        """A fresh predictor configured per this config."""
        min_history = 6 if self.markov_correction else 10**9
        return CombinedPredictor(
            alpha=self.alpha,
            n_states=self.n_states,
            init=self.init,
            min_history=min_history,
            markov_window=self.markov_window,
        )


class HotC(RuntimeProvider):
    """The middleware; one instance per backend host."""

    def __init__(self, engine: ContainerEngine, config: Optional[HotCConfig] = None) -> None:
        self.engine = engine
        self.sim = engine.sim
        self.config = config or HotCConfig()
        self.pool = ContainerRuntimePool(
            limits=self.config.limits, eviction=self.config.eviction
        )
        self.cleanup = CleanupWorker(self.sim, engine, self.pool)
        self.controller = AdaptivePoolController(
            predictor_factory=self.config.make_predictor,
            max_target=self.config.limits.max_containers,
        )
        #: First-seen config per key, used for prewarm boots.
        self._config_for_key: Dict[RuntimeKey, ContainerConfig] = {}
        #: Demand tracking: currently busy and interval peak per key.
        self._busy: Dict[RuntimeKey, int] = {}
        self._peak: Dict[RuntimeKey, int] = {}
        #: In-flight boots (cold and prewarm) counted against the cap.
        self._pending_boots: Dict[RuntimeKey, int] = {}
        self._control_running = False
        #: Bumped on every control-loop start so stale loops exit.
        self._control_generation = 0
        #: Per-key boot circuit breakers (created on first cold boot).
        self._breakers: Dict[RuntimeKey, CircuitBreaker] = {}
        #: Set by shutdown(): released/landing containers are retired
        #: instead of recycled, and no new prewarms are spawned.
        self._draining = False
        #: Prune per-key side-indexes when a key's last container leaves.
        self.pool.on_key_empty = self._forget_key
        #: Partial-key matching: relaxed key -> full keys seen under it.
        self._relaxed_index: Dict[RuntimeKey, set] = {}
        #: Reuses served through the relaxed fallback (stats).
        self.partial_hits = 0
        #: Inter-key repurposing: similarity model + cached per-key
        #: cold-boot estimates.  ``None`` unless opted in, so disabled
        #: runs never construct (or consult) the model.
        self.similarity: Optional[KeySimilarityModel] = (
            KeySimilarityModel(registry=engine.registry)
            if self.config.repurpose
            else None
        )
        self._cold_estimates: Dict[RuntimeKey, float] = {}
        #: Optional replicated metadata store (future work); when set,
        #: acquire journals the pool transition before returning.
        self.metadata_store = None
        #: Optional observatory; ``None`` keeps every hook inert.
        self.obs = None
        #: Optional admission controller; ``None`` keeps overload
        #: protection (brownout, AIMD tick) fully inert.
        self.admission = None
        self._brownout: Optional[BrownoutController] = None
        #: Optional recovery manager; ``None`` keeps checkpointing,
        #: auditing, and crash handling fully inert.
        self.recovery = None
        #: True between crash_control_plane() and recover_from():
        #: acquire fails fast, the control loop skips its tick.
        self._crashed = False
        #: In-flight *prewarm* boots per key (a subset of
        #: ``_pending_boots``): these have no requester waiting, so a
        #: host failover can absorb their cap reservations outright.
        self._pending_prewarms: Dict[RuntimeKey, int] = {}
        #: Bumped by absorb_pending_boots(); a prewarm landing with a
        #: stale epoch belongs to a previous host life and is retired.
        self._prewarm_epoch = 0
        #: Container health plane (aging/contamination verdicts), only
        #: constructed when opted in — distinct from the cluster's
        #: *host* health monitor.
        self.container_health: Optional[ContainerHealthPlane] = (
            ContainerHealthPlane(
                self.config.container_health, host=engine.name
            )
            if self.config.container_health is not None
            else None
        )
        #: Quarantined ``(container, key, reason)`` triples awaiting
        #: their token-bucket-limited recycle.
        self._recycle_queue: List[tuple] = []
        #: Recycle token bucket: starts full so the first verdicts act
        #: immediately; refilled lazily from sim-time deltas.
        self._recycle_tokens: float = (
            float(self.config.container_health.recycle_burst)
            if self.config.container_health is not None
            else 0.0
        )
        self._recycle_refill_at = 0.0

    # -- the provider protocol ------------------------------------------------
    def key_of(self, config: ContainerConfig) -> RuntimeKey:
        """Parameter analysis: config → runtime key."""
        return runtime_key(config, self.config.key_policy)

    def attach_metadata_store(self, store) -> None:
        """Journal pool transitions to a replicated KV store.

        Puts one quorum write on the acquire path (durability at the
        price of the store's round trip) — the reliability extension of
        Section VII.
        """
        self.metadata_store = store

    def attach_observatory(self, observatory) -> None:
        """Wire the telemetry layer through this host (``None`` detaches).

        Attaches the observatory to the engine (boot events), the pool
        (hit/miss, labelled with this host's name) and the cleanup
        worker, and records eviction/prewarm/breaker/control-tick events
        from the middleware itself.
        """
        self.obs = observatory
        self.engine.attach_observatory(observatory)
        self.pool.attach_observatory(observatory, host=self.engine.name)
        self.cleanup.obs = observatory
        if self.container_health is not None:
            self.container_health.obs = observatory

    def attach_admission(self, controller) -> None:
        """Wire overload protection through this host (``None`` detaches).

        The control loop then drives the controller's AIMD tick and this
        host's brownout state machine: under memory pressure (or a
        container-cap trip) the host degrades — prewarm pauses, pool
        targets shrink, and standard-QoS requests are shed at the
        gateway — *before* warm containers get evicted.
        """
        self.admission = controller
        if controller is None:
            self._brownout = None
            return
        self._brownout = BrownoutController(
            enter_threshold=self.config.limits.memory_threshold,
            exit_margin=controller.config.brownout_exit_margin,
        )

    def attach_recovery(self, manager) -> None:
        """Wire a recovery manager through this host (``None`` detaches).

        The control loop then audits consistency and checkpoints the
        learned state on the manager's cadence, and release/discard
        tolerate containers the (rebuilt) pool no longer tracks.
        """
        self.recovery = manager

    def acquire(self, config: ContainerConfig) -> Generator:
        """Process: Algorithm 1 — reuse when available, else cold boot.

        The reuse hierarchy is three-way.  With ``fallback_key_policy``
        set, a full-key miss first tries an idle container of a
        *similar* configuration (same relaxed key) and applies the
        config delta; with ``repurpose`` on, a relaxed miss may then
        re-specialize an idle donor of a *different* key whose re-spec
        cost beats the predicted cold boot — each strictly cheaper than
        the cold boot that follows otherwise.

        The cold-boot path is failure-hardened: boots are retried with
        exponential backoff on retryable failures, optionally hedged
        past ``boot_timeout_ms``, and refused outright while the key's
        circuit breaker is open.  If anything raises, the demand bump
        taken at entry is rolled back so ``_busy`` (and with it the
        predictor's demand signal) never leaks.
        """
        if self._crashed:
            # Control-plane crash window: fail fast so the caller's
            # retry policy decides; the data plane keeps running.
            raise RuntimeUnavailableError(
                f"control plane of host {self.engine.name} is down"
            )
        key = self.key_of(config)
        self._config_for_key.setdefault(key, config)
        self._index_relaxed(key)
        self._bump_busy(key, +1)
        try:
            container = self._pool_acquire_healthy(key)
            if container is not None:
                container.reuse = "hit"
                container.respec_ms = 0.0
            else:
                if self.config.fallback_key_policy is not None:
                    container = yield from self._acquire_similar(key, config)
                if container is None and self.similarity is not None:
                    container = yield from self._acquire_repurpose(key, config)
            if container is not None:
                container.leased = True
                if self.metadata_store is not None:
                    yield from self._journal(key, container, "busy")
                return container, False

            breaker = self._breaker_for(key)
            if not breaker.allow(self.sim.now):
                self.engine.stats.breaker_fastfails += 1
                raise RuntimeUnavailableError(
                    f"circuit breaker open for runtime key {key}"
                )
            container = yield from self._boot_with_retry(key, config, breaker)
            self.pool.register(container, key, now=self.sim.now, available=False)
            container.leased = True
            if self.metadata_store is not None:
                yield from self._journal(key, container, "busy")
            return container, True
        except BaseException:
            # Roll back the demand bump: a failed acquire must not keep
            # inflating ``_busy``/``_peak`` forever.
            self._bump_busy(key, -1)
            raise

    def _pool_acquire_healthy(self, key: RuntimeKey) -> Optional[Container]:
        """Pool lookup that discards entries whose container has died.

        Containers can be killed out from under the pool (host OOM,
        crash injection in tests); a dead entry must not be handed to a
        request.
        """
        while True:
            container = self.pool.acquire(key, now=self.sim.now)
            if container is None or container.is_reusable:
                return container
            # Not a real hit: un-count it so the retry is the only
            # lookup recorded and hit_ratio stays honest.
            self.pool.discard_dead(container)

    def _index_relaxed(self, key: RuntimeKey) -> None:
        if self.config.fallback_key_policy is None:
            return
        relaxed = runtime_key(
            self._config_for_key[key], self.config.fallback_key_policy
        )
        self._relaxed_index.setdefault(relaxed, set()).add(key)

    def _forget_key(self, key: RuntimeKey) -> None:
        """Pool hook: the last container of ``key`` was retired.

        Prunes ``key`` from the relaxed fallback index (and drops the
        relaxed bucket once empty) so long-running multi-tenant hosts do
        not accumulate index entries for key types that no longer have
        any pooled container.  The next request of that type re-indexes.
        """
        if self.config.fallback_key_policy is None:
            return
        config = self._config_for_key.get(key)
        if config is None:
            return
        relaxed = runtime_key(config, self.config.fallback_key_policy)
        full_keys = self._relaxed_index.get(relaxed)
        if full_keys is not None:
            full_keys.discard(key)
            if not full_keys:
                del self._relaxed_index[relaxed]

    def _donor_acquire_healthy(
        self, key: RuntimeKey, reuse: str
    ) -> Optional[Container]:
        """Claim an idle donor of ``key``, discarding dead entries.

        Unlike :meth:`_pool_acquire_healthy` this books the reuse as
        ``relaxed``/``repurpose`` rather than an exact hit — the
        requesting key's miss was already counted, so the donor key
        must record neither a hit nor a second miss.
        """
        while True:
            container = self.pool.acquire_donor(key, now=self.sim.now, reuse=reuse)
            if container is None:
                return None
            if container.is_reusable:
                # Lease immediately: the re-spec yield that follows is a
                # window where a concurrent recovery sweep must see this
                # container as request-owned, not idle.
                container.leased = True
                return container
            self.pool.discard_dead(container, reuse=reuse)

    def _adopt_donor(
        self,
        container: Container,
        key: RuntimeKey,
        config: ContainerConfig,
        reuse: str,
        respec_ms: float,
    ) -> None:
        """Re-key a claimed donor under the requested configuration."""
        if self.pool.contains(container):
            self.pool.remove(container)
        container.config = config
        self.pool.register(container, key, now=self.sim.now, available=False)
        container.reuse = reuse
        container.respec_ms = respec_ms

    def _acquire_similar(self, key: RuntimeKey, config: ContainerConfig) -> Generator:
        """Process: the partial-key fallback — reuse and reconfigure."""
        relaxed = runtime_key(config, self.config.fallback_key_policy)
        candidates = self._relaxed_index.get(relaxed, ())
        for candidate in sorted(candidates, key=str):
            if candidate == key:
                continue
            container = self._donor_acquire_healthy(candidate, "relaxed")
            if container is None:
                continue
            # Apply the configuration delta; the runtime stays hot.
            respec_ms = self.engine.latency.container_reconfigure()
            yield self.sim.timeout(respec_ms)
            if not container.is_reusable:
                # Died while being reconfigured (crash injection): the
                # corpse must not be re-registered, let alone handed out.
                self.pool.discard_dead(container, reuse="relaxed")
                continue
            self._adopt_donor(container, key, config, "relaxed", respec_ms)
            self.partial_hits += 1
            self.engine.stats.relaxed_hits += 1
            return container
        return None

    def _cold_boot_estimate(self, key: RuntimeKey, config: ContainerConfig) -> float:
        """Deterministic cold-boot prediction for the repurpose decision.

        Cached per key; grounded in the same calibration tables the
        engine's boot pipeline draws from (create + network + volume +
        start + language cold overhead), jitter-free so the decision
        never consumes RNG state.
        """
        estimate = self._cold_estimates.get(key)
        if estimate is None:
            try:
                language = self.engine.registry.resolve(config.image).language
            except Exception:
                language = None
            estimate = self.engine.latency.cold_boot_estimate_ms(
                config.network.mode,
                language=language,
                shared_namespace=config.network.mode == "container",
            )
            self._cold_estimates[key] = estimate
        return estimate

    def _same_language(self, donor_image: str, target_image: str) -> bool:
        """Whether two image references bake in the same language runtime."""
        try:
            donor = self.engine.registry.resolve(donor_image)
            target = self.engine.registry.resolve(target_image)
        except Exception:
            return False
        return donor.language == target.language

    def _acquire_repurpose(self, key: RuntimeKey, config: ContainerConfig) -> Generator:
        """Process: the inter-key repurposing path ("zygote" sharing).

        Ranks idle donors of *other* keys by deterministic re-spec cost
        (similarity-scored: shared base layers, network mode, memory
        delta) and claims the cheapest one that (a) beats the predicted
        cold boot and (b) the :class:`AdaptivePoolController` says will
        not be missed — only keys holding more containers than the
        larger of their point-forecast and risk-aware targets donate.
        The donor is claimed *before* the re-spec timeout so no other
        acquire (or cluster failover retry) can double-claim it.
        """
        model = self.similarity
        estimate = self._cold_boot_estimate(key, config)
        candidates = []
        for donor_key in self.pool.keys():
            if donor_key == key or self.pool.num_available(donor_key) == 0:
                continue
            donor_config = self._config_for_key.get(donor_key)
            if donor_config is None:
                continue
            score = model.score(donor_config, config)
            if score < self.config.repurpose_min_score:
                continue
            cost = model.respec_cost_ms(score, estimate)
            if cost is None:
                continue
            headroom = self.controller.donation_headroom(
                donor_key,
                self.pool.num_total(donor_key),
                quantile=self.config.target_quantile,
                horizon=self.config.target_horizon,
            )
            if headroom < 1:
                continue
            candidates.append((cost, str(donor_key), donor_key, score))
        candidates.sort(key=lambda item: (item[0], item[1]))
        for cost, _, donor_key, score in candidates:
            container = self._donor_acquire_healthy(donor_key, "repurpose")
            if container is None:
                continue
            donor_image = container.config.image
            yield self.sim.timeout(cost)
            if not container.is_reusable:
                # Died mid-re-spec (crash injection / host outage): the
                # failover drain may have already forgotten the entry;
                # discard_dead tolerates that and rolls the counter back.
                self.pool.discard_dead(container, reuse="repurpose")
                continue
            if donor_image != config.image and not self._same_language(
                donor_image, config.image
            ):
                # The runtime inside was booted for the donor's image;
                # a different-language target must re-init honestly
                # (same-language zygotes keep the warm interpreter —
                # that is the Pagurus saving).
                container.runtime_initialized = False
            injector = self.engine.fault_injector
            if injector is not None and injector.exec_poison():
                # A re-spec can leave dirty state behind too — the
                # STATE_POISON fault covers both exec and re-spec.
                container.poisoned = True
            if self.container_health is not None:
                # Post-repurpose hygiene: the new key starts a fresh
                # health record, and a poisoned donor is scrubbed for
                # ``sanitize_ms`` instead of carrying the contamination.
                sanitize_ms = self.container_health.note_respec(
                    container, key, self.sim.now
                )
                if sanitize_ms > 0.0:
                    yield self.sim.timeout(sanitize_ms)
                    if not container.is_reusable:
                        self.pool.discard_dead(container, reuse="repurpose")
                        continue
                    cost += sanitize_ms
            self._adopt_donor(container, key, config, "repurpose", cost)
            self.engine.stats.repurposes += 1
            if self.obs is not None:
                self.obs.emit(
                    EventKind.REPURPOSE,
                    t=self.sim.now,
                    host=self.engine.name,
                    key=str(key),
                    donor=str(donor_key),
                    container=container.container_id,
                    score=round(score, 4),
                    cost_ms=round(cost, 3),
                )
                self.obs.counter(
                    "pool_repurposes_total",
                    help="Acquires served by re-specializing an idle donor",
                    host=self.engine.name,
                ).inc()
            return container
        return None

    def _journal(self, key: RuntimeKey, container: Container, state: str) -> Generator:
        if self.metadata_store is None:
            return
        yield from self.metadata_store.put(
            (str(key), container.container_id), state
        )

    # -- failure-hardened boot path --------------------------------------------
    def _breaker_for(self, key: RuntimeKey) -> CircuitBreaker:
        """The key's circuit breaker (created on first use)."""
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=self.config.breaker_threshold,
                cooldown_ms=self.config.breaker_cooldown_ms,
            )
            breaker.on_transition = self._breaker_transition_hook(key)
            self._breakers[key] = breaker
        return breaker

    def _breaker_transition_hook(self, key: RuntimeKey):
        """Per-key callback recording breaker state changes."""

        def hook(old: str, new: str) -> None:
            if self.obs is None:
                return
            self.obs.emit(
                EventKind.BREAKER,
                t=self.sim.now,
                host=self.engine.name,
                key=str(key),
                **{"from": old, "to": new},
            )
            self.obs.counter(
                "breaker_transitions_total",
                help="Circuit-breaker state changes by target state",
                host=self.engine.name,
                to=new,
            ).inc()

        return hook

    def _emit_evict(self, entry, reason: str) -> None:
        """Record one pool eviction (caller checked ``obs`` is set)."""
        self.obs.emit(
            EventKind.POOL_EVICT,
            t=self.sim.now,
            host=self.engine.name,
            key=str(entry.key),
            container=entry.container.container_id,
            reason=reason,
        )
        self.obs.counter(
            "pool_evictions_total",
            help="Idle containers evicted, by reason",
            host=self.engine.name,
            reason=reason,
        ).inc()

    def _backoff_ms(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), with jitter."""
        delay = self.config.boot_backoff_base_ms * (
            self.config.boot_backoff_factor ** (attempt - 1)
        )
        rng = self.engine.latency.rng
        if rng is not None and self.config.boot_backoff_jitter > 0:
            spread = self.config.boot_backoff_jitter
            delay *= 1.0 + spread * (2.0 * float(rng.random()) - 1.0)
        return delay

    def _boot_with_retry(
        self, key: RuntimeKey, config: ContainerConfig, breaker: CircuitBreaker
    ) -> Generator:
        """Process: boot with bounded retry + backoff under the breaker.

        Retries only same-host-retryable failures; host outages
        propagate immediately so the cluster scheduler can fail over.
        """
        attempt = 0
        while True:
            try:
                container = yield from self._boot_guarded(key, config)
            except _RETRYABLE:
                if breaker.record_failure(self.sim.now):
                    self.engine.stats.breaker_opens += 1
                attempt += 1
                if attempt > self.config.boot_retries or not breaker.allow(
                    self.sim.now
                ):
                    raise
                self.engine.stats.boot_retries += 1
                yield self.sim.timeout(self._backoff_ms(attempt))
            else:
                breaker.record_success()
                return container

    def _boot_once(
        self, key: RuntimeKey, config: ContainerConfig, warm_runtime: bool = False
    ) -> Generator:
        """Process: one capacity-guarded boot attempt.

        The boot counts against the cap while in flight so concurrent
        cold boots cannot collectively overshoot ``max_containers`` —
        and the pending count is released even when the boot raises.
        """
        self._note_pending(key, +1)
        try:
            yield from self._make_room()
            container = yield from self.engine.boot_container(
                config, warm_runtime=warm_runtime
            )
        finally:
            self._note_pending(key, -1)
        return container

    def _boot_guarded(self, key: RuntimeKey, config: ContainerConfig) -> Generator:
        """Process: one boot attempt, hedged past ``boot_timeout_ms``.

        Without a timeout configured the boot runs inline (identical to
        the unhardened path).  With one, a straggling primary boot is
        raced by a single hedged boot; the first to finish serves the
        request and the loser lands in the pool as a warm spare.
        """
        if self.config.boot_timeout_ms is None:
            container = yield from self._boot_once(key, config)
            return container
        primary = self.sim.process(
            self._boot_once(key, config), name=f"boot:{key}"
        )
        deadline = self.sim.timeout(self.config.boot_timeout_ms)
        try:
            index, value = yield AnyOf([primary, deadline])
        finally:
            deadline.cancel()
        if index == 0:
            return value
        # The primary exceeded the deadline: hedge once and race.
        self.engine.stats.hedged_boots += 1
        hedge = self.sim.process(
            self._boot_once(key, config), name=f"hedge:{key}"
        )
        racers = [primary, hedge]
        last_error: Optional[BaseException] = None
        while racers:
            try:
                index, value = yield AnyOf(racers)
            except Exception as error:  # a racer failed; keep the rest
                last_error = error
                racers = [p for p in racers if not p.triggered]
                continue
            winner = racers[index]
            for loser in racers:
                if loser is not winner:
                    self._absorb_boot(key, loser)
            return value
        raise last_error

    def _absorb_boot(self, key: RuntimeKey, process) -> None:
        """Land a losing hedged boot: pool it warm, or retire it.

        Failures are absorbed silently (they were already counted when
        raised); a successful late boot joins the pool as an available
        warm container unless the pool is full or draining.
        """

        def _land(event) -> None:
            if not event.ok or event.value is None:
                return
            container = event.value
            if self.pool.contains(container):
                # A recovery sweep already adopted this boot's container.
                return
            if (
                self._draining
                or self.pool.total_live >= self.config.limits.max_containers
            ):
                self.sim.process(
                    self.cleanup.retire(container),
                    name=f"retire-late-boot:{container.container_id}",
                )
            else:
                self.pool.register(
                    container, key, now=self.sim.now, available=True
                )

        process.add_callback(_land)

    def release(self, container: Container) -> Generator:
        """Process: clean and recycle (runs off the critical path).

        Containers that died while busy, or that come back during a
        drain, are retired instead of recycled.
        """
        key = self.key_of(container.config)
        container.leased = False
        self._bump_busy(key, -1)
        if not container.is_reusable or not self.pool.contains(container):
            # Dead (killed out from under us), or retired while busy —
            # either way it must not rejoin the pool.
            yield from self.cleanup.retire(container)
            return
        if self._draining:
            # Shutdown mid-burst: busy containers retire on release.
            yield from self.cleanup.retire(container)
            return
        if self.container_health is not None:
            plane = self.container_health
            plane.observe_success(container, key, self.sim.now)
            reason = plane.recycle_reason(container, self.sim.now)
            if reason is not None:
                # Demote-drain-replace: out of every index now, destroyed
                # under the token bucket, replaced by a paired prewarm.
                self._quarantine_for_recycle(container, key, reason)
                yield from self._drain_recycle_queue()
                return
        yield from self.cleanup.clean_and_recycle(container)
        if self.metadata_store is not None:
            yield from self._journal(key, container, "available")
        # Post-release pressure check: the paper terminates the oldest
        # live container when memory crosses the threshold.  (Guarded
        # here so the no-pressure common case costs no generator.)
        if self.engine.resources.memory_pressure(
            self.config.limits.memory_threshold
        ):
            yield from self._relieve_pressure()

    def discard(self, container: Container) -> None:
        """Drop a busy container that died mid-request (crash/outage).

        Rolls back the demand bump and forgets the pool entry; a
        container somehow still live is retired asynchronously.
        """
        key = self.key_of(container.config)
        container.leased = False
        self._bump_busy(key, -1)
        if self.container_health is not None:
            # An exec failure is hard contamination evidence: it feeds
            # the per-container crash-loop breaker (threshold 1 by
            # default — the watchdog discards after one failure, so a
            # second chance would serve a request on known-bad state).
            self.container_health.observe_failure(container, key, self.sim.now)
            if self.pool.contains(container) and container.is_live:
                self._quarantine_for_recycle(container, key, "breaker")
                self.sim.process(
                    self._drain_recycle_queue(), name="hotc-recycle"
                )
                return
            self.container_health.forget(container)
        if self.pool.contains(container):
            self.pool.remove(container)
        if container.is_live:
            self.sim.process(
                self.cleanup.retire(container),
                name=f"discard:{container.container_id}",
            )

    # -- container health: quarantine + token-bucket recycling -----------------
    def _quarantine_for_recycle(
        self, container: Container, key: RuntimeKey, reason: str
    ) -> None:
        """Pull a contaminated/aged container out of service (synchronous).

        The entry leaves every availability index immediately — no
        acquire, donor claim or half-open probe can see it once this
        returns — and joins the recycle queue; the destroy itself waits
        for a token so a wave of simultaneous verdicts cannot become a
        cold-start storm.
        """
        plane = self.container_health
        record = plane.record_of(container)
        if record is None or record.state is not ContainerCondition.QUARANTINED:
            plane.condemn(container, record, self.sim.now, reason=reason)
        self.pool.quarantine(container)
        self._recycle_queue.append((container, key, reason))

    def _refill_recycle_tokens(self) -> None:
        config = self.config.container_health
        elapsed = self.sim.now - self._recycle_refill_at
        if elapsed > 0.0:
            self._recycle_tokens = min(
                float(config.recycle_burst),
                self._recycle_tokens
                + config.recycle_rate_per_s * elapsed / 1000.0,
            )
            self._recycle_refill_at = self.sim.now

    def _drain_recycle_queue(self) -> Generator:
        """Process: destroy queued containers while tokens last.

        Runs from release() and from the control tick; overlapping
        drains are safe — each queue item is popped exactly once and a
        token is spent before any yield.  Items the bucket cannot cover
        stay queued for the next tick.
        """
        self._refill_recycle_tokens()
        while self._recycle_queue and self._recycle_tokens >= 1.0:
            self._recycle_tokens -= 1.0
            container, key, reason = self._recycle_queue.pop(0)
            yield from self._recycle_one(container, key, reason)

    def _recycle_one(
        self, container: Container, key: RuntimeKey, reason: str
    ) -> Generator:
        """Process: destroy one quarantined container, prewarm its key.

        The replacement prewarm is requested *before* the destroy so the
        key's warm-capacity dip is already being covered while the old
        container stops.  The prewarm self-guards on drain/brownout/
        breaker — that is the brownout coordination: recycling proceeds
        under pressure (it frees memory) while the replacement pauses.
        """
        self.container_health.note_recycling(container, self.sim.now, reason)
        if key in self._config_for_key:
            self._spawn_prewarm(key)
        yield from self.cleanup.retire(container)
        if self.pool.is_quarantined(container):
            # A control-plane crash mid-retire wipes the quarantine set;
            # guard so the close-out never double-counts.
            self.pool.mark_recycled(container)
        self.container_health.forget(container)

    def _health_sweep(self) -> None:
        """Control-tick sweep: recycle verdicts for *idle* containers.

        Release-time checks cover containers that serve requests; an
        idle container can still age past ``max_age_ms`` without ever
        being released again, so the control loop sweeps the
        availability lists too.
        """
        plane = self.container_health
        now = self.sim.now
        for key in tuple(self.pool.keys()):
            for entry in self.pool.available_entries(key):
                reason = plane.recycle_reason(entry.container, now)
                if reason is not None:
                    self._quarantine_for_recycle(entry.container, key, reason)

    def drain_dead(self) -> int:
        """Purge pool metadata of containers that are no longer live.

        Called by the cluster scheduler when it detects a host outage:
        the dead host's pool entries must not keep attracting reuse
        routing.  Returns the number of entries dropped.
        """
        removed = 0
        for entry in self.pool.entries():
            if not entry.container.is_live:
                self.pool.remove(entry.container)
                removed += 1
        return removed

    # -- checkpoint / crash / recover -----------------------------------------
    def _snapshot_host(self) -> HostCheckpoint:
        """This host's recoverable control-plane state, as pure data."""
        entries = tuple(
            PoolEntrySnapshot(
                container_id=entry.container.container_id,
                key=entry.key,
                available=entry.available,
            )
            for entry in sorted(
                self.pool.entries(),
                key=lambda entry: entry.container.container_id,
            )
        )
        return HostCheckpoint(
            host=self.engine.name,
            entries=entries,
            configs=dict(self._config_for_key),
            controller=copy.deepcopy(self.controller),
            breakers={
                key: copy.deepcopy(breaker)
                for key, breaker in self._breakers.items()
            },
            partial_hits=self.partial_hits,
        )

    def snapshot_state(self):
        """Provider hook: the tuple of host checkpoints (one here)."""
        return (self._snapshot_host(),)

    def crash_control_plane(self) -> int:
        """Lose every indexed control-plane structure; data plane lives.

        Containers keep running (leases and recycle flags travel with
        them — they are the ground truth recovery rebuilds from), and
        in-flight boot processes keep their own pending accounting, so
        ``_pending_boots`` survives.  Returns the pool entries lost.
        """
        self._crashed = True
        lost = self.pool.reset()
        self._config_for_key.clear()
        self._busy.clear()
        self._peak.clear()
        self._relaxed_index.clear()
        self._breakers.clear()
        self._cold_estimates.clear()
        self.controller = AdaptivePoolController(
            predictor_factory=self.config.make_predictor,
            max_target=self.config.limits.max_containers,
        )
        # Health records and the recycle queue are in-memory control
        # state too; the ``condemned`` flag stays on the containers, so
        # the recovery sweep retires them instead of re-adopting.
        self._recycle_queue.clear()
        if self.container_health is not None:
            self.container_health = ContainerHealthPlane(
                self.config.container_health,
                obs=self.obs,
                host=self.engine.name,
            )
        return lost

    def _recover_host(
        self, checkpoint: Optional[HostCheckpoint]
    ) -> List[RepairEvent]:
        """Anti-entropy: rebuild the pool from engine ground truth.

        The checkpoint restores state with no ground truth (predictor,
        breakers, configs) and classifies divergences; the pool itself
        is rebuilt from ``engine.live_containers()``: leased containers
        are re-adopted busy, containers mid-recycle re-registered
        unavailable (their in-flight cleanup will release them), idle
        reusable ones rejoin as available while capacity lasts, and
        checkpoint entries with no live container are purged.
        """
        repairs: List[RepairEvent] = []
        now = self.sim.now
        host = self.engine.name
        snapshots = {}
        if checkpoint is not None:
            snapshots = {s.container_id: s for s in checkpoint.entries}
            for key, config in checkpoint.configs.items():
                self._config_for_key.setdefault(key, config)
            self.controller = copy.deepcopy(checkpoint.controller)
            self._breakers = {
                key: copy.deepcopy(breaker)
                for key, breaker in checkpoint.breakers.items()
            }
            self.partial_hits = max(self.partial_hits, checkpoint.partial_hits)
        seen = set()
        for container in self.engine.live_containers():
            cid = container.container_id
            seen.add(cid)
            if self.pool.contains(container):
                # Registered between crash and recover by an in-flight
                # acquire/boot landing — that process owns its
                # accounting; re-adopting would double-register.
                continue
            key = self.key_of(container.config)
            self._config_for_key.setdefault(key, container.config)
            provenance = (
                "checkpointed" if cid in snapshots else "post-checkpoint"
            )
            if container.condemned and not container.leased:
                # The health plane's verdict travels on the container,
                # so even a rebuilt-from-scratch control plane honors
                # it: condemned containers retire, never re-adopt.
                self.sim.process(
                    self.cleanup.retire(container),
                    name=f"retire-condemned:{cid}",
                )
                repairs.append(
                    RepairEvent(
                        RepairKind.RETIRED_ORPHAN,
                        host,
                        cid,
                        str(key),
                        "condemned by the container health plane",
                    )
                )
                continue
            if container.leased:
                self.pool.register(container, key, now=now, available=False)
                self._bump_busy(key, +1)
                repairs.append(
                    RepairEvent(
                        RepairKind.ADOPTED_BUSY, host, cid, str(key), provenance
                    )
                )
            elif container.recycling:
                # Mid-cleanup: its clean_and_recycle process will mark
                # it available once the scrub finishes.
                self.pool.register(container, key, now=now, available=False)
                repairs.append(
                    RepairEvent(
                        RepairKind.ADOPTED_RECYCLING,
                        host,
                        cid,
                        str(key),
                        provenance,
                    )
                )
            elif container.is_reusable:
                if (
                    self.pool.total_live + self._pending_total()
                    < self.config.limits.max_containers
                ):
                    self.pool.register(container, key, now=now, available=True)
                    repairs.append(
                        RepairEvent(
                            RepairKind.ADOPTED_IDLE,
                            host,
                            cid,
                            str(key),
                            provenance,
                        )
                    )
                else:
                    self.sim.process(
                        self.cleanup.retire(container),
                        name=f"retire-orphan:{cid}",
                    )
                    repairs.append(
                        RepairEvent(
                            RepairKind.RETIRED_ORPHAN,
                            host,
                            cid,
                            str(key),
                            "over capacity after recovery",
                        )
                    )
            else:
                repairs.append(
                    RepairEvent(
                        RepairKind.ANOMALY,
                        host,
                        cid,
                        str(key),
                        f"live {container.state.value} container is unleased",
                    )
                )
        for cid in sorted(snapshots):
            if cid not in seen:
                snapshot = snapshots[cid]
                repairs.append(
                    RepairEvent(
                        RepairKind.PURGED_PHANTOM,
                        host,
                        cid,
                        str(snapshot.key),
                        "checkpoint entry has no live container",
                    )
                )
        for key in tuple(self._config_for_key):
            self._index_relaxed(key)
        self._crashed = False
        return repairs

    def recover_from(self, checkpoint=None) -> List[RepairEvent]:
        """Provider hook: recover this single host from ``checkpoint``."""
        host_checkpoint = None
        if checkpoint is not None:
            host_checkpoint = next(
                (
                    hc
                    for hc in checkpoint.hosts
                    if hc.host == self.engine.name
                ),
                None,
            )
        return self._recover_host(host_checkpoint)

    def check_consistency(self) -> None:
        """Invariant audit across the pool and the demand accounting."""
        self.pool.check_consistency()
        for key, busy in self._busy.items():
            assert busy >= 0, f"negative busy count for {key}: {busy}"
        for key, pending in self._pending_boots.items():
            assert pending > 0, f"stale pending-boot entry for {key}"
        for key, prewarms in self._pending_prewarms.items():
            assert (
                0 < prewarms <= self._pending_boots.get(key, 0)
            ), f"prewarm count for {key} exceeds its pending boots"
        for item in self._recycle_queue:
            assert self.pool.is_quarantined(item[0]), (
                f"queued-for-recycle container {item[0].container_id} "
                "is not quarantined"
            )

    def scan_divergences(self) -> List[str]:
        """Report-only sweep comparing the pool against ground truth.

        Dead containers still pooled are *not* flagged — the pool
        discards those lazily by design.  What must never happen is a
        live, request-owned container the control plane forgot.
        """
        problems: List[str] = []
        for container in self.engine.live_containers():
            if container.leased and not self.pool.contains(container):
                problems.append(
                    f"{self.engine.name}: leased container "
                    f"{container.container_id} is untracked"
                )
        return problems

    def shutdown(self) -> Generator:
        """Process: stop control, drain the pool, absorb in-flight boots.

        Safe mid-burst: the control loop's pending tick exits without
        running, prewarm boots still in flight are retired on landing
        instead of joining the pool, busy containers are retired when
        their requests release them, and — with admission control
        attached — new requests are shed (reason ``shutdown``) and
        queued waiters are drained deterministically instead of being
        left parked on the gateway.
        """
        if self.admission is not None:
            self.admission.begin_shutdown()
        self._draining = True
        self._control_running = False
        # A stale loop waiting on its tick exits on the generation check.
        self._control_generation += 1
        for key in tuple(self.pool.keys()):
            for entry in self.pool.available_entries(key):
                yield from self.cleanup.retire(entry.container)
        # Flush the recycle queue ignoring the token bucket: rate
        # limiting protects a serving host from destroy storms, but a
        # draining host must leave nothing behind.
        while self._recycle_queue:
            container, key, reason = self._recycle_queue.pop(0)
            yield from self._recycle_one(container, key, reason)

    # -- demand accounting ------------------------------------------------------
    def _bump_busy(self, key: RuntimeKey, delta: int) -> None:
        busy = self._busy.get(key, 0) + delta
        self._busy[key] = max(0, busy)
        if busy > self._peak.get(key, 0):
            self._peak[key] = busy

    def demand_peak(self, key: RuntimeKey) -> int:
        """Peak concurrent demand for ``key`` in the current interval."""
        return self._peak.get(key, 0)

    # -- capacity guards ---------------------------------------------------------
    def _note_pending(self, key: RuntimeKey, delta: int) -> None:
        """Track an in-flight boot for ``key`` (cold or prewarm)."""
        pending = self._pending_boots.get(key, 0) + delta
        if pending > 0:
            self._pending_boots[key] = pending
        else:
            self._pending_boots.pop(key, None)

    def _pending_total(self) -> int:
        """In-flight boots across all keys (count against the cap)."""
        return sum(self._pending_boots.values())

    def _note_prewarm(self, key: RuntimeKey, delta: int) -> None:
        """Track the prewarm subset of the pending-boot count."""
        pending = self._pending_prewarms.get(key, 0) + delta
        if pending > 0:
            self._pending_prewarms[key] = pending
        else:
            self._pending_prewarms.pop(key, None)

    def absorb_pending_boots(self) -> int:
        """Release the cap reservations of in-flight prewarm boots.

        Called when this host is declared lost (outage failover or a
        detector-driven drain): its prewarm boots will never land
        usefully, yet their ``_pending_boots`` entries would keep
        counting against ``max_containers`` — after enough outages a
        host could refuse boots forever.  The boot processes themselves
        are not interrupted; bumping the epoch makes each landing
        detect that its reservation is gone and retire any container it
        produced.  Returns the number of reservations absorbed.
        """
        absorbed = 0
        for key, count in self._pending_prewarms.items():
            absorbed += count
            self._note_pending(key, -count)
        self._pending_prewarms.clear()
        self._prewarm_epoch += 1
        return absorbed

    def _make_room(self) -> Generator:
        """Evict idle containers until below caps (before a boot).

        The caller must already have counted its own boot in
        ``_pending_boots``; live plus pending must fit the cap, so
        concurrent cold boots and prewarm boots cannot overshoot it.
        """
        while (
            self.pool.total_live + self._pending_total()
            > self.config.limits.max_containers
            or self.engine.resources.memory_pressure(
                self.config.limits.memory_threshold
            )
        ):
            victim = self.pool.eviction_candidate()
            if victim is None:
                break
            self.pool.stats.evictions_capacity += 1
            if self.obs is not None:
                self._emit_evict(victim, "capacity")
            yield from self.cleanup.retire(victim.container)

    def _relieve_pressure(self) -> Generator:
        """Post-exec memory-pressure eviction (oldest first)."""
        while self.engine.resources.memory_pressure(
            self.config.limits.memory_threshold
        ):
            victim = self.pool.eviction_candidate()
            if victim is None:
                break
            self.pool.stats.evictions_pressure += 1
            if self.obs is not None:
                self._emit_evict(victim, "pressure")
            yield from self.cleanup.retire(victim.container)

    # -- adaptive control loop ------------------------------------------------
    def start_control_loop(self) -> None:
        """Begin the periodic predict-and-resize loop; idempotent.

        A stop/start cycle bumps the generation counter, so a stale loop
        still pending its next tick exits instead of running alongside
        the new one.
        """
        if self._control_running or self.config.control_interval_ms <= 0:
            return
        self._control_running = True
        self._control_generation += 1
        self.sim.process(
            self._control_loop(self._control_generation), name="hotc-control"
        )

    def stop_control_loop(self) -> None:
        """Stop after the in-flight tick."""
        self._control_running = False

    def _control_loop(self, generation: int) -> Generator:
        while self._control_running and generation == self._control_generation:
            yield self.sim.timeout(self.config.control_interval_ms)
            if (
                not self._control_running
                or generation != self._control_generation
            ):
                break
            self.control_tick()

    def control_tick(self) -> None:
        """One prediction + resize step (public for tests/experiments)."""
        if self._crashed:
            # Control-plane crash window: no prediction, no resize.
            return
        obs = self.obs
        admission = self.admission
        if admission is not None:
            self._update_brownout()
        for key in tuple(self._config_for_key):
            demand = self._peak.get(key, 0)
            self._peak[key] = self._busy.get(key, 0)
            prev_forecast = None
            if obs is not None:
                forecasts = self.controller.forecast_history(key)
                # The forecast made on the previous tick predicted *this*
                # interval's demand: the pair is the realized accuracy.
                prev_forecast = forecasts[-1] if forecasts else None
            forecast = self.controller.observe(key, demand)
            target = None
            if self.config.prewarm:
                target = max(
                    self.controller.target_upper(
                        key,
                        quantile=self.config.target_quantile,
                        horizon=self.config.target_horizon,
                    ),
                    self.controller.target(key),
                )
                if admission is not None and self._brownout.active:
                    # Degraded mode: provision for a fraction of the
                    # forecast so the pool sheds weight before the
                    # pressure path has to evict warm containers.
                    target = int(
                        target * admission.config.brownout_target_factor
                    )
                self._resize_key(key, target)
            if obs is not None:
                host = self.engine.name
                data = {"demand": demand, "forecast": forecast}
                if prev_forecast is not None:
                    data["prev_forecast"] = prev_forecast
                if target is not None:
                    data["target"] = target
                obs.emit(
                    EventKind.CONTROL_TICK,
                    t=self.sim.now,
                    host=host,
                    key=str(key),
                    **data,
                )
                obs.gauge(
                    "pool_available",
                    help="Idle pooled containers",
                    host=host,
                    key=str(key),
                ).set(self.pool.num_available(key))
                obs.gauge(
                    "pool_total",
                    help="Pooled containers, busy and idle",
                    host=host,
                    key=str(key),
                ).set(self.pool.num_total(key))
                if forecast is not None:
                    obs.gauge(
                        "demand_forecast",
                        help="Latest combined ES+Markov demand forecast",
                        host=host,
                        key=str(key),
                    ).set(forecast)
        if admission is not None:
            # Drive the AIMD interval from the same control clock; the
            # controller collapses co-scheduled multi-host ticks.
            admission.tick(self.sim.now)
        if self.recovery is not None:
            # Background auditor + checkpoint cadence; the manager
            # collapses co-scheduled multi-host ticks.
            self.recovery.on_control_tick(self.sim.now)
        if self.container_health is not None:
            self._health_sweep()
            if self._recycle_queue:
                self.sim.process(
                    self._drain_recycle_queue(), name="hotc-recycle"
                )

    def _update_brownout(self) -> None:
        """Advance the brownout state machine with this tick's pressure.

        Entering pauses prewarm, shrinks pool targets and tells the
        admission controller to shed standard-QoS traffic; the exit
        needs the memory fraction to clear the hysteresis margin so the
        mode cannot flap around the threshold.
        """
        resources = self.engine.resources
        cap_tripped = (
            self.pool.total_live + self._pending_total()
            >= self.config.limits.max_containers
            or resources.used_swap_mb > 0.0
        )
        transition = self._brownout.update(resources.mem_fraction, cap_tripped)
        if not transition:
            return
        active = transition == "enter"
        self.admission.set_brownout(self.engine.name, active)
        if self.obs is not None:
            self.obs.emit(
                EventKind.BROWNOUT_ENTER if active else EventKind.BROWNOUT_EXIT,
                t=self.sim.now,
                host=self.engine.name,
                mem_fraction=round(resources.mem_fraction, 4),
                cap_tripped=cap_tripped,
            )
            self.obs.counter(
                "brownout_transitions_total",
                help="Brownout state changes by direction",
                host=self.engine.name,
                to="active" if active else "clear",
            ).inc()

    def _resize_key(self, key: RuntimeKey, target: int) -> None:
        """Move the pool toward ``target`` containers of type ``key``."""
        total = (
            self.pool.num_total(key) + self._pending_boots.get(key, 0)
        )
        if total < target:
            for _ in range(target - total):
                self._spawn_prewarm(key)
        elif total > target:
            # Scale down gradually (at most half the pool per tick): a
            # single post-burst forecast dip must not destroy capacity
            # that the next tick would rebuild.
            surplus = min(total - target, max(1, total // 2))
            for entry in self.pool.available_entries(key)[:surplus]:
                if self.obs is not None:
                    self._emit_evict(entry, "scale_down")
                # Claim the victim synchronously: once the retire process
                # is merely *scheduled*, an acquire landing before it
                # runs must not be handed a container about to be
                # stopped, and the next tick must not pick it again.
                self.pool.remove(entry.container)
                self.sim.process(
                    self.cleanup.retire(entry.container),
                    name=f"retire:{entry.container.container_id}",
                )

    def _spawn_prewarm(self, key: RuntimeKey) -> None:
        if self._draining:
            return
        if self._brownout is not None and self._brownout.active:
            # Degraded mode: a host already under memory pressure must
            # not spend capacity growing the pool it is trying to shrink.
            return
        breaker = self._breaker_for(key)
        if breaker.is_open(self.sim.now):
            # Boots of this type keep failing: prewarming would only
            # burn capacity on doomed boots.
            return
        config = self._config_for_key[key]
        self._note_pending(key, +1)
        self._note_prewarm(key, +1)
        epoch = self._prewarm_epoch
        if self.obs is not None:
            self.obs.emit(
                EventKind.PREWARM,
                t=self.sim.now,
                host=self.engine.name,
                key=str(key),
            )
            self.obs.counter(
                "prewarms_total",
                help="Predictive pre-boots requested by the control loop",
                host=self.engine.name,
            ).inc()

        def _boot() -> Generator:
            try:
                try:
                    yield from self._make_room()
                    # Prewarm boots also warm the language runtime: the
                    # pool holds *hot* runtimes, not created containers.
                    container = yield from self.engine.boot_container(
                        config, warm_runtime=True
                    )
                except _RETRYABLE:
                    # Prewarm failures feed the breaker but are not
                    # retried — the next control tick decides again.
                    if breaker.record_failure(self.sim.now):
                        self.engine.stats.breaker_opens += 1
                    return
                except Exception:
                    return  # host down mid-prewarm: nothing to pool
            finally:
                if epoch == self._prewarm_epoch:
                    self._note_pending(key, -1)
                    self._note_prewarm(key, -1)
            if epoch != self._prewarm_epoch:
                # Absorbed mid-flight (the host was declared lost): the
                # reservation is already released, so a container that
                # landed anyway must not [re]join the pool.
                if container.is_reusable and not self.pool.contains(container):
                    yield from self.cleanup.retire(container)
                return
            if self._draining or not container.is_reusable:
                yield from self.cleanup.retire(container)
                return
            if self.pool.contains(container):
                # A recovery sweep adopted this landing boot already.
                breaker.record_success()
                return
            self.pool.register(container, key, now=self.sim.now, available=True)
            breaker.record_success()

        self.sim.process(_boot(), name=f"prewarm:{key}")

    # -- ScalablePool protocol (drives the autoscaler ablation) ---------------
    def warm_count(self, key: RuntimeKey) -> int:
        """Idle pooled containers of ``key``."""
        return self.pool.num_available(key)

    def scale_to(self, key: RuntimeKey, target: int) -> Generator:
        """Process: resize ``key`` toward ``target`` synchronously."""
        self._resize_key(key, target)
        return
        yield  # pragma: no cover - generator marker
