"""Per-runtime-key circuit breaker for the boot path.

When boots of one runtime type keep failing (bad image push, poisoned
base layer), retrying every request just burns backoff time and engine
capacity.  The breaker fails such requests fast instead:

* **closed** — normal operation; consecutive boot failures are counted.
* **open** — after ``threshold`` consecutive failures; every boot
  attempt is refused until ``cooldown_ms`` has elapsed.
* **half-open** — after the cooldown, exactly one probe boot is let
  through; success closes the breaker, failure re-opens it (and
  restarts the cooldown).

``threshold <= 0`` disables the breaker entirely (always allows).
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open probe.

    ``on_transition(old, new)`` (settable after construction) fires on
    every state change — the observability layer wires breaker events
    through it without the breaker knowing about registries.
    """

    def __init__(self, threshold: int = 3, cooldown_ms: float = 5_000.0) -> None:
        if cooldown_ms <= 0:
            raise ValueError("cooldown_ms must be > 0")
        self.threshold = int(threshold)
        self.cooldown_ms = float(cooldown_ms)
        self.state = CLOSED
        self.on_transition: Optional[Callable[[str, str], None]] = None
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    def _set_state(self, new: str) -> None:
        old = self.state
        if old == new:
            return
        self.state = new
        if self.on_transition is not None:
            self.on_transition(old, new)

    def is_open(self, now: float) -> bool:
        """Non-mutating check: would an attempt at ``now`` be refused?

        Used by the prewarm path, which must not consume the half-open
        probe slot that a real request could use.
        """
        if self.threshold <= 0 or self.state == CLOSED:
            return False
        if self.state == OPEN and now - self._opened_at >= self.cooldown_ms:
            return False  # would transition to half-open
        return self.state == OPEN or self._probing

    def allow(self, now: float) -> bool:
        """Whether a boot attempt may proceed at time ``now``.

        Transitions open → half-open once the cooldown has elapsed and
        claims the single half-open probe slot for the caller.
        """
        if self.threshold <= 0:
            return True
        if self.state == OPEN:
            if now - self._opened_at < self.cooldown_ms:
                return False
            self._set_state(HALF_OPEN)
            self._probing = False
        if self.state == HALF_OPEN:
            if self._probing:
                return False
            self._probing = True
            return True
        return True

    def record_success(self) -> None:
        """A boot succeeded: close the breaker and reset counters."""
        self._set_state(CLOSED)
        self._consecutive_failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self, now: float) -> bool:
        """A boot failed; returns ``True`` if this transition *opened*
        the breaker (callers use it to count ``breaker_opens``)."""
        if self.threshold <= 0:
            return False
        if self.state == HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self._set_state(OPEN)
            self._opened_at = now
            self._probing = False
            return True
        self._consecutive_failures += 1
        if self.state == CLOSED and self._consecutive_failures >= self.threshold:
            self._set_state(OPEN)
            self._opened_at = now
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CircuitBreaker {self.state} "
            f"failures={self._consecutive_failures}/{self.threshold}>"
        )
