"""Executable specification of the container runtime pool.

:class:`NaiveContainerRuntimePool` is a deliberately simple O(n)
implementation of the exact same contract as
:class:`~repro.core.pool.ContainerRuntimePool`: flat per-key lists,
linear scans for acquire, and a full sort for every eviction decision —
the pre-optimisation seed code, kept verbatim.  It exists for two jobs:

* the differential test (``tests/core/test_pool_reference.py``) replays
  long randomized operation sequences against both pools and asserts
  observable equivalence for every eviction strategy;
* the hot-path microbenchmark (``benchmarks/bench_pool_hotpath.py``)
  measures it as the "before" baseline in ``BENCH_pool.json``.

It is not meant for production use — the indexed pool is strictly
faster with identical semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.containers.container import Container
from repro.core.keys import RuntimeKey
from repro.core.pool import (
    AVAILABLE,
    NOT_AVAILABLE,
    NOT_EXISTING,
    PoolEntry,
    PoolLimits,
    PoolStats,
    _EVICTION_STRATEGIES,
    _REUSE_COUNTERS,
)

__all__ = ["NaiveContainerRuntimePool"]


class NaiveContainerRuntimePool:
    """Reference pool: list scans everywhere, no indexes.

    Mirrors the public API of
    :class:`~repro.core.pool.ContainerRuntimePool` (including the
    ``on_key_empty`` hook and ``discard_dead``) so the two are drop-in
    interchangeable in tests and benchmarks.
    """

    def __init__(
        self,
        limits: PoolLimits = PoolLimits(),
        eviction: str = "oldest",
    ) -> None:
        if eviction not in _EVICTION_STRATEGIES:
            raise ValueError(
                f"eviction must be one of {_EVICTION_STRATEGIES}, got {eviction!r}"
            )
        self.limits = limits
        self.eviction = eviction
        self.stats = PoolStats()
        #: Fires with the key after its last entry leaves the pool.
        self.on_key_empty: Optional[Callable[[RuntimeKey], None]] = None
        self._entries: Dict[RuntimeKey, List[PoolEntry]] = {}
        self._by_container: Dict[str, PoolEntry] = {}
        self._quarantined: Dict[str, PoolEntry] = {}

    # -- the paper's views --------------------------------------------------
    def state_of(self, key: RuntimeKey) -> int:
        """Fig 7 tri-state for ``key``: −1 / 0 / 1."""
        entries = self._entries.get(key)
        if not entries:
            return NOT_EXISTING
        if any(entry.available for entry in entries):
            return AVAILABLE
        return NOT_AVAILABLE

    def num_available(self, key: RuntimeKey) -> int:
        """``num_avail[key]`` of Algorithms 1 and 2."""
        return sum(1 for e in self._entries.get(key, ()) if e.available)

    def num_total(self, key: RuntimeKey) -> int:
        """All pooled containers of this type (busy + available)."""
        return len(self._entries.get(key, ()))

    # -- membership ---------------------------------------------------------
    def acquire(self, key: RuntimeKey, now: float) -> Optional[Container]:
        """Take the first available container of type ``key`` (linear scan)."""
        for entry in self._entries.get(key, ()):
            if entry.available and not entry.container.tainted:
                entry.available = False
                entry.last_used_at = now
                self.stats.hits += 1
                return entry.container
        self.stats.misses += 1
        return None

    def acquire_donor(
        self, key: RuntimeKey, now: float, reuse: str
    ) -> Optional[Container]:
        """Claim an idle container of ``key`` for a different target key."""
        if reuse not in ("relaxed", "repurpose"):
            raise ValueError(f"reuse must be 'relaxed' or 'repurpose', got {reuse!r}")
        for entry in self._entries.get(key, ()):
            if entry.available and not entry.container.tainted:
                entry.available = False
                entry.last_used_at = now
                if reuse == "relaxed":
                    self.stats.relaxed_hits += 1
                else:
                    self.stats.repurposed += 1
                return entry.container
        return None

    def register(
        self,
        container: Container,
        key: RuntimeKey,
        now: float,
        available: bool = False,
    ) -> PoolEntry:
        """Add a (typically just-booted) container under ``key``."""
        if container.container_id in self._by_container:
            raise ValueError(
                f"container {container.container_id} already pooled"
            )
        entry = PoolEntry(
            container=container,
            key=key,
            available=available,
            added_at=now,
            last_used_at=now,
        )
        self._entries.setdefault(key, []).append(entry)
        self._by_container[container.container_id] = entry
        self.stats.registered += 1
        return entry

    def release(self, container: Container, now: float) -> None:
        """Mark a busy container available again (Algorithm 2's ++)."""
        entry = self._entry_of(container)
        if entry.available:
            raise ValueError(
                f"container {container.container_id} is already available"
            )
        entry.available = True
        entry.last_used_at = now

    def remove(self, container: Container) -> PoolEntry:
        """Forget a container (being stopped/evicted)."""
        entry = self._entry_of(container)
        del self._by_container[container.container_id]
        siblings = self._entries[entry.key]
        siblings.remove(entry)
        key_emptied = not siblings
        if key_emptied:
            del self._entries[entry.key]
        self.stats.retired += 1
        if key_emptied and self.on_key_empty is not None:
            self.on_key_empty(entry.key)
        return entry

    def quarantine(self, container: Container) -> PoolEntry:
        """Pull a pooled container out of availability into quarantine."""
        entry = self._entry_of(container)
        self._quarantined[container.container_id] = entry
        self.stats.quarantined += 1
        del self._by_container[container.container_id]
        siblings = self._entries[entry.key]
        siblings.remove(entry)
        key_emptied = not siblings
        if key_emptied:
            del self._entries[entry.key]
        if key_emptied and self.on_key_empty is not None:
            self.on_key_empty(entry.key)
        return entry

    def mark_recycled(self, container: Container) -> PoolEntry:
        """Close out a quarantined container whose recycle completed."""
        try:
            entry = self._quarantined.pop(container.container_id)
        except KeyError:
            raise KeyError(
                f"container {container.container_id} is not quarantined"
            ) from None
        self.stats.recycled += 1
        return entry

    def is_quarantined(self, container: Container) -> bool:
        """Whether the container sits in the quarantine set."""
        return container.container_id in self._quarantined

    @property
    def total_quarantined(self) -> int:
        """Current quarantine-set size."""
        return len(self._quarantined)

    def quarantined_containers(self) -> Tuple[Container, ...]:
        """Snapshot of the quarantine set's containers."""
        return tuple(e.container for e in self._quarantined.values())

    def discard_dead(
        self, container: Container, reuse: str = "hit"
    ) -> Optional[PoolEntry]:
        """Forget a just-acquired dead container; un-count its reuse."""
        counter = _REUSE_COUNTERS[reuse]
        entry = None
        if container.container_id in self._by_container:
            entry = self.remove(container)
        setattr(self.stats, counter, getattr(self.stats, counter) - 1)
        self.stats.dead_discards += 1
        return entry

    def contains(self, container: Container) -> bool:
        """Whether the container is pooled."""
        return container.container_id in self._by_container

    def _entry_of(self, container: Container) -> PoolEntry:
        try:
            return self._by_container[container.container_id]
        except KeyError:
            raise KeyError(
                f"container {container.container_id} is not in the pool"
            ) from None

    # -- aggregates -----------------------------------------------------------
    @property
    def total_live(self) -> int:
        """All pooled containers."""
        return len(self._by_container)

    @property
    def total_available(self) -> int:
        """All idle pooled containers."""
        return sum(1 for e in self._by_container.values() if e.available)

    def keys(self) -> Tuple[RuntimeKey, ...]:
        """Keys with at least one pooled container."""
        return tuple(self._entries)

    def snapshot(self) -> Dict[RuntimeKey, Tuple[int, int]]:
        """Per-key ``(available, total)`` counts — predictor input."""
        return {
            key: (
                sum(1 for e in entries if e.available),
                len(entries),
            )
            for key, entries in self._entries.items()
        }

    # -- eviction ----------------------------------------------------------
    def over_capacity(self) -> bool:
        """Whether the container-count cap is exceeded."""
        return self.total_live > self.limits.max_containers

    def eviction_candidate(self) -> Optional[PoolEntry]:
        """Pick the next victim among *available* entries (full scan)."""
        candidates = [e for e in self._by_container.values() if e.available]
        if not candidates:
            return None
        if self.eviction == "oldest":
            sort_key = lambda e: (e.added_at, e.container.container_id)
        elif self.eviction == "lru":
            sort_key = lambda e: (e.last_used_at, e.container.container_id)
        else:  # largest
            sort_key = lambda e: (
                -e.container.config.mem_mb,
                e.container.container_id,
            )
        return min(candidates, key=sort_key)

    def available_entries(self, key: RuntimeKey) -> Tuple[PoolEntry, ...]:
        """Idle entries of one key, oldest first (full re-sort)."""
        return tuple(
            sorted(
                (e for e in self._entries.get(key, ()) if e.available),
                key=lambda e: (e.added_at, e.container.container_id),
            )
        )
