"""Markov chain over region states (paper Eq. 2).

The paper divides the data range into ``n`` region states
``R_i = [R_i1, R_i2]``, estimates the k-step transition probability
``P_ij(k) = T_ij(k) / T_i`` from historical samples, and predicts the
next value as the midpoint of the most probable next state.

Implementation notes
--------------------
* States are equal-width bins spanning the observed data range; bounds
  update as new data arrives.
* History is a bounded sliding window (default 512 observations): a
  long-running gateway must not grow per-key predictor state without
  limit, and old demand regimes should age out of the transition
  estimates.  ``window=None`` keeps everything (batch/ablation use).
* Transition counts are maintained *incrementally*: each update adds
  the new lag-k transitions and subtracts the evicted ones for every
  lag the caller has asked about, so a control tick is O(lags) instead
  of O(window).  Only when the observed range changes (new min/max
  enters, or the old extreme leaves the window) are the bin edges —
  and with them the cached states and counts — rebuilt, which costs
  one O(window) vectorised pass.
* Rows of the transition matrix with no observed departures fall back
  to "stay in place" (identity row), the conservative choice for a
  sparse history.

The streaming bookkeeping is exactly equivalent to refitting from
scratch on the retained window: ``MarkovChain(window=w)`` fed a series
point-by-point matches ``MarkovChain(window=w).fit(series[-w:])`` after
every point (the equivalence test in ``tests/core/test_markov.py``
asserts this for all lags).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

import numpy as np

__all__ = ["MarkovChain"]

#: Default sliding-window length (observations retained per chain).
DEFAULT_WINDOW = 512


class MarkovChain:
    """Region-state Markov predictor over a scalar series."""

    def __init__(
        self, n_states: int = 4, window: Optional[int] = DEFAULT_WINDOW
    ) -> None:
        if n_states < 2:
            raise ValueError(f"n_states must be >= 2, got {n_states}")
        if window is not None and window < 2:
            raise ValueError(f"window must be >= 2 (or None), got {window}")
        self.n_states = n_states
        self.window = window
        self._values: Deque[float] = deque()
        #: Bin index of each stored value under the current edges.
        self._states: Deque[int] = deque()
        self._edges: Optional[np.ndarray] = None
        self._lo = 0.0
        self._hi = 0.0
        #: Per-lag raw transition-count matrices, built lazily on the
        #: first ``transition_matrix(k)`` call and then kept in sync.
        self._counts: Dict[int, np.ndarray] = {}
        #: State-occupancy counts of the stored series.
        self._occupancy = np.zeros(n_states, dtype=float)

    # -- data -------------------------------------------------------------
    def update(self, value: float) -> None:
        """Append one observation, evicting past the window bound."""
        if not np.isfinite(value):
            raise ValueError(f"value must be finite, got {value}")
        value = float(value)
        range_dirty = False
        if self.window is not None and len(self._values) == self.window:
            evicted = self._values.popleft()
            if self._edges is not None:
                # Remove the transitions that depart from the evicted
                # head before its state leaves the deque.
                for k, counts in self._counts.items():
                    if len(self._states) > k:
                        counts[self._states[0], self._states[k]] -= 1.0
                self._occupancy[self._states[0]] -= 1.0
                self._states.popleft()
            # Exact equality is safe: _lo/_hi were taken from stored
            # values, so an extreme leaving the window compares equal.
            if evicted == self._lo or evicted == self._hi:
                range_dirty = True
        self._values.append(value)
        if len(self._values) < 2:
            self._edges = None
            return
        if (
            self._edges is None
            or range_dirty
            or value < self._lo
            or value > self._hi
        ):
            self._rebuild()
            return
        state = self._state_index(value)
        for k, counts in self._counts.items():
            if len(self._states) >= k:
                counts[self._states[-k], state] += 1.0
        self._states.append(state)
        self._occupancy[state] += 1.0

    def fit(self, values) -> "MarkovChain":
        """Replace the history with ``values`` (truncated to the window)."""
        array = np.asarray(values, dtype=float)
        if not np.all(np.isfinite(array)):
            raise ValueError("values must be finite")
        if self.window is not None:
            array = array[-self.window :]
        self._values = deque(float(v) for v in array)
        self._rebuild()
        return self

    @property
    def n_observations(self) -> int:
        """Number of observations currently retained."""
        return len(self._values)

    def _rebuild(self) -> None:
        """Recompute edges, cached states and counts from the window."""
        self._counts.clear()
        self._states.clear()
        self._occupancy = np.zeros(self.n_states, dtype=float)
        if len(self._values) < 2:
            self._edges = None
            return
        values = np.fromiter(self._values, dtype=float, count=len(self._values))
        self._lo = float(values.min())
        self._hi = float(values.max())
        high = self._hi
        if high == self._lo:
            # Degenerate constant series: one tiny bin around the value.
            high = self._lo + 1.0
        self._edges = np.linspace(self._lo, high, self.n_states + 1)
        states = np.clip(
            np.searchsorted(self._edges, values, side="right") - 1,
            0,
            self.n_states - 1,
        )
        self._states = deque(int(s) for s in states)
        self._occupancy = np.bincount(
            states, minlength=self.n_states
        ).astype(float)

    def _state_index(self, value: float) -> int:
        index = int(np.searchsorted(self._edges, value, side="right")) - 1
        if index < 0:
            return 0
        if index >= self.n_states:
            return self.n_states - 1
        return index

    # -- states -------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Whether bounds exist (>= 2 retained observations)."""
        return self._edges is not None

    def state_of(self, value: float) -> int:
        """Region-state index of ``value`` (clipped to the known range)."""
        if self._edges is None:
            raise RuntimeError("MarkovChain needs at least 2 observations")
        return self._state_index(value)

    def state_bounds(self, state: int) -> Tuple[float, float]:
        """``[R_i1, R_i2]`` interval of a state."""
        if self._edges is None:
            raise RuntimeError("MarkovChain needs at least 2 observations")
        if not 0 <= state < self.n_states:
            raise IndexError(f"state {state} out of range")
        return float(self._edges[state]), float(self._edges[state + 1])

    def state_midpoint(self, state: int) -> float:
        """``(R_i1 + R_i2) / 2`` — the paper's predicted value."""
        low, high = self.state_bounds(state)
        return 0.5 * (low + high)

    # -- transitions ---------------------------------------------------------
    def state_marginal(self) -> np.ndarray:
        """Empirical state-occupancy distribution of the stored series."""
        if self._edges is None:
            raise RuntimeError("MarkovChain needs at least 2 observations")
        return self._occupancy / self._occupancy.sum()

    def _counts_for_lag(self, k: int) -> np.ndarray:
        counts = self._counts.get(k)
        if counts is None:
            counts = np.zeros((self.n_states, self.n_states), dtype=float)
            if len(self._states) > k:
                states = np.fromiter(
                    self._states, dtype=np.int64, count=len(self._states)
                )
                np.add.at(counts, (states[:-k], states[k:]), 1.0)
            self._counts[k] = counts
        return counts

    def transition_matrix(self, k: int = 1, empty_rows: str = "identity") -> np.ndarray:
        """The k-step transition probability matrix (Eq. 2).

        ``P[i, j]`` estimates the probability of moving from state ``i``
        to state ``j`` in ``k`` steps, counted directly from the stored
        series at lag ``k``.  Counts come from the incrementally
        maintained per-lag cache — the first call for a lag pays one
        vectorised pass, later calls are O(n_states²) copies.  Rows
        without observed departures have no data; ``empty_rows`` picks
        the fallback:

        * ``"identity"`` — stay in place (conservative point forecasts);
        * ``"marginal"`` — the empirical state-occupancy distribution
          (used for risk-aware pool sizing, where "no idea where this
          state leads" should mean "anything the series has done", not
          "stuck here forever").
        """
        if k < 1:
            raise ValueError(f"step k must be >= 1, got {k}")
        if empty_rows not in ("identity", "marginal"):
            raise ValueError(f"unknown empty_rows policy {empty_rows!r}")
        if self._edges is None:
            raise RuntimeError("MarkovChain needs at least 2 observations")
        matrix = self._counts_for_lag(k).copy()
        row_sums = matrix.sum(axis=1)
        empty = row_sums == 0
        if empty.any():
            if empty_rows == "identity":
                matrix[empty, :] = np.eye(self.n_states)[empty]
            else:
                matrix[empty, :] = self.state_marginal()
        row_sums = matrix.sum(axis=1, keepdims=True)
        return matrix / row_sums

    def predict_next_state(self, current_value: float, k: int = 1) -> int:
        """Most probable state ``k`` steps after ``current_value``.

        Ties resolve to the lowest state index (deterministic).
        """
        matrix = self.transition_matrix(k)
        row = matrix[self.state_of(current_value)]
        return int(np.argmax(row))

    def predict(self, current_value: float, k: int = 1) -> float:
        """Predicted value: midpoint of the most probable next state."""
        return self.state_midpoint(self.predict_next_state(current_value, k))
