"""Markov chain over region states (paper Eq. 2).

The paper divides the data range into ``n`` region states
``R_i = [R_i1, R_i2]``, estimates the k-step transition probability
``P_ij(k) = T_ij(k) / T_i`` from historical samples, and predicts the
next value as the midpoint of the most probable next state.

Implementation notes
--------------------
* States are equal-width bins spanning the observed data range; bounds
  update as new data arrives (``refit``).
* Rows of the transition matrix with no observed departures fall back
  to "stay in place" (identity row), the conservative choice for a
  sparse history.
* Transition counting is vectorised with NumPy (guide: prefer array
  ops over Python loops).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["MarkovChain"]


class MarkovChain:
    """Region-state Markov predictor over a scalar series."""

    def __init__(self, n_states: int = 4) -> None:
        if n_states < 2:
            raise ValueError(f"n_states must be >= 2, got {n_states}")
        self.n_states = n_states
        self._values: List[float] = []
        self._edges: Optional[np.ndarray] = None

    # -- data -------------------------------------------------------------
    def update(self, value: float) -> None:
        """Append one observation and refit the state bounds."""
        if not np.isfinite(value):
            raise ValueError(f"value must be finite, got {value}")
        self._values.append(float(value))
        self._refit()

    def fit(self, values) -> "MarkovChain":
        """Replace the history with ``values`` and refit."""
        array = np.asarray(values, dtype=float)
        if not np.all(np.isfinite(array)):
            raise ValueError("values must be finite")
        self._values = [float(v) for v in array]
        self._refit()
        return self

    @property
    def n_observations(self) -> int:
        """Number of stored observations."""
        return len(self._values)

    def _refit(self) -> None:
        if len(self._values) < 2:
            self._edges = None
            return
        low = min(self._values)
        high = max(self._values)
        if high == low:
            # Degenerate constant series: one tiny bin around the value.
            high = low + 1.0
        self._edges = np.linspace(low, high, self.n_states + 1)

    # -- states -------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Whether bounds exist (>= 2 distinct observations)."""
        return self._edges is not None

    def state_of(self, value: float) -> int:
        """Region-state index of ``value`` (clipped to the known range)."""
        if self._edges is None:
            raise RuntimeError("MarkovChain needs at least 2 observations")
        index = int(np.searchsorted(self._edges, value, side="right")) - 1
        return int(np.clip(index, 0, self.n_states - 1))

    def state_bounds(self, state: int) -> Tuple[float, float]:
        """``[R_i1, R_i2]`` interval of a state."""
        if self._edges is None:
            raise RuntimeError("MarkovChain needs at least 2 observations")
        if not 0 <= state < self.n_states:
            raise IndexError(f"state {state} out of range")
        return float(self._edges[state]), float(self._edges[state + 1])

    def state_midpoint(self, state: int) -> float:
        """``(R_i1 + R_i2) / 2`` — the paper's predicted value."""
        low, high = self.state_bounds(state)
        return 0.5 * (low + high)

    # -- transitions ---------------------------------------------------------
    def state_marginal(self) -> np.ndarray:
        """Empirical state-occupancy distribution of the stored series."""
        if self._edges is None:
            raise RuntimeError("MarkovChain needs at least 2 observations")
        values = np.asarray(self._values)
        states = np.clip(
            np.searchsorted(self._edges, values, side="right") - 1,
            0,
            self.n_states - 1,
        )
        counts = np.bincount(states, minlength=self.n_states).astype(float)
        return counts / counts.sum()

    def transition_matrix(self, k: int = 1, empty_rows: str = "identity") -> np.ndarray:
        """The k-step transition probability matrix (Eq. 2).

        ``P[i, j]`` estimates the probability of moving from state ``i``
        to state ``j`` in ``k`` steps, counted directly from the stored
        series at lag ``k``.  Rows without observed departures have no
        data; ``empty_rows`` picks the fallback:

        * ``"identity"`` — stay in place (conservative point forecasts);
        * ``"marginal"`` — the empirical state-occupancy distribution
          (used for risk-aware pool sizing, where "no idea where this
          state leads" should mean "anything the series has done", not
          "stuck here forever").
        """
        if k < 1:
            raise ValueError(f"step k must be >= 1, got {k}")
        if empty_rows not in ("identity", "marginal"):
            raise ValueError(f"unknown empty_rows policy {empty_rows!r}")
        if self._edges is None:
            raise RuntimeError("MarkovChain needs at least 2 observations")
        values = np.asarray(self._values)
        states = np.clip(
            np.searchsorted(self._edges, values, side="right") - 1,
            0,
            self.n_states - 1,
        )
        matrix = np.zeros((self.n_states, self.n_states), dtype=float)
        if len(states) > k:
            sources = states[:-k]
            targets = states[k:]
            np.add.at(matrix, (sources, targets), 1.0)
        row_sums = matrix.sum(axis=1)
        empty = row_sums == 0
        if empty.any():
            if empty_rows == "identity":
                matrix[empty, :] = np.eye(self.n_states)[empty]
            else:
                matrix[empty, :] = self.state_marginal()
        row_sums = matrix.sum(axis=1, keepdims=True)
        return matrix / row_sums

    def predict_next_state(self, current_value: float, k: int = 1) -> int:
        """Most probable state ``k`` steps after ``current_value``.

        Ties resolve to the lowest state index (deterministic).
        """
        matrix = self.transition_matrix(k)
        row = matrix[self.state_of(current_value)]
        return int(np.argmax(row))

    def predict(self, current_value: float, k: int = 1) -> float:
        """Predicted value: midpoint of the most probable next state."""
        return self.state_midpoint(self.predict_next_state(current_value, k))
