"""Exponential smoothing (paper Eq. 1).

    e_{k,t} = alpha * history[k][t] + (1 - alpha) * e_{k,t-1}

The paper chooses ``alpha = 0.8`` (high sensitivity, suited to the
volatile serverless series) and initialises with the *average of the
first five observations* when the series is short (< 20 points), else
the first observation — Section IV-C(2).  ``init="auto"`` implements
that rule; ``"first"`` and ``"mean5"`` force either behaviour for the
Fig 10b sensitivity study.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["ExponentialSmoothing"]

_INIT_POLICIES = ("auto", "first", "mean5")

#: Series length below which the paper says the initial value matters.
_SHORT_SERIES = 20

#: How many leading observations the mean-based init averages.
_INIT_WINDOW = 5


class ExponentialSmoothing:
    """Streaming single exponential smoother.

    >>> es = ExponentialSmoothing(alpha=0.8, init="first")
    >>> es.update(10.0)
    10.0
    >>> es.update(20.0)  # 0.8*20 + 0.2*10
    18.0
    """

    def __init__(self, alpha: float = 0.8, init: str = "auto") -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if init not in _INIT_POLICIES:
            raise ValueError(f"init must be one of {_INIT_POLICIES}, got {init!r}")
        self.alpha = alpha
        self.init = init
        self._level: Optional[float] = None
        self._observations: List[float] = []

    @property
    def n_observations(self) -> int:
        """How many points have been fed in."""
        return len(self._observations)

    @property
    def forecast(self) -> Optional[float]:
        """Current one-step-ahead forecast (None before any data)."""
        return self._level

    def _initial_level(self) -> float:
        """Initial smoothed value per the configured policy."""
        observations = self._observations
        use_mean = self.init == "mean5" or (
            self.init == "auto" and len(observations) < _SHORT_SERIES
        )
        if use_mean:
            window = observations[:_INIT_WINDOW]
            return float(np.mean(window))
        return observations[0]

    def update(self, observation: float) -> float:
        """Feed one observation; returns the new one-step forecast.

        With a mean-based init, the level is re-derived from scratch
        while the first :data:`_INIT_WINDOW` observations accumulate so
        the initial value really is their average (the paper's rule),
        after which the cheap streaming recursion takes over.
        """
        if not np.isfinite(observation):
            raise ValueError(f"observation must be finite, got {observation}")
        self._observations.append(float(observation))
        if self._level is None and len(self._observations) == 1:
            self._level = self._initial_level()
            if self.init == "first" or (
                self.init == "auto" and len(self._observations) >= _SHORT_SERIES
            ):
                # With a first-observation init the recursion starts now.
                return self._level
            return self._level
        if len(self._observations) <= _INIT_WINDOW and self.init in ("mean5", "auto"):
            # Re-derive: init = mean(first window), then replay recursion
            # over the points after the window start.
            level = self._initial_level()
            for value in self._observations[1:]:
                level = self.alpha * value + (1 - self.alpha) * level
            self._level = level
            return self._level
        self._level = self.alpha * observation + (1 - self.alpha) * self._level
        return self._level

    def fit_series(self, values) -> np.ndarray:
        """Feed a whole series; returns the forecast after each point.

        ``result[i]`` is the forecast for point ``i + 1`` given values
        ``[0..i]`` — the series the Fig 10 experiment plots.
        """
        return np.array([self.update(v) for v in np.asarray(values, dtype=float)])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExponentialSmoothing(alpha={self.alpha}, init={self.init!r}, "
            f"n={self.n_observations})"
        )
