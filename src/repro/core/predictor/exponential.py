"""Exponential smoothing (paper Eq. 1).

    e_{k,t} = alpha * history[k][t] + (1 - alpha) * e_{k,t-1}

The paper chooses ``alpha = 0.8`` (high sensitivity, suited to the
volatile serverless series) and initialises with the *average of the
first five observations* when the series is short (< 20 points), else
the first observation — Section IV-C(2).  In a streaming setting the
series is always "short" when the initial value is chosen, so
``init="auto"`` is the mean-of-first-five rule; ``"first"`` and
``"mean5"`` force either behaviour for the Fig 10b sensitivity study.

The mean-based init holds the level at the *running mean* while the
first five observations accumulate — after five points the level is
exactly their average, and only then does the Eq. 1 recursion take
over.  (Replaying early observations through the recursion on top of a
mean that already contains them would double-count them; the smoother
deliberately does not do that.)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["ExponentialSmoothing"]

_INIT_POLICIES = ("auto", "first", "mean5")

#: How many leading observations the mean-based init averages.
_INIT_WINDOW = 5


class ExponentialSmoothing:
    """Streaming single exponential smoother.

    >>> es = ExponentialSmoothing(alpha=0.8, init="first")
    >>> es.update(10.0)
    10.0
    >>> es.update(20.0)  # 0.8*20 + 0.2*10
    18.0
    """

    def __init__(self, alpha: float = 0.8, init: str = "auto") -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if init not in _INIT_POLICIES:
            raise ValueError(f"init must be one of {_INIT_POLICIES}, got {init!r}")
        self.alpha = alpha
        self.init = init
        self._level: Optional[float] = None
        self._count = 0

    @property
    def n_observations(self) -> int:
        """How many points have been fed in."""
        return self._count

    @property
    def forecast(self) -> Optional[float]:
        """Current one-step-ahead forecast (None before any data)."""
        return self._level

    def update(self, observation: float) -> float:
        """Feed one observation; returns the new one-step forecast.

        With a mean-based init the level tracks the running mean of the
        first :data:`_INIT_WINDOW` observations — after five points it
        is exactly their average (the paper's rule) — and the Eq. 1
        recursion takes over from the sixth point on.  State is O(1):
        only the level and a count are kept.
        """
        if not np.isfinite(observation):
            raise ValueError(f"observation must be finite, got {observation}")
        observation = float(observation)
        self._count += 1
        if self.init != "first" and self._count <= _INIT_WINDOW:
            if self._level is None:
                self._level = observation
            else:
                self._level += (observation - self._level) / self._count
            return self._level
        if self._level is None:
            self._level = observation
            return self._level
        self._level = self.alpha * observation + (1 - self.alpha) * self._level
        return self._level

    def fit_series(self, values) -> np.ndarray:
        """Feed a whole series; returns the forecast after each point.

        ``result[i]`` is the forecast for point ``i + 1`` given values
        ``[0..i]`` — the series the Fig 10 experiment plots.
        """
        return np.array([self.update(v) for v in np.asarray(values, dtype=float)])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExponentialSmoothing(alpha={self.alpha}, init={self.init!r}, "
            f"n={self.n_observations})"
        )
