"""Per-key demand tracking and pool-size targets.

The controller is the glue between raw observations ("how many
containers of type *k* were needed this interval") and actionable
targets ("keep *n* warm containers of type *k*").  HotC's middleware
calls :meth:`observe` once per key per control interval and reads
:meth:`target` when resizing the pool.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.predictor.combined import CombinedPredictor

__all__ = ["AdaptivePoolController"]

PredictorFactory = Callable[[], CombinedPredictor]


class AdaptivePoolController:
    """Maintains one predictor and demand history per runtime key.

    Parameters
    ----------
    predictor_factory:
        Zero-arg callable building a fresh predictor for a new key.
        Defaults to the paper's configuration
        (:class:`CombinedPredictor` with alpha=0.8).
    max_target:
        Upper clamp on any per-key target (safety net, mirrors the
        pool-wide 500-container cap).
    """

    def __init__(
        self,
        predictor_factory: Optional[PredictorFactory] = None,
        max_target: int = 500,
    ) -> None:
        if max_target < 0:
            raise ValueError("max_target must be >= 0")
        self._factory = predictor_factory or CombinedPredictor
        self.max_target = max_target
        self._predictors: Dict[object, CombinedPredictor] = {}
        self._history: Dict[object, List[float]] = {}
        self._forecasts: Dict[object, List[float]] = {}

    # -- observation ------------------------------------------------------
    def observe(self, key, demand: float) -> float:
        """Record one interval's demand for ``key``; returns the forecast."""
        if demand < 0:
            raise ValueError(f"demand must be >= 0, got {demand}")
        predictor = self._predictors.get(key)
        if predictor is None:
            predictor = self._factory()
            self._predictors[key] = predictor
            self._history[key] = []
            self._forecasts[key] = []
        self._history[key].append(float(demand))
        forecast = predictor.update(float(demand))
        self._forecasts[key].append(forecast)
        return forecast

    # -- queries ----------------------------------------------------------
    def target(self, key) -> int:
        """Warm-container target for ``key``: the rounded-up forecast."""
        predictor = self._predictors.get(key)
        if predictor is None or predictor.forecast is None:
            return 0
        return int(min(self.max_target, max(0, math.ceil(predictor.forecast - 1e-9))))

    def target_upper(self, key, quantile: float = 0.9, horizon: int = 4) -> int:
        """Risk-aware target from the k-step upper-quantile forecast.

        Never below :meth:`target`: ``forecast_upper`` is clamped to the
        point forecast (and falls back to it while the key's residual
        chain has no data), so the risk-aware target can only add
        capacity.  This is the target HotC's pool resizing uses: it
        keeps capacity provisioned across recurring bursts (Fig 14b).
        """
        predictor = self._predictors.get(key)
        if predictor is None:
            return 0
        upper = predictor.forecast_upper(quantile=quantile, horizon=horizon)
        if upper is None:
            return 0
        return int(min(self.max_target, max(0, math.ceil(upper - 1e-9))))

    def donation_headroom(
        self, key, total: int, quantile: float = 0.9, horizon: int = 4
    ) -> int:
        """How many of ``total`` pooled containers ``key`` can donate.

        The repurposing donor policy: a key may give up idle containers
        only down to the *larger* of its point-forecast and risk-aware
        targets — donate the slack the forecast says will not be
        missed.  A key the controller has never observed has no
        forecast demand, so its containers are fully donatable (they
        exist only because a request left them behind).
        """
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        need = max(
            self.target(key),
            self.target_upper(key, quantile=quantile, horizon=horizon),
        )
        return max(0, total - need)

    def known_keys(self) -> Tuple:
        """All keys that have been observed, insertion-ordered."""
        return tuple(self._predictors)

    def history(self, key) -> Tuple[float, ...]:
        """Raw demand history of a key."""
        return tuple(self._history.get(key, ()))

    def forecast_history(self, key) -> Tuple[float, ...]:
        """Forecast made after each observation (for Fig 10)."""
        return tuple(self._forecasts.get(key, ()))

    def relative_errors(self, key) -> Tuple[float, ...]:
        """|forecast_{t-1} - actual_t| / max(actual_t, 1) per step.

        ``forecast_history[i]`` predicts ``history[i+1]`` — the series
        behind the paper's "relative error drops from 29% to 10%" claim.
        """
        history = self._history.get(key, [])
        forecasts = self._forecasts.get(key, [])
        errors = []
        for index in range(1, len(history)):
            actual = history[index]
            predicted = forecasts[index - 1]
            errors.append(abs(predicted - actual) / max(actual, 1.0))
        return tuple(errors)
