"""Adaptive live container management (Section IV-C).

The prediction pipeline combines two models, exactly as the paper
argues: exponential smoothing fits the *trend* of the per-key container
demand series (Eq. 1), and a Markov chain over forecast residuals
corrects the *volatility* the smoother cannot follow (Eq. 2).  The
:class:`AdaptivePoolController` feeds per-key demand observations into
a combined predictor and turns forecasts into pool-size targets.
"""

from repro.core.predictor.exponential import ExponentialSmoothing
from repro.core.predictor.markov import MarkovChain
from repro.core.predictor.combined import CombinedPredictor
from repro.core.predictor.controller import AdaptivePoolController

__all__ = [
    "AdaptivePoolController",
    "CombinedPredictor",
    "ExponentialSmoothing",
    "MarkovChain",
]
