"""The combined ES + Markov predictor (Section IV-C(3)).

The paper's argument: exponential smoothing follows the demand *trend*
but "forecast is relatively lagging and cannot handle large jittering";
the Markov chain "revises preliminary results to overcome the data
fluctuation".

We implement the standard smoothing/Markov hybrid that matches the
paper's description: the Markov chain runs over the *residuals* of the
smoother (actual − forecast).  Each step:

1. ES produces the trend forecast ``f_{t+1}``.
2. The residual series ``r_t = x_t − f_t`` is bucketed into region
   states; the 1-step transition matrix predicts the next residual
   state from the current one (Eq. 2).
3. The corrected forecast is ``f_{t+1} + midpoint(next residual
   state)`` — the midpoint rule of the paper.

Until enough residuals exist to estimate transitions
(:attr:`min_history`), the predictor falls back to pure ES.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.predictor.exponential import ExponentialSmoothing
from repro.core.predictor.markov import DEFAULT_WINDOW, MarkovChain

__all__ = ["CombinedPredictor"]


class CombinedPredictor:
    """Streaming exponential-smoothing + Markov-correction predictor.

    Parameters
    ----------
    alpha:
        Smoothing coefficient of Eq. 1 (paper default 0.8).
    n_states:
        Number of Markov region states over the residual range.
    init:
        Initial-value policy of the smoother (see
        :class:`ExponentialSmoothing`).
    min_history:
        Observations required before the Markov correction engages.
    clamp_min:
        Lower bound applied to the corrected forecast (container counts
        cannot be negative).
    markov_window:
        Sliding-window length of the residual chain (``None`` keeps all
        residuals; see :class:`MarkovChain`).
    """

    def __init__(
        self,
        alpha: float = 0.8,
        n_states: int = 4,
        init: str = "auto",
        min_history: int = 6,
        clamp_min: Optional[float] = 0.0,
        markov_window: Optional[int] = DEFAULT_WINDOW,
    ) -> None:
        if min_history < 2:
            raise ValueError("min_history must be >= 2")
        self.smoother = ExponentialSmoothing(alpha=alpha, init=init)
        self.residual_chain = MarkovChain(
            n_states=n_states, window=markov_window
        )
        self.min_history = min_history
        self.clamp_min = clamp_min
        self._last_forecast: Optional[float] = None
        self._last_residual: Optional[float] = None
        self._forecast_next: Optional[float] = None

    @property
    def n_observations(self) -> int:
        """How many observations have been consumed."""
        return self.smoother.n_observations

    @property
    def forecast(self) -> Optional[float]:
        """Corrected one-step-ahead forecast (None before any data)."""
        return self._forecast_next

    def update(self, observation: float) -> float:
        """Consume one observation, return the corrected next forecast."""
        if self._last_forecast is not None:
            self._last_residual = observation - self._last_forecast
            self.residual_chain.update(self._last_residual)

        trend = self.smoother.update(observation)
        self._last_forecast = trend

        corrected = trend
        if (
            self.smoother.n_observations >= self.min_history
            and self.residual_chain.ready
            and self._last_residual is not None
        ):
            correction = self.residual_chain.predict(self._last_residual)
            corrected = trend + correction
        if self.clamp_min is not None:
            corrected = max(self.clamp_min, corrected)
        self._forecast_next = corrected
        return corrected

    def fit_series(self, values) -> np.ndarray:
        """Feed a series; element ``i`` is the forecast for point ``i+1``."""
        return np.array([self.update(v) for v in np.asarray(values, dtype=float)])

    def forecast_upper(self, quantile: float = 0.9, horizon: int = 4) -> Optional[float]:
        """Risk-aware forecast for pool sizing: an upper quantile of the
        demand over the next ``horizon`` steps.

        Pool sizing is asymmetric — an idle container costs ~0.7 MB, a
        cold start costs hundreds of milliseconds — so HotC provisions
        against an upper quantile rather than the point forecast.  For
        each step ``h`` the k-step transition matrix of Eq. 2 gives the
        distribution of the residual state ``h`` intervals ahead; the
        ``quantile``-level midpoint correction is added to the trend and
        the maximum over horizons is returned.  This is what lets the
        pool stay provisioned across *recurring* bursts (Fig 14b): a
        burst every k intervals shows up as mass in the k-step matrix.

        Returns the plain :attr:`forecast` until the residual chain has
        data.
        """
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if (
            self._forecast_next is None
            or self._last_forecast is None
            or self._last_residual is None
            or not self.residual_chain.ready
            or self.smoother.n_observations < self.min_history
        ):
            return self._forecast_next
        chain = self.residual_chain
        trend = self._last_forecast
        current_state = chain.state_of(self._last_residual)
        midpoints = np.array(
            [chain.state_midpoint(i) for i in range(chain.n_states)]
        )
        order = np.argsort(midpoints)
        best = self._forecast_next
        for step in range(1, horizon + 1):
            row = chain.transition_matrix(step, empty_rows="marginal")[current_state]
            cumulative = 0.0
            correction = midpoints[order[-1]]
            for state in order:
                cumulative += row[state]
                if cumulative >= quantile - 1e-12:
                    correction = midpoints[state]
                    break
            candidate = trend + float(correction)
            if self.clamp_min is not None:
                candidate = max(self.clamp_min, candidate)
            best = max(best, candidate)
        # Invariant: never below the point forecast.  ``best`` starts at
        # ``_forecast_next`` and only grows, but the donor-selection
        # path (inter-key repurposing) leans on the guarantee, so clamp
        # explicitly rather than structurally.
        return max(best, self._forecast_next)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CombinedPredictor(alpha={self.smoother.alpha}, "
            f"n_states={self.residual_chain.n_states}, "
            f"n={self.n_observations})"
        )
