"""Baseline keep-alive policies HotC is evaluated against.

* :class:`NoReuseProvider` — default serverless behaviour: every
  request cold-boots; the "w/o HotC" arm of all figures.
* :class:`FixedKeepAliveProvider` — AWS Lambda-style: after a request,
  the container is kept for a fixed window (15 minutes in AWS,
  Section III-B) and destroyed if unused.
* :class:`PeriodicWarmupProvider` — Azure Logic-style: a designated
  container per runtime type is pinged periodically so it never goes
  cold; burst traffic beyond the warm container still cold-boots.
* :class:`HistogramKeepAliveProvider` — Serverless-in-the-Wild-style
  comparator [27]: the keep-alive window adapts per key to a high
  percentile of the observed idle gaps.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

import numpy as np

from repro.containers.container import Container, ContainerConfig
from repro.containers.engine import ContainerEngine
from repro.core.keys import KeyPolicy, RuntimeKey, runtime_key
from repro.faas.platform import ColdBootProvider, RuntimeProvider

__all__ = [
    "FixedKeepAliveProvider",
    "HistogramKeepAliveProvider",
    "NoReuseProvider",
    "PeriodicWarmupProvider",
]

#: AWS Lambda's documented keep-alive window (Section III-B).
AWS_KEEP_ALIVE_MS = 15 * 60 * 1_000.0


class NoReuseProvider(ColdBootProvider):
    """Cold boot on every request; the paper's default baseline."""


class _IdlePoolProvider(RuntimeProvider):
    """Shared machinery: an idle list per key with timed expiry."""

    def __init__(self, engine: ContainerEngine, key_policy: KeyPolicy = KeyPolicy.FULL) -> None:
        self.engine = engine
        self.sim = engine.sim
        self.key_policy = key_policy
        #: key -> [(container, expiry queue entry or None)]
        self._idle: Dict[RuntimeKey, List[Tuple[Container, object]]] = {}
        self.hits = 0
        self.misses = 0
        self.expirations = 0

    def key_of(self, config: ContainerConfig) -> RuntimeKey:
        """Parameter analysis used for idle-list lookup."""
        return runtime_key(config, self.key_policy)

    def _keep_alive_for(self, key: RuntimeKey) -> float:
        """Keep-alive window (ms) for this key; subclasses decide."""
        raise NotImplementedError

    # -- protocol -----------------------------------------------------------
    def acquire(self, config: ContainerConfig) -> Generator:
        key = self.key_of(config)
        idle = self._idle.get(key)
        self._observe_gap(key)
        while idle:
            container, expiry = idle.pop(0)
            if expiry is not None:
                expiry.cancel()
            if not container.is_reusable:
                continue  # died while idle (crash injection)
            self.hits += 1
            return container, False
        self.misses += 1
        container = yield from self.engine.boot_container(config)
        return container, True

    def release(self, container: Container) -> Generator:
        key = self.key_of(container.config)
        yield from self.engine.clean_container(container)
        ttl = self._keep_alive_for(key)
        expiry = self.sim.schedule(ttl, self._expire, key, container)
        self._idle.setdefault(key, []).append((container, expiry))
        self._note_release(key)

    def shutdown(self) -> Generator:
        for key, idle in list(self._idle.items()):
            for container, expiry in idle:
                if expiry is not None:
                    expiry.cancel()
                yield from self.engine.stop_container(container)
                yield from self.engine.remove_container(container)
            self._idle[key] = []

    # -- expiry ------------------------------------------------------------
    def _expire(self, key: RuntimeKey, container: Container) -> None:
        idle = self._idle.get(key, [])
        for index, (candidate, _) in enumerate(idle):
            if candidate is container:
                idle.pop(index)
                break
        else:
            return  # already taken by a request
        self.expirations += 1

        def _destroy() -> Generator:
            yield from self.engine.stop_container(container)
            yield from self.engine.remove_container(container)

        self.sim.process(_destroy(), name=f"expire:{container.container_id}")

    # -- hooks for the adaptive subclass ------------------------------------
    def _observe_gap(self, key: RuntimeKey) -> None:
        """Called at acquire time, before the idle-list lookup."""

    def _note_release(self, key: RuntimeKey) -> None:
        """Called after a container returns to the idle list."""

    def warm_count(self, key: RuntimeKey) -> int:
        """Idle containers currently held for ``key``."""
        return len(self._idle.get(key, ()))


class FixedKeepAliveProvider(_IdlePoolProvider):
    """Fixed keep-alive window for every key (AWS-style).

    "AWS adopts a fixed keep-alive policy that retains the resources in
    memory for minutes after function execution ... it disregards
    actual invocation frequency and patterns" (Section III-B).
    """

    def __init__(
        self,
        engine: ContainerEngine,
        keep_alive_ms: float = AWS_KEEP_ALIVE_MS,
        key_policy: KeyPolicy = KeyPolicy.FULL,
    ) -> None:
        super().__init__(engine, key_policy)
        if keep_alive_ms <= 0:
            raise ValueError("keep_alive_ms must be positive")
        self.keep_alive_ms = keep_alive_ms

    def _keep_alive_for(self, key: RuntimeKey) -> float:
        return self.keep_alive_ms


class HistogramKeepAliveProvider(_IdlePoolProvider):
    """Per-key adaptive keep-alive from the idle-gap histogram.

    Mirrors the Azure policy of [27]: track the gaps between a
    container becoming idle and the next request of its type; keep
    containers alive for the ``percentile``-th gap (clamped), so
    frequently-invoked types hold containers just long enough.
    """

    def __init__(
        self,
        engine: ContainerEngine,
        percentile: float = 95.0,
        min_keep_ms: float = 10_000.0,
        max_keep_ms: float = AWS_KEEP_ALIVE_MS,
        history: int = 200,
        key_policy: KeyPolicy = KeyPolicy.FULL,
    ) -> None:
        super().__init__(engine, key_policy)
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if min_keep_ms <= 0 or max_keep_ms < min_keep_ms:
            raise ValueError("need 0 < min_keep_ms <= max_keep_ms")
        if history < 1:
            raise ValueError("history must be >= 1")
        self.percentile = percentile
        self.min_keep_ms = min_keep_ms
        self.max_keep_ms = max_keep_ms
        self.history = history
        self._gaps: Dict[RuntimeKey, List[float]] = {}
        self._last_release: Dict[RuntimeKey, float] = {}

    def _observe_gap(self, key: RuntimeKey) -> None:
        last = self._last_release.get(key)
        if last is not None:
            gaps = self._gaps.setdefault(key, [])
            gaps.append(self.sim.now - last)
            if len(gaps) > self.history:
                del gaps[: len(gaps) - self.history]

    def _note_release(self, key: RuntimeKey) -> None:
        self._last_release[key] = self.sim.now

    def _keep_alive_for(self, key: RuntimeKey) -> float:
        gaps = self._gaps.get(key)
        if not gaps:
            return self.max_keep_ms  # no data: be generous
        estimate = float(np.percentile(gaps, self.percentile))
        return float(np.clip(estimate * 1.1, self.min_keep_ms, self.max_keep_ms))


class PeriodicWarmupProvider(RuntimeProvider):
    """One designated always-warm container per key (Azure Logic-style).

    "periodically waking up containers to keep warm (i.e., Azure
    Logic)" — the warm container is pinged every ``period_ms``; pings
    occupy it briefly and burn host resources.  Demand beyond the one
    warm container cold-boots disposable extras.
    """

    def __init__(
        self,
        engine: ContainerEngine,
        period_ms: float = 5 * 60 * 1_000.0,
        ping_ms: float = 10.0,
        key_policy: KeyPolicy = KeyPolicy.FULL,
    ) -> None:
        if period_ms <= 0 or ping_ms < 0:
            raise ValueError("period_ms must be > 0 and ping_ms >= 0")
        self.engine = engine
        self.sim = engine.sim
        self.period_ms = period_ms
        self.ping_ms = ping_ms
        self.key_policy = key_policy
        self._warm: Dict[RuntimeKey, Container] = {}
        self._warm_busy: Dict[RuntimeKey, bool] = {}
        self._running = True
        self.hits = 0
        self.misses = 0
        self.pings = 0

    def key_of(self, config: ContainerConfig) -> RuntimeKey:
        """Parameter analysis for warm-slot lookup."""
        return runtime_key(config, self.key_policy)

    def acquire(self, config: ContainerConfig) -> Generator:
        key = self.key_of(config)
        warm = self._warm.get(key)
        if warm is not None and not self._warm_busy[key] and warm.is_reusable:
            self._warm_busy[key] = True
            self.hits += 1
            return warm, False
        self.misses += 1
        container = yield from self.engine.boot_container(config)
        if warm is None:
            # First container of this type becomes the designated warm one.
            self._warm[key] = container
            self._warm_busy[key] = True
            self.sim.process(self._ping_loop(key), name=f"warmup:{key}")
        return container, True

    def release(self, container: Container) -> Generator:
        key = self.key_of(container.config)
        if self._warm.get(key) is container:
            yield from self.engine.clean_container(container)
            self._warm_busy[key] = False
            return
        # Disposable extra: destroy.
        yield from self.engine.stop_container(container)
        yield from self.engine.remove_container(container)

    def shutdown(self) -> Generator:
        self._running = False
        for key, container in list(self._warm.items()):
            if container.is_reusable:
                yield from self.engine.stop_container(container)
                yield from self.engine.remove_container(container)
            del self._warm[key]

    def _ping_loop(self, key: RuntimeKey) -> Generator:
        while self._running:
            yield self.sim.timeout(self.period_ms)
            if not self._running:
                break
            container = self._warm.get(key)
            if container is None:
                break
            if self._warm_busy.get(key) or not container.is_reusable:
                continue  # skip the ping; a request is in flight
            self._warm_busy[key] = True
            yield self.sim.timeout(self.ping_ms)
            self._warm_busy[key] = False
            self.pings += 1
