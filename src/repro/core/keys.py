"""Parameter analysis: container configuration → canonical runtime key.

Section IV-B: "The first step of HotC is to analyze the user command or
configuration file to figure out the parameter setting of the container
runtime.  The parameter includes container images, network
configuration, UTS settings, IPC settings, execution options, etc.
HotC treats containers with identical parameter configurations as the
same type of runtime environment."

Keys are value objects usable as dict keys.  :class:`KeyPolicy` selects
how much of the configuration participates — the paper's default uses
every parameter; the ``IMAGE_ONLY`` and ``RELAXED`` policies implement
the future-work idea of matching on a parameter subset so that "small
differences in the configuration file" no longer cause lookup misses.
"""

from __future__ import annotations

import enum
import shlex
from dataclasses import dataclass
from typing import Tuple

from repro.containers.container import ContainerConfig
from repro.containers.network import NetworkConfig

__all__ = ["KeyPolicy", "RuntimeKey", "parse_run_command", "runtime_key"]


class KeyPolicy(enum.Enum):
    """How much of the configuration participates in the key."""

    #: Every runtime parameter (the paper's design).
    FULL = "full"
    #: Image + network mode + resource class; ignores env and options.
    RELAXED = "relaxed"
    #: Image reference only (most aggressive reuse, least safe).
    IMAGE_ONLY = "image-only"


@dataclass(frozen=True)
class RuntimeKey:
    """Canonical identity of a container runtime environment."""

    policy: KeyPolicy
    fields: Tuple

    def __post_init__(self) -> None:
        # Keys index every pool/predictor dict on the acquire/release
        # hot path, and the generated dataclass hash would re-hash the
        # whole field tuple (including the enum policy, whose __hash__
        # is Python-level) on every lookup.  Hash once at construction.
        object.__setattr__(self, "_hash", hash((self.policy, self.fields)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def image(self) -> str:
        """The image reference — first field under every policy."""
        return self.fields[0]

    def __str__(self) -> str:
        parts = "|".join(str(field) for field in self.fields)
        return f"{self.policy.value}:{parts}"


def runtime_key(
    config: ContainerConfig, policy: KeyPolicy = KeyPolicy.FULL
) -> RuntimeKey:
    """Derive the runtime key of ``config`` under ``policy``.

    The result is memoized on the (frozen, hence immutable) config
    instance: every acquire/release/recycle step re-derives the key of
    the same few config objects, so the per-call tuple building and
    ``canonical()`` normalisation showed up hot in trace-scale profiles.
    The cache attribute is per policy (rather than a policy-keyed dict)
    because ``Enum.__hash__`` is Python-level and itself showed up hot.
    """
    if policy is KeyPolicy.FULL:
        attr = "_rk_full"
    elif policy is KeyPolicy.RELAXED:
        attr = "_rk_relaxed"
    else:
        attr = "_rk_image_only"
    key = config.__dict__.get(attr)
    if key is not None:
        return key
    if policy is KeyPolicy.FULL:
        fields = (
            config.image,
            config.network.canonical(),
            config.uts_mode,
            config.ipc_mode,
            tuple(sorted(config.env)),
            tuple(config.exec_options),
            config.cpu_millicores,
            config.mem_mb,
        )
    elif policy is KeyPolicy.RELAXED:
        fields = (
            config.image,
            config.network.mode,
            config.cpu_millicores,
            config.mem_mb,
        )
    elif policy is KeyPolicy.IMAGE_ONLY:
        fields = (config.image,)
    else:  # pragma: no cover - exhaustive over enum
        raise ValueError(f"unhandled policy {policy!r}")
    key = RuntimeKey(policy=policy, fields=fields)
    object.__setattr__(config, attr, key)
    return key


_MEMORY_SUFFIXES = {"b": 1 / (1024 * 1024), "k": 1 / 1024, "m": 1.0, "g": 1024.0}


def _parse_memory(text: str) -> float:
    """``256m`` / ``1g`` / ``512`` (bytes-less defaults to MB) → MB."""
    text = text.strip().lower()
    if not text:
        raise ValueError("empty memory value")
    suffix = text[-1]
    if suffix in _MEMORY_SUFFIXES:
        return float(text[:-1]) * _MEMORY_SUFFIXES[suffix]
    return float(text)


def parse_run_command(command: str) -> ContainerConfig:
    """Parse a ``docker run``-style command into a ContainerConfig.

    Supports the flags HotC's parameter analysis cares about:
    ``--net/--network``, ``-e/--env``, ``--uts``, ``--ipc``,
    ``-p/--publish``, ``-m/--memory``, ``--cpus``; the first
    non-flag token is the image, everything after it becomes
    ``exec_options``.

    >>> config = parse_run_command(
    ...     "docker run --net=host -e A=1 -m 256m python:3.6 handler.py")
    >>> config.image, config.network.mode, config.mem_mb
    ('python:3.6', 'host', 256.0)
    """
    tokens = shlex.split(command)
    if tokens[:2] == ["docker", "run"]:
        tokens = tokens[2:]
    elif tokens[:1] == ["run"]:
        tokens = tokens[1:]
    if not tokens:
        raise ValueError("no image in run command")

    network_mode = "bridge"
    ports: list[int] = []
    env: list[Tuple[str, str]] = []
    uts_mode = "private"
    ipc_mode = "private"
    cpu_millicores = 250.0
    mem_mb = 128.0
    image: str | None = None
    exec_options: list[str] = []

    def split_flag(token: str, remaining: list[str], name: str) -> str:
        """Value of ``--flag=v`` or ``--flag v`` forms."""
        if "=" in token:
            return token.split("=", 1)[1]
        if not remaining:
            raise ValueError(f"flag {name} needs a value")
        return remaining.pop(0)

    remaining = list(tokens)
    while remaining:
        token = remaining.pop(0)
        if image is not None:
            exec_options.append(token)
            continue
        if token.startswith(("--net", "--network")):
            network_mode = split_flag(token, remaining, "--net")
        elif token == "-e" or token.startswith("--env"):
            pair = split_flag(token, remaining, "--env")
            if "=" not in pair:
                raise ValueError(f"env must be KEY=VALUE, got {pair!r}")
            key, _, value = pair.partition("=")
            env.append((key, value))
        elif token.startswith("--uts"):
            uts_mode = split_flag(token, remaining, "--uts")
        elif token.startswith("--ipc"):
            ipc_mode = split_flag(token, remaining, "--ipc")
        elif token == "-p" or token.startswith("--publish"):
            mapping = split_flag(token, remaining, "--publish")
            host_port = mapping.split(":", 1)[0]
            ports.append(int(host_port))
        elif token == "-m" or token.startswith("--memory"):
            mem_mb = _parse_memory(split_flag(token, remaining, "--memory"))
        elif token.startswith("--cpus"):
            cpu_millicores = float(split_flag(token, remaining, "--cpus")) * 1000.0
        elif token.startswith("-"):
            raise ValueError(f"unsupported flag {token!r}")
        else:
            image = token
    if image is None:
        raise ValueError(f"no image in run command {command!r}")

    # container-join network syntax: --net=container:<peer>
    peer = None
    if network_mode.startswith("container:"):
        network_mode, _, peer = network_mode.partition(":")

    return ContainerConfig(
        image=image,
        network=NetworkConfig(
            mode=network_mode, ports=tuple(sorted(ports)), peer=peer
        ),
        uts_mode=uts_mode,
        ipc_mode=ipc_mode,
        env=tuple(env),
        exec_options=tuple(exec_options),
        cpu_millicores=cpu_millicores,
        mem_mb=mem_mb,
    )
