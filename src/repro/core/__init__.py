"""The paper's contribution: HotC.

- :mod:`repro.core.keys` — parameter analysis: user command /
  configuration → canonical runtime key (Section IV-B).
- :mod:`repro.core.pool` — the live container runtime pool with the
  three-state availability machine of Fig 7 and the eviction heuristics.
- :mod:`repro.core.cleanup` — used-container cleanup (Algorithm 2).
- :mod:`repro.core.predictor` — adaptive live container management:
  exponential smoothing (Eq 1) + Markov chain correction (Eq 2).
- :mod:`repro.core.policies` — baseline keep-alive policies HotC is
  compared against (no reuse, AWS-style fixed keep-alive, Azure-style
  periodic warm-up, histogram keep-alive).
- :mod:`repro.core.hotc` — the middleware tying everything together.
"""

from repro.core.breaker import CircuitBreaker
from repro.core.keys import KeyPolicy, RuntimeKey, parse_run_command, runtime_key
from repro.core.pool import ContainerRuntimePool, PoolEntry, PoolLimits, PoolStats
from repro.core.cleanup import CleanupWorker
from repro.core.cluster import (
    ClusterHotC,
    ClusterStats,
    make_cluster_engines,
    make_cluster_platform,
)
from repro.core.hotc import HotC, HotCConfig
from repro.core.kvstore import ReplicatedKeyValueStore
from repro.core.policies import (
    FixedKeepAliveProvider,
    HistogramKeepAliveProvider,
    NoReuseProvider,
    PeriodicWarmupProvider,
)
from repro.core.predictor import (
    AdaptivePoolController,
    CombinedPredictor,
    ExponentialSmoothing,
    MarkovChain,
)
from repro.core.similarity import KeySimilarityModel

__all__ = [
    "AdaptivePoolController",
    "CircuitBreaker",
    "CleanupWorker",
    "ClusterHotC",
    "ClusterStats",
    "CombinedPredictor",
    "ContainerRuntimePool",
    "ReplicatedKeyValueStore",
    "make_cluster_engines",
    "make_cluster_platform",
    "ExponentialSmoothing",
    "FixedKeepAliveProvider",
    "HistogramKeepAliveProvider",
    "HotC",
    "HotCConfig",
    "KeyPolicy",
    "KeySimilarityModel",
    "MarkovChain",
    "NoReuseProvider",
    "PeriodicWarmupProvider",
    "PoolEntry",
    "PoolLimits",
    "PoolStats",
    "RuntimeKey",
    "parse_run_command",
    "runtime_key",
]
