"""The live container runtime pool (Section IV-B, Fig 7).

"HotC maintains a key value store to track the available containers.
The key is the formatted parameter configurations for each container
and the value is a list with container ID and state of the container."

States (Fig 7): Not-Existing (−1), Existing-Not-Available (0),
Existing-Available (1).  The pool exposes the paper's tri-state view
per key via :meth:`state_of` while internally tracking per-container
entries.  Limits: at most ``max_containers`` live containers and a host
memory threshold (80% in the paper); under pressure the oldest live
container is evicted (``oldest`` strategy; ``lru`` and ``largest`` are
provided for the eviction ablation).

Pool internals (hot-path design)
--------------------------------
Every operation the request path touches is indexed so bookkeeping
stays off the critical path:

* **acquire** pops the tail of a per-key list of available entries kept
  sorted descending by registration sequence number — O(1) for the
  earliest-registered entry, reproducing the seed semantics instead of
  an O(n) scan.  **release** re-inserts the entry's pre-built
  ``(-seq, entry)`` item with one C-level ``bisect.insort``.
* **eviction_candidate** peeks a pool-wide heap ordered by the active
  strategy's sort key with the container id as tie-breaker, O(log n)
  amortised instead of scanning every live container.  Eviction-heap
  pushes are *deferred*: release only flags the entry into a pending
  list (deduplicated, bounded by pool size), and the sort tuples are
  built and pushed when a candidate is actually requested — the
  acquire/release cycle carries no eviction bookkeeping at all.
* **num_available / num_total / total_available / snapshot / state_of**
  read incrementally maintained per-key ``(available, total)``
  counters; nothing recounts.  Each entry carries direct references to
  its key's counter list and availability list, so the hot path does at
  most one key-dict probe.

The eviction heap uses *lazy deletion*: leaving availability (acquire
or removal) bumps the entry's ``stamp``; heap copies whose stamp no
longer matches (or whose entry left the pool) are skipped and discarded
when they surface, and the heap is compacted once stale copies
outnumber live ones.  An entry's eviction sort fields (``added_at``,
``last_used_at``, memory size) are frozen while it is available, so a
deferred-pushed copy is ordered exactly as an eager one.  Determinism
guarantee: acquire order depends only on registration order, and the
eviction candidate is the minimum over every live available entry
(independent of push timing) with ties broken on container id —
identical to the original list-scanning implementation, so seeded
benchmarks reproduce bit-for-bit.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable, Dict, List, Optional, Tuple

from repro.containers.container import Container
from repro.core.keys import RuntimeKey
from repro.obs.events import EventKind

__all__ = [
    "ContainerRuntimePool",
    "PoolEntry",
    "PoolLimits",
    "PoolStats",
    "NOT_EXISTING",
    "NOT_AVAILABLE",
    "AVAILABLE",
]

#: The paper's tri-state values (Fig 7).
NOT_EXISTING = -1
NOT_AVAILABLE = 0
AVAILABLE = 1

_EVICTION_STRATEGIES = ("oldest", "lru", "largest")

#: How a pooled container was (or is being) reused; selects which
#: PoolStats counter a reuse — and its rollback on a dead discard —
#: lands in.
_REUSE_COUNTERS = {
    "hit": "hits",
    "relaxed": "relaxed_hits",
    "repurpose": "repurposed",
}

#: Compact a heap when it holds more than this many entries and more
#: than half of them are stale lazy-deletion copies.
_COMPACT_MIN = 64



@dataclass(slots=True)
class PoolEntry:
    """One pooled container and its bookkeeping."""

    container: Container
    key: RuntimeKey
    available: bool
    added_at: float
    last_used_at: float
    #: Registration order; acquire hands out the smallest available seq.
    seq: int = 0
    #: Bumped when the entry leaves availability (acquire/remove); stale
    #: eviction-heap copies carry an older stamp and are skipped.
    stamp: int = 0
    #: False once the entry has been removed from the pool.
    in_pool: bool = True
    #: Direct references to this key's ``[available, total]`` counter
    #: list and availability list, set at registration — acquire/release
    #: update them without re-probing the key-indexed dicts.
    counts: Optional[List[int]] = field(default=None, repr=False)
    avail_list: Optional[List[Tuple]] = field(default=None, repr=False)
    #: The entry's reusable ``(-seq, entry)`` availability-list item; at
    #: most one copy is ever live, so release re-inserts the same tuple
    #: instead of building a fresh one.
    avail_item: Optional[Tuple] = field(default=None, repr=False)
    #: True while the entry sits in the pool's deferred eviction-push
    #: list (dedup flag; cleared when the list is flushed).
    evict_pending: bool = field(default=False, repr=False)


@dataclass(frozen=True)
class PoolLimits:
    """Pool-wide resource guards (paper defaults)."""

    max_containers: int = 500
    memory_threshold: float = 0.8

    def __post_init__(self) -> None:
        if self.max_containers < 0:
            raise ValueError("max_containers must be >= 0")
        if not 0.0 < self.memory_threshold <= 1.0:
            raise ValueError("memory_threshold must be in (0, 1]")


@dataclass
class PoolStats:
    """Reuse and eviction counters.

    ``hits`` counts *exact-key* reuse only — the paper's definition.
    Relaxed-fallback and repurposed reuses are tracked separately (they
    each follow an exact-key miss, which stays counted in ``misses``),
    so ``hit_ratio`` is never inflated by approximate matches.
    """

    hits: int = 0
    misses: int = 0
    #: Reuses served via the relaxed-fallback index (config delta applied).
    relaxed_hits: int = 0
    #: Reuses served by repurposing an idle donor of a *different* key.
    repurposed: int = 0
    registered: int = 0
    retired: int = 0
    evictions_capacity: int = 0
    evictions_pressure: int = 0
    #: Pool hits whose container turned out dead; un-counted from hits.
    dead_discards: int = 0
    #: Containers pulled out of every availability index by the
    #: container health plane (cumulative).
    quarantined: int = 0
    #: Quarantined containers whose recycle completed (cumulative);
    #: ``quarantined - recycled`` is the current quarantine-set size.
    recycled: int = 0

    @property
    def lookups(self) -> int:
        """Total acquire attempts."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served by an exact-key warm container."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def cold_starts_eliminated(self) -> int:
        """Exact-key misses that still avoided a cold boot."""
        return self.relaxed_hits + self.repurposed


class ContainerRuntimePool:
    """Key-value store of live container runtimes.

    The optional ``on_key_empty`` callback fires after the last pooled
    container of a key is removed — HotC uses it to prune per-key
    side-indexes (e.g. the relaxed-key fallback index) so long-running
    multi-tenant hosts do not leak bookkeeping.
    """

    def __init__(
        self,
        limits: PoolLimits = PoolLimits(),
        eviction: str = "oldest",
    ) -> None:
        if eviction not in _EVICTION_STRATEGIES:
            raise ValueError(
                f"eviction must be one of {_EVICTION_STRATEGIES}, got {eviction!r}"
            )
        self.limits = limits
        self.eviction = eviction
        self.stats = PoolStats()
        #: Fires with the key after its last entry leaves the pool.
        self.on_key_empty: Optional[Callable[[RuntimeKey], None]] = None
        #: Optional observatory; ``None`` keeps the acquire hook inert
        #: (one pointer comparison on the ~50µs hot path).
        self.obs = None
        self._obs_host = ""
        self._entries: Dict[RuntimeKey, Dict[str, PoolEntry]] = {}
        self._by_container: Dict[str, PoolEntry] = {}
        #: Per-key ``[available, total]`` counters (never recounted).
        self._counts: Dict[RuntimeKey, List[int]] = {}
        self._total_available = 0
        #: Per-key ``(-seq, entry)`` lists of available entries, sorted
        #: descending by registration seq: acquire pops the tail (the
        #: earliest-registered entry) in O(1), release re-inserts with
        #: one C-level ``bisect.insort``.
        self._avail_lists: Dict[RuntimeKey, List[Tuple]] = {}
        #: Pool-wide eviction heap of the active strategy's sort tuples.
        self._evict_heap: List[Tuple] = []
        #: Entries not yet pushed to the eviction heap (deduplicated via
        #: ``PoolEntry.evict_pending``, so it is bounded by pool size).
        #: release/register only set a flag and append (O(1)); the heap
        #: tuples — strategy sort key, container-id tie-breaker — are
        #: built and pushed lazily by :meth:`eviction_candidate`, keeping
        #: the acquire/release cycle free of eviction bookkeeping.
        self._evict_pending: List[PoolEntry] = []
        #: Quarantined entries (container_id -> entry): out of every
        #: availability index but still owned by the pool's conservation
        #: accounting until :meth:`mark_recycled`.
        self._quarantined: Dict[str, PoolEntry] = {}
        self._seq = 0
        if eviction == "oldest":
            self._evict_primary = lambda e: e.added_at
        elif eviction == "lru":
            self._evict_primary = lambda e: e.last_used_at
        else:  # largest
            self._evict_primary = lambda e: -e.container.config.mem_mb

    # -- observability hooks -------------------------------------------------
    def attach_observatory(self, observatory, host: str = "") -> None:
        """Record hit/miss events and counters (``None`` detaches).

        ``host`` labels this pool's series when several hosts share one
        observatory.
        """
        self.obs = observatory
        self._obs_host = host

    # -- the paper's views --------------------------------------------------
    def state_of(self, key: RuntimeKey) -> int:
        """Fig 7 tri-state for ``key``: −1 / 0 / 1."""
        counts = self._counts.get(key)
        if not counts or counts[1] == 0:
            return NOT_EXISTING
        return AVAILABLE if counts[0] > 0 else NOT_AVAILABLE

    def num_available(self, key: RuntimeKey) -> int:
        """``num_avail[key]`` of Algorithms 1 and 2."""
        counts = self._counts.get(key)
        return counts[0] if counts else 0

    def num_total(self, key: RuntimeKey) -> int:
        """All pooled containers of this type (busy + available)."""
        counts = self._counts.get(key)
        return counts[1] if counts else 0

    # -- membership ---------------------------------------------------------
    def acquire(self, key: RuntimeKey, now: float) -> Optional[Container]:
        """Take the first available container of type ``key`` (Algorithm 1).

        "First" means earliest-registered, as in the original list scan.
        Returns ``None`` on miss — the caller then cold-boots.
        Tainted containers (SUSPECT in the health plane) are passed
        over but stay available, so they keep their place until the
        recycle loop drains them; nothing ever sets ``tainted`` when
        the health plane is off, so this costs one attribute read.
        """
        avail = self._avail_lists.get(key)
        skipped = None
        while avail:
            item = avail.pop()
            entry = item[1]
            if not (entry.available and entry.in_pool):
                continue  # stale copy left by remove()-while-available
            if entry.container.tainted:
                if skipped is None:
                    skipped = []
                skipped.append(item)
                continue
            entry.available = False
            entry.stamp += 1
            entry.last_used_at = now
            entry.counts[0] -= 1
            self._total_available -= 1
            self.stats.hits += 1
            if skipped:
                # Items were popped tail-first (ascending seq), so the
                # reverse re-extends the list in sorted order.
                avail.extend(reversed(skipped))
            if self.obs is not None:
                self.obs.emit(
                    EventKind.POOL_HIT, t=now, host=self._obs_host, key=str(key)
                )
                self.obs.counter(
                    "pool_hits_total",
                    help="Acquires served by a pooled warm container",
                    host=self._obs_host,
                    key=str(key),
                ).inc()
            return entry.container
        if skipped:
            avail.extend(reversed(skipped))
        self.stats.misses += 1
        if self.obs is not None:
            self.obs.emit(
                EventKind.POOL_MISS, t=now, host=self._obs_host, key=str(key)
            )
            self.obs.counter(
                "pool_misses_total",
                help="Acquires that fell through to a cold boot",
                host=self._obs_host,
                key=str(key),
            ).inc()
        return None

    def acquire_donor(
        self, key: RuntimeKey, now: float, reuse: str
    ) -> Optional[Container]:
        """Claim an idle container of ``key`` for a *different* target key.

        Serves the relaxed-fallback and repurpose paths: same
        earliest-registered pop as :meth:`acquire`, but the reuse lands
        in ``relaxed_hits`` / ``repurposed`` instead of ``hits`` — the
        requester's own exact-key miss has already been counted, so
        neither a hit nor a second miss is recorded against the donor
        key.  Returns ``None`` when the donor key has nothing idle.
        Tainted (SUSPECT) containers are never donated: a failing
        container must not contaminate another key.
        """
        if reuse not in ("relaxed", "repurpose"):
            raise ValueError(f"reuse must be 'relaxed' or 'repurpose', got {reuse!r}")
        avail = self._avail_lists.get(key)
        skipped = None
        while avail:
            item = avail.pop()
            entry = item[1]
            if not (entry.available and entry.in_pool):
                continue  # stale copy left by remove()-while-available
            if entry.container.tainted:
                if skipped is None:
                    skipped = []
                skipped.append(item)
                continue
            entry.available = False
            entry.stamp += 1
            entry.last_used_at = now
            entry.counts[0] -= 1
            self._total_available -= 1
            if skipped:
                avail.extend(reversed(skipped))
            if reuse == "relaxed":
                self.stats.relaxed_hits += 1
            else:
                self.stats.repurposed += 1
            if self.obs is not None and reuse == "relaxed":
                self.obs.emit(
                    EventKind.POOL_RELAXED_HIT,
                    t=now,
                    host=self._obs_host,
                    key=str(key),
                )
                self.obs.counter(
                    "pool_relaxed_hits_total",
                    help="Acquires served by reconfiguring a relaxed-key match",
                    host=self._obs_host,
                    key=str(key),
                ).inc()
            return entry.container
        if skipped:
            avail.extend(reversed(skipped))
        return None

    def register(
        self,
        container: Container,
        key: RuntimeKey,
        now: float,
        available: bool = False,
    ) -> PoolEntry:
        """Add a (typically just-booted) container under ``key``."""
        if container.container_id in self._by_container:
            raise ValueError(
                f"container {container.container_id} already pooled"
            )
        entry = PoolEntry(
            container=container,
            key=key,
            available=False,
            added_at=now,
            last_used_at=now,
            seq=self._seq,
        )
        self._seq += 1
        self._entries.setdefault(key, {})[container.container_id] = entry
        self._by_container[container.container_id] = entry
        counts = self._counts.setdefault(key, [0, 0])
        counts[1] += 1
        entry.counts = counts
        entry.avail_list = self._avail_lists.setdefault(key, [])
        entry.avail_item = (-entry.seq, entry)
        self.stats.registered += 1
        if available:
            self._make_available(entry)
        return entry

    def release(self, container: Container, now: float) -> None:
        """Mark a busy container available again (Algorithm 2's ++).

        This is the hot half of every warm invocation, so the body of
        :meth:`_make_available` is inlined here.
        """
        try:
            entry = self._by_container[container.container_id]
        except KeyError:
            raise KeyError(
                f"container {container.container_id} is not in the pool"
            ) from None
        if entry.available:
            raise ValueError(
                f"container {container.container_id} is already available"
            )
        entry.last_used_at = now
        entry.available = True
        entry.counts[0] += 1
        self._total_available += 1
        insort(entry.avail_list, entry.avail_item)
        if not entry.evict_pending:
            entry.evict_pending = True
            self._evict_pending.append(entry)

    def remove(self, container: Container) -> PoolEntry:
        """Forget a container (being stopped/evicted)."""
        entry = self._entry_of(container)
        self.stats.retired += 1
        self._unlink(entry)
        return entry

    def quarantine(self, container: Container) -> PoolEntry:
        """Pull a pooled container out of every availability index.

        The entry leaves the exact/relaxed/repurpose indices, the
        eviction heap and donor candidacy exactly like :meth:`remove`,
        but stays tracked in the quarantine set until
        :meth:`mark_recycled` closes it out — so conservation holds:
        ``registered == live + quarantine set + recycled + retired``.
        """
        entry = self._entry_of(container)
        self._quarantined[container.container_id] = entry
        self.stats.quarantined += 1
        self._unlink(entry)
        return entry

    def mark_recycled(self, container: Container) -> PoolEntry:
        """Close out a quarantined container whose recycle completed."""
        try:
            entry = self._quarantined.pop(container.container_id)
        except KeyError:
            raise KeyError(
                f"container {container.container_id} is not quarantined"
            ) from None
        self.stats.recycled += 1
        return entry

    def is_quarantined(self, container: Container) -> bool:
        """Whether the container sits in the quarantine set."""
        return container.container_id in self._quarantined

    @property
    def total_quarantined(self) -> int:
        """Current quarantine-set size."""
        return len(self._quarantined)

    def quarantined_containers(self) -> Tuple[Container, ...]:
        """Snapshot of the quarantine set's containers."""
        return tuple(e.container for e in self._quarantined.values())

    def _unlink(self, entry: PoolEntry) -> None:
        # Shared tail of remove()/quarantine(): drop the entry from
        # every index and fire the key-emptied hook.
        container = entry.container
        entry.in_pool = False
        entry.stamp += 1
        del self._by_container[container.container_id]
        siblings = self._entries[entry.key]
        del siblings[container.container_id]
        counts = self._counts[entry.key]
        counts[1] -= 1
        if entry.available:
            counts[0] -= 1
            self._total_available -= 1
        key_emptied = not siblings
        if key_emptied:
            del self._entries[entry.key]
            del self._counts[entry.key]
            self._avail_lists.pop(entry.key, None)
        if not key_emptied:
            self._maybe_compact_avail(entry.key)
        self._maybe_compact_evictions()
        if key_emptied and self.on_key_empty is not None:
            self.on_key_empty(entry.key)

    def discard_dead(
        self, container: Container, reuse: str = "hit"
    ) -> Optional[PoolEntry]:
        """Forget a just-acquired container that turned out dead.

        The preceding :meth:`acquire` / :meth:`acquire_donor` counted a
        reuse (selected by ``reuse``) for an entry that cannot serve the
        request; un-count it and record the discard so the ratios
        reflect lookups actually served (the caller's retry then counts
        the lookup exactly once).

        The donor paths yield a re-spec timeout between the claim and
        the liveness check, so a host-failover drain may have already
        removed the entry — in that case only the counters are adjusted
        and ``None`` is returned.
        """
        counter = _REUSE_COUNTERS[reuse]
        entry = None
        if container.container_id in self._by_container:
            entry = self.remove(container)
        setattr(self.stats, counter, getattr(self.stats, counter) - 1)
        self.stats.dead_discards += 1
        return entry

    def contains(self, container: Container) -> bool:
        """Whether the container is pooled."""
        return container.container_id in self._by_container

    def is_available(self, container: Container) -> bool:
        """Whether the container is pooled *and* idle-available."""
        entry = self._by_container.get(container.container_id)
        return entry is not None and entry.available

    def reset(self) -> int:
        """Forget every entry and index: a control-plane crash.

        Mutates in place (the cleanup worker and HotC hold direct
        references to this pool) and keeps ``_seq`` monotonic so entries
        registered by a later recovery sweep never collide with stale
        availability-list or eviction-heap tuples still referenced by
        in-flight generators.  Stats survive — they are externally
        scraped counters, not recoverable state.  Returns the number of
        entries forgotten.
        """
        lost = len(self._by_container)
        for entry in self._by_container.values():
            entry.in_pool = False
            entry.stamp += 1
        self._entries.clear()
        self._by_container.clear()
        self._counts.clear()
        self._avail_lists.clear()
        # The quarantine set is in-memory control-plane state too; the
        # physical containers still carry ``condemned``, so the recovery
        # sweep retires them instead of re-adopting.
        self._quarantined.clear()
        self._evict_heap.clear()
        for entry in self._evict_pending:
            entry.evict_pending = False
        self._evict_pending.clear()
        self._total_available = 0
        return lost

    def _entry_of(self, container: Container) -> PoolEntry:
        try:
            return self._by_container[container.container_id]
        except KeyError:
            raise KeyError(
                f"container {container.container_id} is not in the pool"
            ) from None

    # -- aggregates -----------------------------------------------------------
    @property
    def total_live(self) -> int:
        """All pooled containers."""
        return len(self._by_container)

    @property
    def total_available(self) -> int:
        """All idle pooled containers."""
        return self._total_available

    def keys(self) -> Tuple[RuntimeKey, ...]:
        """Keys with at least one pooled container."""
        return tuple(self._entries)

    def snapshot(self) -> Dict[RuntimeKey, Tuple[int, int]]:
        """Per-key ``(available, total)`` counts — predictor input."""
        return {
            key: (self._counts[key][0], self._counts[key][1])
            for key in self._entries
        }

    # -- eviction ----------------------------------------------------------
    def over_capacity(self) -> bool:
        """Whether the container-count cap is exceeded."""
        return self.total_live > self.limits.max_containers

    def eviction_candidate(self) -> Optional[PoolEntry]:
        """Pick the next victim among *available* entries.

        ``oldest``: smallest ``added_at`` (the paper's rule: "the oldest
        live container is forcibly terminated").
        ``lru``: smallest ``last_used_at``.
        ``largest``: biggest configured memory limit.
        Busy containers are never evicted.  Ties break on container id
        so eviction is deterministic: the candidate is the minimum over
        every live available entry under the strategy's sort key, which
        is independent of when its heap copy was pushed — so the
        deferred flush below cannot change the selection.
        """
        self._flush_pending_evictions()
        heap = self._evict_heap
        while heap:
            item = heap[0]
            entry, stamp = item[-1], item[-2]
            if entry.in_pool and entry.available and entry.stamp == stamp:
                return entry
            heapq.heappop(heap)
        return None

    def available_entries(self, key: RuntimeKey) -> Tuple[PoolEntry, ...]:
        """Idle entries of one key, oldest first (for scale-down)."""
        return tuple(
            sorted(
                (
                    e
                    for e in self._entries.get(key, {}).values()
                    if e.available
                ),
                key=lambda e: (e.added_at, e.container.container_id),
            )
        )

    def entries(self) -> Tuple[PoolEntry, ...]:
        """Snapshot of every pooled entry (busy and available).

        Returned as a tuple so callers can remove entries while
        iterating — HotC's dead-container drain does exactly that.
        """
        return tuple(self._by_container.values())

    def check_consistency(self) -> None:
        """Recount everything from the entry tables and compare.

        Raises ``AssertionError`` on any mismatch between the
        incrementally maintained counters and ground truth — the chaos
        tests call this to prove fault paths never corrupt bookkeeping.
        """
        recount: Dict[RuntimeKey, List[int]] = {}
        for key, siblings in self._entries.items():
            counts = recount.setdefault(key, [0, 0])
            for entry in siblings.values():
                assert entry.in_pool, f"removed entry still indexed: {entry}"
                assert (
                    self._by_container.get(entry.container.container_id)
                    is entry
                ), f"entry missing from by-container index: {entry}"
                counts[1] += 1
                if entry.available:
                    counts[0] += 1
        assert recount == self._counts, (
            f"per-key counters drifted: cached={self._counts} "
            f"actual={recount}"
        )
        total_avail = sum(c[0] for c in recount.values())
        assert total_avail == self._total_available, (
            f"total_available drifted: cached={self._total_available} "
            f"actual={total_avail}"
        )
        total = sum(c[1] for c in recount.values())
        assert total == len(self._by_container), (
            f"by-container index drifted: indexed={len(self._by_container)} "
            f"actual={total}"
        )
        # Quarantine-set disjointness from every availability index.
        for container_id, entry in self._quarantined.items():
            assert container_id not in self._by_container, (
                f"quarantined container {container_id} still pooled"
            )
            assert not entry.in_pool, (
                f"quarantined entry still flagged in-pool: {entry}"
            )
        for key, avail in self._avail_lists.items():
            for item in avail:
                entry = item[1]
                if entry.available and entry.in_pool:
                    assert (
                        entry.container.container_id not in self._quarantined
                    ), (
                        f"quarantined container "
                        f"{entry.container.container_id} still in the "
                        f"avail list of {key}"
                    )
        for item in self._evict_heap:
            entry = item[-1]
            if entry.in_pool and entry.available and entry.stamp == item[-2]:
                assert (
                    entry.container.container_id not in self._quarantined
                ), (
                    f"quarantined container {entry.container.container_id} "
                    "still live on the eviction heap"
                )

    # -- heap maintenance ---------------------------------------------------
    def _make_available(self, entry: PoolEntry) -> None:
        # The avail heap only goes stale via remove(), so compaction is
        # checked there.  Eviction bookkeeping is deferred: release only
        # records an (entry, stamp) pair; building the strategy sort
        # tuple (primary-key lambda, container-id string tie-breaker)
        # and the O(log n) heap push happen lazily in
        # eviction_candidate, which is called orders of magnitude less
        # often than release on the request hot path.
        entry.available = True
        entry.counts[0] += 1
        self._total_available += 1
        insort(entry.avail_list, entry.avail_item)
        if not entry.evict_pending:
            entry.evict_pending = True
            self._evict_pending.append(entry)

    def _flush_pending_evictions(self) -> None:
        # The heap copy is built with the entry's flush-time stamp and
        # sort fields; those are frozen while the entry stays available,
        # so the copy is ordered exactly as an eager release-time push
        # would have been.  Entries acquired or removed since their
        # release are simply skipped — their next release re-queues them.
        pending = self._evict_pending
        if not pending:
            return
        heap = self._evict_heap
        push = heappush
        for entry in pending:
            entry.evict_pending = False
            if entry.in_pool and entry.available:
                push(heap, self._evict_item(entry))
        pending.clear()
        self._maybe_compact_evictions()

    def _evict_item(self, entry: PoolEntry) -> Tuple:
        # seq precedes the entry so the tuple never compares entries.
        return (
            self._evict_primary(entry),
            entry.container.container_id,
            entry.seq,
            entry.stamp,
            entry,
        )

    @staticmethod
    def _live_copies(heap: List[Tuple]) -> List[Tuple]:
        return [
            item
            for item in heap
            if item[-1].in_pool
            and item[-1].available
            and item[-1].stamp == item[-2]
        ]

    def _maybe_compact_avail(self, key: RuntimeKey) -> None:
        avail = self._avail_lists.get(key)
        if avail and len(avail) > _COMPACT_MIN and len(avail) > 2 * self._counts[key][0]:
            # In place, not rebound (every PoolEntry of this key holds a
            # direct reference to this list); filtering preserves the
            # descending-seq sort order.
            avail[:] = [
                item for item in avail if item[1].available and item[1].in_pool
            ]

    def _maybe_compact_evictions(self) -> None:
        heap = self._evict_heap
        if len(heap) > _COMPACT_MIN and len(heap) > 2 * self._total_available:
            live = self._live_copies(heap)
            heapq.heapify(live)
            self._evict_heap = live
