"""The live container runtime pool (Section IV-B, Fig 7).

"HotC maintains a key value store to track the available containers.
The key is the formatted parameter configurations for each container
and the value is a list with container ID and state of the container."

States (Fig 7): Not-Existing (−1), Existing-Not-Available (0),
Existing-Available (1).  The pool exposes the paper's tri-state view
per key via :meth:`state_of` while internally tracking per-container
entries.  Limits: at most ``max_containers`` live containers and a host
memory threshold (80% in the paper); under pressure the oldest live
container is evicted (``oldest`` strategy; ``lru`` and ``largest`` are
provided for the eviction ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.containers.container import Container
from repro.core.keys import RuntimeKey

__all__ = [
    "ContainerRuntimePool",
    "PoolEntry",
    "PoolLimits",
    "PoolStats",
    "NOT_EXISTING",
    "NOT_AVAILABLE",
    "AVAILABLE",
]

#: The paper's tri-state values (Fig 7).
NOT_EXISTING = -1
NOT_AVAILABLE = 0
AVAILABLE = 1

_EVICTION_STRATEGIES = ("oldest", "lru", "largest")


@dataclass
class PoolEntry:
    """One pooled container and its bookkeeping."""

    container: Container
    key: RuntimeKey
    available: bool
    added_at: float
    last_used_at: float


@dataclass(frozen=True)
class PoolLimits:
    """Pool-wide resource guards (paper defaults)."""

    max_containers: int = 500
    memory_threshold: float = 0.8

    def __post_init__(self) -> None:
        if self.max_containers < 0:
            raise ValueError("max_containers must be >= 0")
        if not 0.0 < self.memory_threshold <= 1.0:
            raise ValueError("memory_threshold must be in (0, 1]")


@dataclass
class PoolStats:
    """Reuse and eviction counters."""

    hits: int = 0
    misses: int = 0
    registered: int = 0
    retired: int = 0
    evictions_capacity: int = 0
    evictions_pressure: int = 0

    @property
    def lookups(self) -> int:
        """Total acquire attempts."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the pool."""
        return self.hits / self.lookups if self.lookups else 0.0


class ContainerRuntimePool:
    """Key-value store of live container runtimes."""

    def __init__(
        self,
        limits: PoolLimits = PoolLimits(),
        eviction: str = "oldest",
    ) -> None:
        if eviction not in _EVICTION_STRATEGIES:
            raise ValueError(
                f"eviction must be one of {_EVICTION_STRATEGIES}, got {eviction!r}"
            )
        self.limits = limits
        self.eviction = eviction
        self.stats = PoolStats()
        self._entries: Dict[RuntimeKey, List[PoolEntry]] = {}
        self._by_container: Dict[str, PoolEntry] = {}

    # -- the paper's views --------------------------------------------------
    def state_of(self, key: RuntimeKey) -> int:
        """Fig 7 tri-state for ``key``: −1 / 0 / 1."""
        entries = self._entries.get(key)
        if not entries:
            return NOT_EXISTING
        if any(entry.available for entry in entries):
            return AVAILABLE
        return NOT_AVAILABLE

    def num_available(self, key: RuntimeKey) -> int:
        """``num_avail[key]`` of Algorithms 1 and 2."""
        return sum(1 for e in self._entries.get(key, ()) if e.available)

    def num_total(self, key: RuntimeKey) -> int:
        """All pooled containers of this type (busy + available)."""
        return len(self._entries.get(key, ()))

    # -- membership ---------------------------------------------------------
    def acquire(self, key: RuntimeKey, now: float) -> Optional[Container]:
        """Take the first available container of type ``key`` (Algorithm 1).

        Returns ``None`` on miss — the caller then cold-boots.
        """
        for entry in self._entries.get(key, ()):
            if entry.available:
                entry.available = False
                entry.last_used_at = now
                self.stats.hits += 1
                return entry.container
        self.stats.misses += 1
        return None

    def register(
        self,
        container: Container,
        key: RuntimeKey,
        now: float,
        available: bool = False,
    ) -> PoolEntry:
        """Add a (typically just-booted) container under ``key``."""
        if container.container_id in self._by_container:
            raise ValueError(
                f"container {container.container_id} already pooled"
            )
        entry = PoolEntry(
            container=container,
            key=key,
            available=available,
            added_at=now,
            last_used_at=now,
        )
        self._entries.setdefault(key, []).append(entry)
        self._by_container[container.container_id] = entry
        self.stats.registered += 1
        return entry

    def release(self, container: Container, now: float) -> None:
        """Mark a busy container available again (Algorithm 2's ++)."""
        entry = self._entry_of(container)
        if entry.available:
            raise ValueError(
                f"container {container.container_id} is already available"
            )
        entry.available = True
        entry.last_used_at = now

    def remove(self, container: Container) -> PoolEntry:
        """Forget a container (being stopped/evicted)."""
        entry = self._entry_of(container)
        del self._by_container[container.container_id]
        siblings = self._entries[entry.key]
        siblings.remove(entry)
        if not siblings:
            del self._entries[entry.key]
        self.stats.retired += 1
        return entry

    def contains(self, container: Container) -> bool:
        """Whether the container is pooled."""
        return container.container_id in self._by_container

    def _entry_of(self, container: Container) -> PoolEntry:
        try:
            return self._by_container[container.container_id]
        except KeyError:
            raise KeyError(
                f"container {container.container_id} is not in the pool"
            ) from None

    # -- aggregates -----------------------------------------------------------
    @property
    def total_live(self) -> int:
        """All pooled containers."""
        return len(self._by_container)

    @property
    def total_available(self) -> int:
        """All idle pooled containers."""
        return sum(1 for e in self._by_container.values() if e.available)

    def keys(self) -> Tuple[RuntimeKey, ...]:
        """Keys with at least one pooled container."""
        return tuple(self._entries)

    def snapshot(self) -> Dict[RuntimeKey, Tuple[int, int]]:
        """Per-key ``(available, total)`` counts — predictor input."""
        return {
            key: (
                sum(1 for e in entries if e.available),
                len(entries),
            )
            for key, entries in self._entries.items()
        }

    # -- eviction ----------------------------------------------------------
    def over_capacity(self) -> bool:
        """Whether the container-count cap is exceeded."""
        return self.total_live > self.limits.max_containers

    def eviction_candidate(self) -> Optional[PoolEntry]:
        """Pick the next victim among *available* entries.

        ``oldest``: smallest ``added_at`` (the paper's rule: "the oldest
        live container is forcibly terminated").
        ``lru``: smallest ``last_used_at``.
        ``largest``: biggest configured memory limit.
        Busy containers are never evicted.  Ties break on container id
        so eviction is deterministic.
        """
        candidates = [e for e in self._by_container.values() if e.available]
        if not candidates:
            return None
        if self.eviction == "oldest":
            sort_key = lambda e: (e.added_at, e.container.container_id)
        elif self.eviction == "lru":
            sort_key = lambda e: (e.last_used_at, e.container.container_id)
        else:  # largest
            sort_key = lambda e: (
                -e.container.config.mem_mb,
                e.container.container_id,
            )
        return min(candidates, key=sort_key)

    def available_entries(self, key: RuntimeKey) -> Tuple[PoolEntry, ...]:
        """Idle entries of one key, oldest first (for scale-down)."""
        return tuple(
            sorted(
                (e for e in self._entries.get(key, ()) if e.available),
                key=lambda e: (e.added_at, e.container.container_id),
            )
        )
