"""Key-similarity model for inter-key container repurposing.

Pagurus (PAPERS.md) shows an idle container warmed for one function can
be re-specialized ("zygote" sharing) into a runtime for *another*
function far cheaper than a cold boot, because the expensive parts —
the container namespaces and the base-image layers — are already in
place.  The Fig 2 Dockerfile survey quantifies how often that applies:
a handful of base images dominate the corpus, so most key pairs share
a long layer prefix.

This module scores a (donor, target) configuration pair and maps the
score to a deterministic re-spec cost expressed as a fraction of the
target's cold boot.  Everything here is pure arithmetic over frozen
configs — no RNG, no sim events — so the lookup can never perturb a
run that ends up taking the cold-boot path anyway.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.containers.container import ContainerConfig
from repro.containers.image import shared_layer_prefix

__all__ = ["KeySimilarityModel"]


class KeySimilarityModel:
    """Scores config pairs and prices the re-spec of a donor container.

    The score is a weighted blend of three affinities, each in [0, 1]:

    * **image** — 1.0 for the same reference; otherwise the compressed
      fraction of the target image already present in the donor's
      shared layer prefix (0.0 when either image is unknown to the
      registry, which vetoes cross-image repurposing rather than
      guessing).
    * **network** — 1.0 when the network modes match (the namespace is
      reusable as-is), else 0.0 (tearing down and re-plumbing the
      namespace erases most of the savings).
    * **memory** — ``1 - |Δmem| / max(mem)``: resizing a cgroup is
      cheap, but a large delta signals a very different workload class.

    ``respec_fraction`` maps the score linearly onto
    ``[min_fraction, max_fraction]`` of the cold boot: a perfect donor
    still pays ``min_fraction`` (config delta + code injection + app
    re-init), a barely-acceptable one approaches ``max_fraction``.
    """

    def __init__(
        self,
        registry=None,
        image_weight: float = 0.6,
        network_weight: float = 0.25,
        memory_weight: float = 0.15,
        min_fraction: float = 0.08,
        max_fraction: float = 0.85,
    ) -> None:
        total = image_weight + network_weight + memory_weight
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        if not 0 < min_fraction <= max_fraction <= 1:
            raise ValueError("need 0 < min_fraction <= max_fraction <= 1")
        self.registry = registry
        self.image_weight = image_weight / total
        self.network_weight = network_weight / total
        self.memory_weight = memory_weight / total
        self.min_fraction = min_fraction
        self.max_fraction = max_fraction
        self._image_affinity: Dict[Tuple[str, str], float] = {}

    # -- component affinities ---------------------------------------------
    def image_affinity(self, donor_image: str, target_image: str) -> float:
        """Fraction of the target image the donor already holds."""
        if donor_image == target_image:
            return 1.0
        cache_key = (donor_image, target_image)
        cached = self._image_affinity.get(cache_key)
        if cached is not None:
            return cached
        affinity = self._compute_image_affinity(donor_image, target_image)
        self._image_affinity[cache_key] = affinity
        return affinity

    def _compute_image_affinity(self, donor_image: str, target_image: str) -> float:
        if self.registry is None:
            return 0.0
        try:
            donor = self.registry.resolve(donor_image)
            target = self.registry.resolve(target_image)
        except Exception:
            return 0.0
        if target.compressed_mb <= 0:
            return 0.0
        shared = shared_layer_prefix(donor, target)
        shared_mb = sum(layer.compressed_mb for layer in shared)
        return min(1.0, shared_mb / target.compressed_mb)

    @staticmethod
    def memory_affinity(donor_mb: float, target_mb: float) -> float:
        """``1 - |Δmem| / max(mem)``, clamped to [0, 1]."""
        biggest = max(donor_mb, target_mb)
        if biggest <= 0:
            return 1.0
        return max(0.0, 1.0 - abs(donor_mb - target_mb) / biggest)

    # -- the model ---------------------------------------------------------
    def score(self, donor: ContainerConfig, target: ContainerConfig) -> float:
        """Similarity of a donor config to the requested one, in [0, 1]."""
        return (
            self.image_weight * self.image_affinity(donor.image, target.image)
            + self.network_weight
            * (1.0 if donor.network.mode == target.network.mode else 0.0)
            + self.memory_weight
            * self.memory_affinity(donor.mem_mb, target.mem_mb)
        )

    def respec_fraction(self, score: float) -> float:
        """Cold-boot fraction charged to re-spec a donor of ``score``."""
        if not 0 <= score <= 1:
            raise ValueError("score must be in [0, 1]")
        span = self.max_fraction - self.min_fraction
        return self.min_fraction + span * (1.0 - score)

    def respec_cost_ms(
        self, score: float, cold_boot_ms: float
    ) -> Optional[float]:
        """Deterministic re-spec cost (ms), or ``None`` if pointless.

        Returns ``None`` when the priced re-spec would not beat the
        cold boot it is meant to avoid.
        """
        cost = self.respec_fraction(score) * cold_boot_ms
        if cost >= cold_boot_ms:
            return None
        return cost
