"""Used-container cleanup (Algorithm 2, Section IV-B).

"The cleanup of the used container includes two steps: First, it
deletes all files and directories in the old volumes.  Second, HotC
mounts new volumes to the containers for future use."

The :class:`CleanupWorker` performs that sequence off the request's
critical path and returns the container to the pool (``num_avail++``).
"""

from __future__ import annotations

from typing import Generator

from repro.containers.container import Container
from repro.containers.engine import ContainerEngine
from repro.core.pool import ContainerRuntimePool
from repro.obs.events import EventKind

__all__ = ["CleanupWorker"]


class CleanupWorker:
    """Cleans used containers and recycles them into the pool."""

    def __init__(
        self,
        sim,
        engine: ContainerEngine,
        pool: ContainerRuntimePool,
    ) -> None:
        self.sim = sim
        self.engine = engine
        self.pool = pool
        self.cleaned = 0
        #: Optional observatory; ``None`` keeps the hooks inert.
        self.obs = None

    def clean_and_recycle(self, container: Container) -> Generator:
        """Process: Algorithm 2 — wipe volume, remount, mark available.

        The clean yields sim time, so a control-plane crash can wipe the
        pool (or a recovery sweep re-register the container) mid-clean:
        a container no longer pooled when the clean finishes is retired
        instead of recycled, and one already re-registered as available
        is left alone.  ``container.recycling`` marks the window so the
        recovery sweep neither adopts it as idle nor counts it as
        request-owned.
        """
        started = self.sim.now
        container.recycling = True
        try:
            yield from self.engine.clean_container(container)
        finally:
            container.recycling = False
        if not self.pool.contains(container):
            # The control plane crashed mid-clean and the recovery sweep
            # has not (re-)adopted this container: retire it.
            yield from self.retire(container)
            return container
        if not self.pool.is_available(container):
            self.pool.release(container, now=self.sim.now)
        self.cleaned += 1
        if self.obs is not None:
            self.obs.emit(
                EventKind.CLEANUP,
                t=self.sim.now,
                host=self.engine.name,
                key=container.config.image,
                container=container.container_id,
                duration_ms=self.sim.now - started,
            )
            self.obs.counter(
                "cleanups_total",
                help="Algorithm 2 runs (volume wipe + recycle)",
                host=self.engine.name,
            ).inc()
        return container

    def retire(self, container: Container) -> Generator:
        """Process: drop a container from the pool and destroy it.

        Used for evictions and scale-downs; the volume is deleted with
        the container ("to avoid resource waste and zombie files").
        Tolerates containers that already died (crash injection): those
        only need to be forgotten.
        """
        from repro.containers.container import ContainerState

        if self.pool.contains(container):
            self.pool.remove(container)
        if container.is_live:
            yield from self.engine.stop_container(container)
            yield from self.engine.remove_container(container)
        elif container.state is ContainerState.STOPPED:
            yield from self.engine.remove_container(container)
        return container
