"""A replicated key-value store for pool metadata.

Implements the paper's last future-work direction (Section VII): "we
also plan to extend HotC into a more reliable architecture, e.g.,
adopting a distributed key-value store, to handle complex workloads."

The store simulates a primary/replica design:

* **writes** go to the primary and replicate synchronously to a write
  quorum (majority); each hop costs a sampled network RTT;
* **reads** are served by the nearest healthy replica;
* replicas can be **failed** and **recovered**; losing the primary
  promotes the lowest-indexed healthy replica; writes are rejected when
  no quorum of healthy replicas exists.

:class:`~repro.core.hotc.HotC` can journal pool transitions here (see
``HotC.attach_metadata_store``), which puts the metadata round trip on
the acquire path — the durability-versus-latency trade-off the paper
hints at, measurable in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, Tuple

import numpy as np

__all__ = ["ReplicatedKeyValueStore", "StoreUnavailable"]


class StoreUnavailable(RuntimeError):
    """Raised when no write quorum (or no replica at all) is healthy."""


@dataclass
class _Replica:
    """One replica's state."""

    index: int
    data: Dict[Any, Any] = field(default_factory=dict)
    healthy: bool = True
    applied_writes: int = 0


class ReplicatedKeyValueStore:
    """Primary/replica KV store with quorum writes (simulated).

    Parameters
    ----------
    sim:
        Simulation kernel (latencies are real simulated time).
    n_replicas:
        Total replicas including the primary; must be >= 1.
    rtt_ms:
        Mean network round trip between nodes.
    rng:
        Jitter stream; ``None`` disables latency jitter.
    """

    def __init__(
        self,
        sim,
        n_replicas: int = 3,
        rtt_ms: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if rtt_ms < 0:
            raise ValueError("rtt_ms must be >= 0")
        self.sim = sim
        self.rtt_ms = rtt_ms
        self.rng = rng
        self._replicas = [_Replica(index=i) for i in range(n_replicas)]
        self._primary = 0
        self.writes = 0
        self.reads = 0
        self.failovers = 0

    # -- topology ---------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        """Total replicas (healthy or not)."""
        return len(self._replicas)

    @property
    def primary_index(self) -> int:
        """Index of the current primary."""
        return self._primary

    def healthy_replicas(self) -> Tuple[int, ...]:
        """Indices of healthy replicas."""
        return tuple(r.index for r in self._replicas if r.healthy)

    def quorum_size(self) -> int:
        """Writes must reach a majority of all replicas."""
        return len(self._replicas) // 2 + 1

    @property
    def available(self) -> bool:
        """Whether a write quorum of healthy replicas exists."""
        return len(self.healthy_replicas()) >= self.quorum_size()

    def fail_replica(self, index: int) -> None:
        """Mark a replica failed; promotes a new primary if needed."""
        replica = self._replicas[index]
        if not replica.healthy:
            return
        replica.healthy = False
        if index == self._primary:
            healthy = self.healthy_replicas()
            if healthy:
                self._primary = healthy[0]
                self.failovers += 1

    def recover_replica(self, index: int) -> None:
        """Bring a replica back; it catches up from the primary."""
        replica = self._replicas[index]
        if replica.healthy:
            return
        replica.healthy = True
        primary = self._replicas[self._primary]
        replica.data = dict(primary.data)
        replica.applied_writes = primary.applied_writes

    # -- latency ------------------------------------------------------------
    def _hop(self) -> float:
        jitter = 1.0 if self.rng is None else float(self.rng.lognormal(0.0, 0.1))
        return self.rtt_ms * jitter

    # -- operations ---------------------------------------------------------
    def put(self, key: Any, value: Any) -> Generator:
        """Process: quorum write; returns the number of replicas written."""
        healthy = [r for r in self._replicas if r.healthy]
        if len(healthy) < self.quorum_size():
            raise StoreUnavailable(
                f"no write quorum: {len(healthy)}/{self.n_replicas} healthy"
            )
        # Client -> primary.
        yield self.sim.timeout(self._hop())
        # Primary replicates in parallel; quorum latency is the slowest
        # of the fastest (quorum-1) follower acks.
        followers = [r for r in healthy if r.index != self._primary]
        needed = self.quorum_size() - 1
        if needed > 0 and followers:
            hops = sorted(self._hop() for _ in followers)
            yield self.sim.timeout(hops[min(needed, len(hops)) - 1])
        for replica in healthy:
            replica.data[key] = value
            replica.applied_writes += 1
        self.writes += 1
        return len(healthy)

    def get(self, key: Any, default: Any = None) -> Generator:
        """Process: read from the nearest healthy replica."""
        healthy = self.healthy_replicas()
        if not healthy:
            raise StoreUnavailable("no healthy replica")
        yield self.sim.timeout(self._hop())
        self.reads += 1
        replica = self._replicas[healthy[0]]
        return replica.data.get(key, default)

    def delete(self, key: Any) -> Generator:
        """Process: quorum delete (write of a tombstone)."""
        result = yield from self.put(key, None)
        for replica in self._replicas:
            if replica.healthy:
                replica.data.pop(key, None)
        return result

    # -- consistency check --------------------------------------------------
    def replicas_consistent(self) -> bool:
        """Whether all healthy replicas hold identical data."""
        healthy = [r for r in self._replicas if r.healthy]
        if not healthy:
            return True
        reference = healthy[0].data
        return all(r.data == reference for r in healthy[1:])
