"""Per-container health: aging, contamination, and recycle verdicts.

The host health plane (``repro.health.lifecycle``) decides whether a
*machine* should receive work; this module makes the same decision one
level down, for each pooled container runtime.  Long-lived reuse — the
paper's whole mechanism — is exactly where containers rot: leaked RSS
per reuse, dirty interpreter state after an exec, compounding slowdown,
crash loops.  Each container therefore carries a lifecycle FSM::

    FRESH -> WARM -> SUSPECT -> QUARANTINED -> RECYCLING

* **FRESH** — just booted, not yet proven (first execs).
* **WARM** — serving normally; the steady state.
* **SUSPECT** — the EWMA latency residual against the key's baseline
  drifted past the threshold: the container stops serving and stops
  donating (``Container.tainted``) but stays pooled until the recycle
  loop drains it.
* **QUARANTINED** — hard evidence (exec failure tripping the
  per-container breaker, or leaked RSS past the hard limit): the
  container is pulled from every availability index
  (``ContainerRuntimePool.quarantine``) and never serves again
  (``Container.condemned``).
* **RECYCLING** — being destroyed; a paired prewarm replaces it.

The per-container crash-loop breaker is a
:class:`~repro.core.breaker.CircuitBreaker` *distinct from* HotC's
per-key breakers: the per-key breaker protects the boot path of a
runtime type, this one condemns an individual contaminated container.

Everything here is pure bookkeeping — no RNG, no simulator events — so
an attached-but-unused plane cannot perturb a run.  The plane is only
constructed when ``HotCConfig.container_health`` is set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.containers.container import Container
from repro.core.breaker import CircuitBreaker
from repro.obs.events import EventKind

__all__ = [
    "ContainerCondition",
    "ContainerHealth",
    "ContainerHealthConfig",
    "ContainerHealthPlane",
]


_CONDITION_CODES = {
    "FRESH": 0,
    "WARM": 1,
    "SUSPECT": 2,
    "QUARANTINED": 3,
    "RECYCLING": 4,
}


class ContainerCondition(enum.Enum):
    """Lifecycle states of one pooled container runtime."""

    FRESH = "fresh"
    WARM = "warm"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    RECYCLING = "recycling"

    @property
    def code(self) -> int:
        """Stable numeric code (gauge value; FSM order)."""
        return _CONDITION_CODES[self.name]

    @property
    def serving(self) -> bool:
        """Whether the container may serve requests in this state."""
        return self in (ContainerCondition.FRESH, ContainerCondition.WARM)


@dataclass(frozen=True)
class ContainerHealthConfig:
    """Tunables of the container health plane (HotC opt-in).

    The defaults are deliberately conservative: bounded-reuse caps that
    a day-scale run rarely hits, a residual threshold well above normal
    jitter, and a single exec failure condemning a container (after a
    failure the watchdog has already discarded it, so a second chance
    would mean serving another request on known-bad state).
    """

    #: Recycle a container after this many execs (``None`` disables).
    max_reuses: Optional[int] = 200
    #: Recycle a container older than this (``None`` disables).
    max_age_ms: Optional[float] = 3_600_000.0
    #: Successful execs before FRESH graduates to WARM.
    warm_after: int = 1
    #: EWMA weight of the newest latency residual sample.
    ewma_alpha: float = 0.3
    #: EWMA residual (observed / key baseline) above which a container
    #: turns SUSPECT.
    residual_threshold: float = 2.0
    #: Execs a container must have served before residual verdicts
    #: engage (lets the key baseline stabilise).
    suspect_after: int = 3
    #: Detected per-reuse RSS growth (MB/exec) that marks a leak.
    leak_slope_mb: float = 4.0
    #: Absolute leaked RSS (MB) that quarantines immediately.
    rss_limit_mb: float = 256.0
    #: Exec failures before the per-container crash-loop breaker opens
    #: and the container is quarantined.
    breaker_threshold: int = 1
    #: Cooldown of the per-container breaker (quarantine is terminal,
    #: so this only shapes the breaker's internal bookkeeping).
    breaker_cooldown_ms: float = 60_000.0
    #: Token-bucket recycle rate limit: sustained recycles per second...
    recycle_rate_per_s: float = 2.0
    #: ...and the burst the bucket can accumulate.
    recycle_burst: int = 4
    #: Cost (ms) of sanitizing a poisoned donor during a repurpose
    #: re-spec (paid instead of carrying the poison to the new key).
    sanitize_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.max_reuses is not None and self.max_reuses < 1:
            raise ValueError("max_reuses must be >= 1 (or None)")
        if self.max_age_ms is not None and self.max_age_ms <= 0:
            raise ValueError("max_age_ms must be > 0 (or None)")
        if self.warm_after < 1:
            raise ValueError("warm_after must be >= 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.residual_threshold <= 1.0:
            raise ValueError("residual_threshold must be > 1")
        if self.suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        if self.leak_slope_mb <= 0:
            raise ValueError("leak_slope_mb must be > 0")
        if self.rss_limit_mb <= 0:
            raise ValueError("rss_limit_mb must be > 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_ms <= 0:
            raise ValueError("breaker_cooldown_ms must be > 0")
        if self.recycle_rate_per_s <= 0:
            raise ValueError("recycle_rate_per_s must be > 0")
        if self.recycle_burst < 1:
            raise ValueError("recycle_burst must be >= 1")
        if self.sanitize_ms < 0:
            raise ValueError("sanitize_ms must be >= 0")


class ContainerHealth:
    """Health record of one container: FSM state plus evidence."""

    def __init__(
        self, container: Container, key, config: ContainerHealthConfig
    ) -> None:
        self.container = container
        self.key = key
        self.state = ContainerCondition.FRESH
        #: EWMA of (observed exec latency / key baseline); 1.0 = on
        #: baseline.
        self.residual_ewma = 1.0
        #: Per-container crash-loop breaker (distinct from the per-key
        #: boot breakers).
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            cooldown_ms=config.breaker_cooldown_ms,
        )
        #: ``(now, old, new)`` transition log.
        self.transitions: List[Tuple[float, ContainerCondition, ContainerCondition]] = []

    def transition_to(
        self, state: ContainerCondition, now: float
    ) -> ContainerCondition:
        """Move to ``state``; returns the state left."""
        old = self.state
        if state is old:
            return old
        self.state = state
        self.transitions.append((now, old, state))
        return old


class ContainerHealthPlane:
    """Per-host manager of container health records.

    Fed by HotC at release (success evidence) and discard (failure
    evidence) time; hands back recycle verdicts.  The plane mutates
    only its own records and the containers' ``tainted``/``condemned``
    flags — pool index surgery and the token-bucket recycle loop stay
    in HotC, which owns those structures.
    """

    def __init__(
        self,
        config: ContainerHealthConfig,
        obs=None,
        host: str = "",
    ) -> None:
        self.config = config
        self.obs = obs
        self.host = host
        self._records: Dict[str, ContainerHealth] = {}
        #: Per-key EWMA baseline of successful exec latency (ms).
        self._baselines: Dict[object, float] = {}
        self.suspects = 0
        self.quarantines = 0
        self.recycles = 0

    # -- record management ---------------------------------------------------
    def track(self, container: Container, key) -> ContainerHealth:
        """The container's record, created lazily on first evidence."""
        record = self._records.get(container.container_id)
        if record is None or record.key != key:
            record = ContainerHealth(container, key, self.config)
            self._records[container.container_id] = record
        return record

    def record_of(self, container: Container) -> Optional[ContainerHealth]:
        """The container's record, if any evidence was ever recorded."""
        return self._records.get(container.container_id)

    def forget(self, container: Container) -> None:
        """Drop the record of a destroyed container."""
        self._records.pop(container.container_id, None)

    def baseline(self, key) -> Optional[float]:
        """The key's current exec-latency baseline (ms), if known."""
        return self._baselines.get(key)

    # -- evidence ------------------------------------------------------------
    def observe_success(
        self, container: Container, key, now: float
    ) -> ContainerHealth:
        """Fold a successful exec into the container's score.

        Reads ``container.last_exec_ms`` (stamped by the engine) and
        ``container.rss_mb``; updates the key baseline, the residual
        EWMA, and the FSM.
        """
        config = self.config
        record = self.track(container, key)
        record.breaker.record_success()
        observed = container.last_exec_ms
        baseline = self._baselines.get(key)
        if baseline is None:
            self._baselines[key] = observed
        else:
            if baseline > 0.0:
                # Residual against the *prior* expectation, then fold
                # the new sample into the baseline.
                residual = observed / baseline
                record.residual_ewma = (
                    config.ewma_alpha * residual
                    + (1.0 - config.ewma_alpha) * record.residual_ewma
                )
            self._baselines[key] = (
                config.ewma_alpha * observed
                + (1.0 - config.ewma_alpha) * baseline
            )
        if (
            record.state is ContainerCondition.FRESH
            and container.exec_count >= config.warm_after
        ):
            record.transition_to(ContainerCondition.WARM, now)
        if container.rss_mb >= config.rss_limit_mb:
            self.condemn(container, record, now, reason="rss_limit")
        elif (
            record.state.serving
            and container.exec_count >= config.suspect_after
            and record.residual_ewma > config.residual_threshold
        ):
            self._demote(container, record, now, reason="residual")
        return record

    def observe_failure(
        self, container: Container, key, now: float
    ) -> ContainerHealth:
        """Fold an exec failure in; opens the per-container breaker."""
        record = self.track(container, key)
        record.breaker.record_failure(now)
        if record.breaker.is_open(now) or not record.state.serving:
            self.condemn(container, record, now, reason="breaker")
        return record

    # -- verdicts ------------------------------------------------------------
    def recycle_reason(
        self, container: Container, now: float
    ) -> Optional[str]:
        """Why the container should be recycled now, or ``None``.

        Checked by HotC at release time and each control tick:
        quarantine and suspicion verdicts first, then the proactive
        bounded-reuse caps and the leak-slope detector.
        """
        config = self.config
        record = self._records.get(container.container_id)
        if container.condemned or (
            record is not None
            and record.state is ContainerCondition.QUARANTINED
        ):
            # ``condemned`` is carried on the container itself, so the
            # verdict survives a control-plane crash that wiped records.
            return "quarantined"
        if container.tainted or (
            record is not None and record.state is ContainerCondition.SUSPECT
        ):
            return "suspect"
        if (
            config.max_reuses is not None
            and container.exec_count >= config.max_reuses
        ):
            return "max_reuses"
        if (
            config.max_age_ms is not None
            and now - container.created_at >= config.max_age_ms
        ):
            return "max_age"
        if container.exec_count > 0:
            # RSS trajectory: observed growth per completed exec.
            slope = container.rss_mb / container.exec_count
            if slope >= config.leak_slope_mb:
                return "leak"
        return None

    def note_respec(self, container: Container, key, now: float) -> float:
        """Post-repurpose hygiene: returns the sanitize cost (ms) to pay.

        A re-specialised donor starts a fresh record under its new key;
        a poisoned donor has its dirty state scrubbed for
        ``sanitize_ms`` instead of carrying the contamination to the
        new key.
        """
        self._records.pop(container.container_id, None)
        self.track(container, key)
        if container.poisoned:
            container.poisoned = False
            return self.config.sanitize_ms
        return 0.0

    # -- transitions ---------------------------------------------------------
    def _demote(
        self,
        container: Container,
        record: ContainerHealth,
        now: float,
        reason: str,
    ) -> None:
        if record.state is ContainerCondition.SUSPECT:
            return
        record.transition_to(ContainerCondition.SUSPECT, now)
        container.tainted = True
        self.suspects += 1
        self._emit(
            EventKind.CONTAINER_SUSPECT, container, record, now, reason
        )

    def condemn(
        self,
        container: Container,
        record: Optional[ContainerHealth],
        now: float,
        reason: str,
    ) -> None:
        """Mark the container QUARANTINED: it never serves again."""
        if record is None:
            record = self.track(container, container.config.image)
        if record.state is ContainerCondition.QUARANTINED:
            return
        record.transition_to(ContainerCondition.QUARANTINED, now)
        container.tainted = True
        container.condemned = True
        self.quarantines += 1
        self._emit(
            EventKind.CONTAINER_QUARANTINED, container, record, now, reason
        )

    def note_recycling(
        self, container: Container, now: float, reason: str
    ) -> None:
        """Record the start of the container's recycle (terminal)."""
        record = self._records.get(container.container_id)
        if record is not None:
            record.transition_to(ContainerCondition.RECYCLING, now)
        self.recycles += 1
        self._emit(EventKind.CONTAINER_RECYCLED, container, record, now, reason)

    def _emit(
        self,
        kind: EventKind,
        container: Container,
        record: Optional[ContainerHealth],
        now: float,
        reason: str,
    ) -> None:
        if self.obs is None:
            return
        state = record.state if record is not None else ContainerCondition.RECYCLING
        self.obs.emit(
            kind,
            t=now,
            host=self.host,
            key=str(record.key) if record is not None else "",
            container=container.container_id,
            state=state.value,
            reason=reason,
        )
        self.obs.counter(
            "container_lifecycle_transitions_total",
            help="Container health-plane lifecycle transitions",
            host=self.host,
            to=state.value,
        ).inc()
