"""Host lifecycle states and per-host health bookkeeping.

The state machine (DESIGN.md §12)::

            phi >= suspect            phi >= quarantine
    HEALTHY ---------------> SUSPECT ------------------> QUARANTINED
       ^                        |  ^                        |     |
       |   clean evals          |  |  relapse               |     | confirmed dead /
       +------------------------+  +----------+             |     | phi >= drain
       |                                      |   heartbeats|     v
       |        probation heartbeats          |   resume    |  DRAINING
       +----------------------- PROBATION <---+-------------+     |
                                     ^        heartbeats resume   |
                                     +----------------------------+

* **SUSPECT** and **QUARANTINED** hosts stop receiving new work but
  keep their in-flight requests (gray failures are often transient;
  killing work on a slow host converts a latency problem into errors).
* **DRAINING** additionally drops the host's pool metadata and absorbs
  its in-flight prewarm boots — the host is being treated as lost.
* **PROBATION** reintroduces a recovered host gradually: its routing
  weight ramps from near zero to 1.0 over ``probation_heartbeats``
  on-time heartbeats instead of rejoining abruptly at full weight.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.health.detector import PhiAccrualDetector

__all__ = ["HealthConfig", "HostHealth", "HostState"]


class HostState(enum.Enum):
    """Lifecycle states; ``code`` feeds the per-host gauge."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    DRAINING = "draining"
    PROBATION = "probation"

    @property
    def code(self) -> int:
        """Stable numeric encoding for the lifecycle gauge."""
        return _STATE_CODES[self]

    @property
    def routable(self) -> bool:
        """Whether new work may be sent to a host in this state."""
        return self in (HostState.HEALTHY, HostState.PROBATION)


_STATE_CODES = {
    HostState.HEALTHY: 0,
    HostState.SUSPECT: 1,
    HostState.QUARANTINED: 2,
    HostState.DRAINING: 3,
    HostState.PROBATION: 4,
}


@dataclass(frozen=True)
class HealthConfig:
    """Tunables of the monitor and its per-host detectors."""

    #: Heartbeat period each host's pump simulates.
    heartbeat_interval_ms: float = 500.0
    #: Detector window and deviation floor (see PhiAccrualDetector).
    window: int = 64
    min_std_ms: float = 200.0
    #: phi threshold that turns HEALTHY into SUSPECT.
    suspect_phi: float = 1.5
    #: phi threshold that turns SUSPECT into QUARANTINED.
    quarantine_phi: float = 5.0
    #: phi threshold past which a QUARANTINED host is presumed lost and
    #: drained (its pool metadata dropped, pending prewarms absorbed).
    drain_phi: float = 12.0
    #: A host whose learned mean heartbeat interval exceeds
    #: ``slow_factor * heartbeat_interval_ms`` is treated as gray-slow
    #: (suspect) even when individual heartbeats keep arriving.
    slow_factor: float = 2.0
    #: Consecutive clean evaluations a SUSPECT host needs to rejoin
    #: HEALTHY directly (it never stopped heartbeating hard enough to
    #: be quarantined, so no probation ramp is needed).
    recover_evals: int = 3
    #: On-time heartbeats a PROBATION host needs before full weight.
    probation_heartbeats: int = 8

    def __post_init__(self) -> None:
        if self.heartbeat_interval_ms <= 0:
            raise ValueError("heartbeat_interval_ms must be > 0")
        if not 0 < self.suspect_phi < self.quarantine_phi < self.drain_phi:
            raise ValueError(
                "need 0 < suspect_phi < quarantine_phi < drain_phi"
            )
        if self.slow_factor <= 1.0:
            raise ValueError("slow_factor must be > 1")
        if self.recover_evals < 1:
            raise ValueError("recover_evals must be >= 1")
        if self.probation_heartbeats < 1:
            raise ValueError("probation_heartbeats must be >= 1")


class HostHealth:
    """One host's detector, lifecycle state, and transition history."""

    def __init__(self, name: str, engine, config: HealthConfig) -> None:
        self.name = name
        self.engine = engine
        self.config = config
        self.state = HostState.HEALTHY
        self.detector = PhiAccrualDetector(
            window=config.window,
            min_std_ms=config.min_std_ms,
            bootstrap_interval_ms=config.heartbeat_interval_ms,
        )
        #: Consecutive clean evaluations while SUSPECT.
        self.clean_evals = 0
        #: On-time heartbeats received while in PROBATION.
        self.probation_progress = 0
        #: ``(sim_time, from_state, to_state)`` transition log.
        self.transitions: List[Tuple[float, HostState, HostState]] = []

    @property
    def is_slow(self) -> bool:
        """Gray-slowdown signal: heartbeats arrive but far too slowly."""
        config = self.config
        return (
            self.detector.n_intervals >= 2
            and self.detector.mean_interval_ms
            > config.slow_factor * config.heartbeat_interval_ms
        )

    def routing_weight(self) -> float:
        """Probabilistic routing weight in [0, 1] (1.0 = full share).

        HEALTHY hosts weigh 1.0; PROBATION hosts ramp linearly with
        their on-time heartbeat count so reintroduction is gradual; all
        other states are unroutable and weigh 0.
        """
        if self.state is HostState.HEALTHY:
            return 1.0
        if self.state is HostState.PROBATION:
            return (self.probation_progress + 1) / (
                self.config.probation_heartbeats + 1
            )
        return 0.0

    def transition_to(self, state: HostState, now: float) -> HostState:
        """Move to ``state``, logging the edge; returns the old state."""
        old = self.state
        if state is not old:
            self.state = state
            self.transitions.append((now, old, state))
            if state is HostState.PROBATION:
                self.probation_progress = 0
            if state is not HostState.SUSPECT:
                self.clean_evals = 0
        return old

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HostHealth {self.name} {self.state.value}>"
