"""The health monitor: heartbeat pumps + lifecycle transitions.

One :class:`HealthMonitor` serves a whole cluster.  Each registered
host gets a simulated heartbeat pump process: every
``heartbeat_interval_ms`` the pump delivers a heartbeat to the host's
phi-accrual detector — unless the host is unreachable (outage or
partition) or its injector says heartbeats are lost, in which case the
detector sees silence and phi accrues.  A gray-slowed host delivers
heartbeats late (scaled by the injector's latency multiplier), which
the detector learns as a grown mean interval and the lifecycle flags
via ``slow_factor``.

After every delivery (or missed delivery) the monitor evaluates the
host's lifecycle state machine (see :mod:`repro.health.lifecycle`) and
emits ``HOST_SUSPECT`` / ``HOST_QUARANTINED`` / ``HOST_RECOVERED``
events plus a per-host lifecycle-state gauge through the observatory.

The cluster consults :meth:`routable` when picking hosts and
:meth:`routing_weight` to reintroduce probation hosts gradually; a
host entering DRAINING fires its registered drain hook (the cluster
drops pool metadata and absorbs pending prewarm boots there).

Strictly opt-in: without ``attach_health`` the cluster never constructs
a monitor and no pump process exists.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.health.lifecycle import HealthConfig, HostHealth, HostState
from repro.obs.events import EventKind

__all__ = ["HealthMonitor"]

#: Which event kind announces entry into each state.
_TRANSITION_EVENTS = {
    HostState.SUSPECT: EventKind.HOST_SUSPECT,
    HostState.QUARANTINED: EventKind.HOST_QUARANTINED,
    HostState.DRAINING: EventKind.HOST_QUARANTINED,
    HostState.PROBATION: EventKind.HOST_RECOVERED,
    HostState.HEALTHY: EventKind.HOST_RECOVERED,
}


class HealthMonitor:
    """Phi-accrual health tracking for a set of hosts."""

    def __init__(self, sim, config: Optional[HealthConfig] = None) -> None:
        self.sim = sim
        self.config = config or HealthConfig()
        self.hosts: Dict[str, HostHealth] = {}
        self._on_drain: Dict[str, Callable[[], None]] = {}
        #: Optional observatory; ``None`` keeps the hooks inert.
        self.obs = None
        self._running = False
        #: Bumped on every start so stale pump processes exit.
        self._generation = 0

    # -- registration ------------------------------------------------------
    def register_host(
        self,
        name: str,
        engine,
        on_drain: Optional[Callable[[], None]] = None,
    ) -> HostHealth:
        """Track ``engine`` under ``name``; idempotent per name.

        ``on_drain`` fires when the host enters DRAINING through the
        detector (the cluster drops its pool metadata there).
        """
        health = self.hosts.get(name)
        if health is None:
            health = HostHealth(name, engine, self.config)
            self.hosts[name] = health
        if on_drain is not None:
            self._on_drain[name] = on_drain
        return health

    def attach_observatory(self, observatory) -> None:
        """Record lifecycle events and gauges (``None`` detaches)."""
        self.obs = observatory

    # -- pump lifecycle ----------------------------------------------------
    def start(self) -> None:
        """Spawn one heartbeat pump per registered host; idempotent."""
        if self._running:
            return
        self._running = True
        self._generation += 1
        now = self.sim.now
        for name in sorted(self.hosts):
            health = self.hosts[name]
            # Seed the detector so the first evaluation has a baseline.
            health.detector.heartbeat(now)
            self.sim.process(
                self._pump(health, self._generation),
                name=f"heartbeat:{name}",
            )

    def stop(self) -> None:
        """Stop every pump after its in-flight interval."""
        self._running = False
        self._generation += 1

    def _pump(self, health: HostHealth, generation: int) -> Generator:
        interval = self.config.heartbeat_interval_ms
        while self._running and generation == self._generation:
            yield self.sim.timeout(interval)
            if not self._running or generation != self._generation:
                break
            engine = health.engine
            injector = engine.fault_injector
            lost = engine.is_unreachable or (
                injector is not None and injector.heartbeats_lost
            )
            if not lost:
                multiplier = (
                    injector.latency_multiplier if injector is not None else 1.0
                )
                if multiplier > 1.0:
                    # Gray slowdown: the heartbeat arrives late, so the
                    # detector learns a stretched inter-arrival mean.
                    yield self.sim.timeout(interval * (multiplier - 1.0))
                    if not self._running or generation != self._generation:
                        break
                health.detector.heartbeat(self.sim.now)
                self._note_heartbeat(health)
            self.evaluate(health, self.sim.now)

    # -- cluster-facing queries --------------------------------------------
    def state(self, name: str) -> HostState:
        """Lifecycle state of ``name`` (HEALTHY when unregistered)."""
        health = self.hosts.get(name)
        return health.state if health is not None else HostState.HEALTHY

    def routable(self, name: str) -> bool:
        """Whether the cluster may route new work at ``name``."""
        return self.state(name).routable

    def routing_weight(self, name: str) -> float:
        """Routing weight in [0, 1]; probation hosts ramp gradually."""
        health = self.hosts.get(name)
        return health.routing_weight() if health is not None else 1.0

    def states(self) -> Dict[str, HostState]:
        """Snapshot of every host's lifecycle state."""
        return {name: h.state for name, h in self.hosts.items()}

    # -- data-plane evidence ------------------------------------------------
    def on_host_down(self, name: str) -> None:
        """A request observed the host down: skip straight to DRAINING.

        Called by the cluster scheduler when an acquire raised
        :class:`~repro.faults.errors.HostDownError` — confirmed
        unreachability beats any phi estimate.  The cluster has already
        drained the host's pool metadata, so the drain hook is not
        re-fired.
        """
        health = self.hosts.get(name)
        if health is None or health.state is HostState.DRAINING:
            return
        self._transition(health, HostState.DRAINING, fire_drain=False)

    # -- the state machine --------------------------------------------------
    def _note_heartbeat(self, health: HostHealth) -> None:
        """A heartbeat arrived; advance a probation ramp if one is on."""
        if health.state is HostState.PROBATION:
            health.probation_progress += 1
            if health.probation_progress >= self.config.probation_heartbeats:
                self._transition(health, HostState.HEALTHY)

    def evaluate(self, health: HostHealth, now: float) -> None:
        """One evaluation of the lifecycle machine against phi."""
        config = self.config
        phi = health.detector.phi(now)
        slow = health.is_slow
        state = health.state
        if state is HostState.HEALTHY:
            if phi >= config.quarantine_phi:
                self._transition(health, HostState.QUARANTINED)
            elif phi >= config.suspect_phi or slow:
                self._transition(health, HostState.SUSPECT)
        elif state is HostState.SUSPECT:
            if phi >= config.quarantine_phi:
                self._transition(health, HostState.QUARANTINED)
            elif phi < config.suspect_phi and not slow:
                health.clean_evals += 1
                if health.clean_evals >= config.recover_evals:
                    self._transition(health, HostState.HEALTHY)
            else:
                health.clean_evals = 0
        elif state is HostState.QUARANTINED:
            if phi >= config.drain_phi:
                self._transition(health, HostState.DRAINING)
            elif phi < config.suspect_phi and not slow:
                self._transition(health, HostState.PROBATION)
        elif state is HostState.DRAINING:
            if phi < config.suspect_phi and not slow:
                self._transition(health, HostState.PROBATION)
        else:  # PROBATION: relapse checks (the ramp runs on heartbeats)
            if phi >= config.quarantine_phi:
                self._transition(health, HostState.QUARANTINED)
            elif phi >= config.suspect_phi or slow:
                self._transition(health, HostState.SUSPECT)

    def _transition(
        self, health: HostHealth, state: HostState, fire_drain: bool = True
    ) -> None:
        now = self.sim.now
        old = health.transition_to(state, now)
        if old is state:
            return
        if state is HostState.DRAINING and fire_drain:
            hook = self._on_drain.get(health.name)
            if hook is not None:
                hook()
        if self.obs is not None:
            self.obs.emit(
                _TRANSITION_EVENTS[state],
                t=now,
                host=health.name,
                state=state.value,
                phi=round(health.detector.phi(now), 3),
            )
            self.obs.counter(
                "host_lifecycle_transitions_total",
                help="Host lifecycle state changes by target state",
                host=health.name,
                to=state.value,
            ).inc()
            self.obs.gauge(
                "host_lifecycle_state",
                help=(
                    "Current lifecycle state (0 healthy, 1 suspect, "
                    "2 quarantined, 3 draining, 4 probation)"
                ),
                host=health.name,
            ).set(state.code)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = ", ".join(
            f"{name}={h.state.value}" for name, h in sorted(self.hosts.items())
        )
        return f"<HealthMonitor {states or 'no hosts'}>"
