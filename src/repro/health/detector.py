"""Phi-accrual failure detection (Hayashibara et al., SRDS 2004).

The detector learns the distribution of heartbeat inter-arrival times
in a sliding window and, on demand, converts "how long since the last
heartbeat" into a suspicion level::

    phi(now) = -log10( P(interval >= now - last_heartbeat) )

under a normal model of the learned intervals.  phi ~= 1 means roughly
a 10% chance the host is fine and the heartbeat is merely late; phi of
5 means 1e-5.  Unlike a binary timeout, callers pick *graded*
thresholds — suspect at a low phi, quarantine at a high one — and the
thresholds adapt automatically to each host's observed jitter.

Deterministic: no RNG, pure arithmetic over observed sim times.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

__all__ = ["PhiAccrualDetector"]

#: Floor on the tail probability so phi stays finite (caps phi at 30).
_MIN_P = 1e-30


class PhiAccrualDetector:
    """Suspicion-level failure detector over one host's heartbeats.

    Parameters
    ----------
    window:
        Sliding-window length of remembered inter-arrival intervals.
    min_std_ms:
        Floor on the modelled standard deviation.  Regular simulated
        heartbeats have near-zero variance, which would make phi jump
        from 0 to infinity on the first late beat; the floor restores
        the graded ramp the accrual design is for.
    bootstrap_interval_ms:
        Assumed mean interval before the first real interval is seen.
    """

    def __init__(
        self,
        window: int = 64,
        min_std_ms: float = 200.0,
        bootstrap_interval_ms: float = 1_000.0,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if min_std_ms <= 0:
            raise ValueError("min_std_ms must be > 0")
        if bootstrap_interval_ms <= 0:
            raise ValueError("bootstrap_interval_ms must be > 0")
        self.window = window
        self.min_std_ms = float(min_std_ms)
        self.bootstrap_interval_ms = float(bootstrap_interval_ms)
        self.last_heartbeat_at: Optional[float] = None
        self._intervals: Deque[float] = deque(maxlen=window)
        #: Running sums over the deque (O(1) mean/variance updates).
        self._sum = 0.0
        self._sumsq = 0.0

    # -- feeding ----------------------------------------------------------
    def heartbeat(self, now: float) -> None:
        """Record one heartbeat arrival at sim time ``now``."""
        last = self.last_heartbeat_at
        if last is not None:
            interval = now - last
            if interval < 0:
                raise ValueError("heartbeats must arrive in time order")
            if len(self._intervals) == self._intervals.maxlen:
                old = self._intervals[0]
                self._sum -= old
                self._sumsq -= old * old
            self._intervals.append(interval)
            self._sum += interval
            self._sumsq += interval * interval
        self.last_heartbeat_at = now

    def reset(self) -> None:
        """Forget everything (host re-registered from scratch)."""
        self.last_heartbeat_at = None
        self._intervals.clear()
        self._sum = 0.0
        self._sumsq = 0.0

    # -- the learned model -------------------------------------------------
    @property
    def n_intervals(self) -> int:
        """Intervals currently in the window."""
        return len(self._intervals)

    @property
    def mean_interval_ms(self) -> float:
        """Learned mean inter-arrival time (bootstrap before data)."""
        n = len(self._intervals)
        return self._sum / n if n else self.bootstrap_interval_ms

    @property
    def std_interval_ms(self) -> float:
        """Learned standard deviation, floored at ``min_std_ms``."""
        n = len(self._intervals)
        if n < 2:
            return self.min_std_ms
        mean = self._sum / n
        variance = max(0.0, self._sumsq / n - mean * mean)
        return max(self.min_std_ms, math.sqrt(variance))

    # -- suspicion ---------------------------------------------------------
    def phi(self, now: float) -> float:
        """Suspicion level at sim time ``now`` (0 = just heard from it).

        Computed as ``-log10`` of the normal upper-tail probability of
        an interval at least as long as the current silence.
        """
        last = self.last_heartbeat_at
        if last is None:
            return 0.0
        elapsed = now - last
        mean = self.mean_interval_ms
        std = self.std_interval_ms
        # P(X >= elapsed) for X ~ N(mean, std^2), via erfc for tail
        # accuracy far beyond where 1 - cdf would round to zero.
        p = 0.5 * math.erfc((elapsed - mean) / (std * math.sqrt(2.0)))
        return -math.log10(max(p, _MIN_P))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PhiAccrualDetector n={self.n_intervals} "
            f"mean={self.mean_interval_ms:.1f}ms "
            f"std={self.std_interval_ms:.1f}ms>"
        )
