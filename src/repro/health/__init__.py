"""Adaptive failure detection and host lifecycle management.

Real fleets mostly fail *gray*: hosts slow down, heartbeats flap,
partitions make a live host unreachable.  A binary up/down view either
routes work at a zombie or abandons a host that was merely slow.  This
package replaces the cluster's lazy down-set with:

* :class:`PhiAccrualDetector` — a phi-accrual failure detector
  (Hayashibara et al.): instead of a boolean timeout it outputs a
  *suspicion level* phi, the negative log of the probability that the
  silence observed so far is consistent with the learned heartbeat
  inter-arrival distribution.  Thresholding phi at different levels
  yields graded reactions.
* :class:`HostHealth` / :class:`HostState` — a per-host lifecycle state
  machine (healthy → suspect → quarantined → draining → probation →
  healthy) driven by the detector.
* :class:`HealthMonitor` — one simulated heartbeat pump per host plus
  the transition logic; the cluster consults it for routability and
  probation routing weights.

Everything is strictly opt-in: a cluster without an attached monitor
behaves bit-identically to one built before this package existed.
"""

from repro.health.container import (
    ContainerCondition,
    ContainerHealth,
    ContainerHealthConfig,
    ContainerHealthPlane,
)
from repro.health.detector import PhiAccrualDetector
from repro.health.lifecycle import HealthConfig, HostHealth, HostState
from repro.health.monitor import HealthMonitor

__all__ = [
    "ContainerCondition",
    "ContainerHealth",
    "ContainerHealthConfig",
    "ContainerHealthPlane",
    "HealthConfig",
    "HealthMonitor",
    "HostHealth",
    "HostState",
    "PhiAccrualDetector",
]
