#!/usr/bin/env python3
"""Gray failure: a slow host is worse than a dead one — unless detected.

A host that answers heartbeats 3x late never trips a binary up/down
check, yet every request routed to it pays the slowdown.  This example
runs the same workload against a 2-host cluster twice — once with the
binary down-set only, once with the phi-accrual health monitor attached
— while host-0 limps through a 20-second gray slowdown, and compares
tail latency.

The monitor moves the sick host through the lifecycle FSM on
accumulated evidence alone — here healthy -> suspect, which already
parks new work on the healthy host — and readmits it once its
heartbeats come back on time.  (Outright silence escalates further:
quarantined, draining, then a weighted probation ramp on return.)

Run:  python examples/gray_failure.py
"""

from repro.core import make_cluster_platform
from repro.faas import FunctionSpec
from repro.faults import FaultKind, FaultPlan, ScheduledFault
from repro.health import HealthConfig, HealthMonitor
from repro.workloads import default_catalog

GRAY_AT = 10_000.0
GRAY_MS = 20_000.0
FACTOR = 4.0


def run(with_monitor: bool):
    catalog = default_catalog()
    platform = make_cluster_platform(catalog.make_registry(), n_hosts=2, seed=7)
    platform.deploy(FunctionSpec(name="api", image="python:3.6", exec_ms=40))
    cluster = platform.provider

    monitor = None
    if with_monitor:
        # A small detector window lets the learned mean track the
        # stretched heartbeats quickly enough to call the limp early.
        monitor = HealthMonitor(platform.sim, HealthConfig(window=8))
        cluster.attach_health(monitor)
        monitor.start()

    plan = FaultPlan(
        seed=7,
        scheduled=(
            ScheduledFault(
                at_ms=GRAY_AT,
                kind=FaultKind.GRAY_SLOWDOWN,
                host="host-0",
                duration_ms=GRAY_MS,
                factor=FACTOR,
            ),
        ),
    )
    plan.install(platform.sim, [h.engine for h in cluster.hosts])

    # Warm both hosts, then a steady stream through the slowdown.
    for index in range(2):
        platform.submit("api", delay=index * 100.0)
    for index in range(60):
        platform.submit("api", delay=5_000.0 + index * 900.0)
    platform.run(until=120_000.0)
    if monitor is not None:
        monitor.stop()
    platform.run()
    return platform, monitor


def percentile(values, q):
    values = sorted(values)
    return values[min(len(values) - 1, int(q * len(values)))]


def main() -> None:
    print(
        f"2-host cluster; host-0 runs {FACTOR:.0f}x slow for "
        f"{GRAY_MS / 1000:.0f}s mid-run\n"
    )
    for with_monitor in (False, True):
        platform, monitor = run(with_monitor)
        gray = [
            t
            for t in platform.traces.traces
            if GRAY_AT <= t.t0_client_send < GRAY_AT + GRAY_MS
        ]
        lat = [t.total_latency for t in gray]
        on_slow = sum(t.container_id.startswith("host-0/") for t in gray)
        label = "phi-accrual monitor" if with_monitor else "binary down-set only"
        print(f"--- {label} (requests inside the gray window) ---")
        print(f"  served on the slow host : {on_slow}/{len(gray)}")
        print(f"  p50 latency             : {percentile(lat, 0.50):7.1f} ms")
        print(f"  p95 latency             : {percentile(lat, 0.95):7.1f} ms")
        print(f"  max latency             : {max(lat):7.1f} ms")
        if monitor is not None:
            transitions = monitor.hosts["host-0"].transitions
            walk = " -> ".join(
                new.name.lower() for (_, _, new) in transitions
            )
            print(f"  host-0 walk : healthy -> {walk}")
        print()
    print(
        "The binary check never notices the limp (the host still answers),\n"
        "so every gray-window request pays the 4x slowdown.  The detector\n"
        "reads the stretched heartbeat intervals as evidence, marks the\n"
        "host suspect — no new work — for the duration, and readmits it\n"
        "once its beats come back on time.  Outright silence would walk\n"
        "it further: quarantined, then draining."
    )


if __name__ == "__main__":
    main()
