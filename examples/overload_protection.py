#!/usr/bin/env python3
"""Overload protection: admission control, deadlines, and shedding.

A single host takes a 48-wide burst against a function that normally
runs at a handful of concurrent requests.  Without a controller every
request queues behind the gateway and the tail latency explodes; with
`repro.admission` attached the AIMD limit bounds concurrency, the
per-function queue is capped at 8, overflow is shed immediately with a
fast error answer, and queued requests that can no longer make their
2 s deadline are cut instead of served late.

Run:  python examples/overload_protection.py
"""

from repro.admission import AdmissionConfig, AdmissionController, AIMDConfig
from repro.core import HotC, HotCConfig, PoolLimits
from repro.faas import FaasPlatform, FunctionSpec
from repro.workloads import default_catalog

BURST = 48


def run(protected: bool):
    registry = default_catalog().make_registry()
    platform = FaasPlatform(
        registry,
        seed=7,
        jitter_sigma=0.0,
        provider_factory=lambda e: HotC(
            e, HotCConfig(limits=PoolLimits(max_containers=8))
        ),
    )
    platform.deploy(
        FunctionSpec(
            name="api",
            image="python:3.6",
            exec_ms=80.0,
            deadline_ms=2_000.0,
        )
    )
    ctrl = None
    if protected:
        ctrl = AdmissionController(
            AdmissionConfig(
                max_queue_depth=8,
                aimd=AIMDConfig(initial_limit=4.0),
            )
        )
        platform.attach_admission(ctrl)
    platform.provider.start_control_loop()
    for _ in range(BURST):
        platform.submit("api", delay=1_000.0)
    platform.run(until=60_000.0)
    return platform, ctrl


def main() -> None:
    print(f"one host, {BURST} simultaneous requests, 2 s deadline\n")
    for protected in (False, True):
        platform, ctrl = run(protected)
        traces = platform.traces
        answered = len(traces) - traces.shed_count() - traces.deadline_count()
        label = "with admission control" if protected else "unprotected"
        print(f"--- {label} ---")
        print(f"  answered               : {answered}/{len(traces)}")
        print(f"  shed at the door       : {traces.shed_count()} "
              f"{traces.shed_reasons() or ''}")
        print(f"  cut at deadline (queue): {traces.deadline_count()}")
        print(f"  mean answered latency  : {traces.mean_latency():.0f} ms")
        print(f"  containers booted      : {platform.engine.stats.boots}")
        if ctrl is not None:
            print(f"  queue depth peak       : {ctrl.stats.queue_depth_peak}")
            print(f"  AIMD limit at end      : {ctrl.limit('api')}")
        print()
    print(
        "The unprotected gateway boots a container for every request in\n"
        "the burst — 48 cold boots on a host sized for 8.  The protected\n"
        "run admits only what the host can take, answers the overflow\n"
        "instantly with a shed, keeps the queue bounded at its cap, and\n"
        "cuts queued requests that can no longer make their deadline\n"
        "instead of serving them late."
    )


if __name__ == "__main__":
    main()
