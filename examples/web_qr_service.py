#!/usr/bin/env python3
"""A QR-code web service under mixed traffic (the paper's Fig 9 scenario).

Deploys the URL->QR function in three language runtimes behind the
simulated gateway.  Clients pick a random variant per request.  The
script compares the default platform against HotC and prints latency
percentiles plus one actual QR matrix to prove the handler does real
work.

Run:  python examples/web_qr_service.py
"""

import numpy as np

from repro.core import HotC
from repro.faas import FaasPlatform
from repro.metrics import summarize_latencies
from repro.workloads import default_catalog, qr_encoder_app
from repro.workloads.apps import encode_qr_matrix

LANGUAGES = ("python", "go", "node")
REQUESTS = 60
INTERVAL_MS = 1_500.0


def run_arm(use_hotc: bool):
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=11,
        provider_factory=HotC if use_hotc else None,
    )
    for language in LANGUAGES:
        spec = qr_encoder_app(name=f"qr-{language}", language=language)
        platform.deploy(spec)
        platform.sim.process(platform.engine.ensure_image(spec.image))
    platform.run()

    chooser = np.random.default_rng(99)
    for index in range(REQUESTS):
        language = LANGUAGES[chooser.integers(0, len(LANGUAGES))]
        platform.submit(f"qr-{language}", delay=index * INTERVAL_MS)
    platform.run()
    return platform.traces


def render_qr(url: str) -> str:
    matrix = encode_qr_matrix(url, size=21)
    rows = []
    for row in matrix:
        rows.append("".join("##" if cell else "  " for cell in row))
    return "\n".join(rows)


def main() -> None:
    print(f"QR service: {REQUESTS} requests over {len(LANGUAGES)} runtimes\n")
    for use_hotc in (False, True):
        traces = run_arm(use_hotc)
        summary = summarize_latencies(traces.latencies())
        label = "HotC   " if use_hotc else "default"
        print(
            f"{label}: mean {summary.mean:7.1f} ms   p50 {summary.p50:7.1f}   "
            f"p99 {summary.p99:7.1f}   cold {traces.cold_count()}/{len(traces)}"
        )
    print("\nOne encoded QR matrix (deterministic per URL):\n")
    print(render_qr("https://github.com/example/hotc"))


if __name__ == "__main__":
    main()
