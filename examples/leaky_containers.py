#!/usr/bin/env python3
"""Container aging: reuse-at-depth rots runtimes — unless they recycle.

Runtime reuse is the paper's whole cold-start cure, but a container
serving its 50th request is not the container that served its 1st:
leaked RSS accumulates, interpreter state goes stale, and per-reuse
slowdown compounds.  This example runs the same Poisson workload twice
— once with plain HotC reuse, once with the container health plane
enabled — while every boot rolls the degradation lottery (40 % of
containers leak 24 MB per exec, 3 % of execs leave poisoned state
behind, half the containers slow down 8 % per reuse), and compares tail
latency and failures.

The health plane scores each container from exec outcomes, an EWMA
latency residual against its key's baseline, and its RSS trajectory
(FRESH -> WARM -> SUSPECT -> QUARANTINED -> RECYCLING); verdicts pull
the container out of every reuse index and a token-bucket recycle loop
destroys it and prewarms a fresh replacement.

Run:  python examples/leaky_containers.py
"""

from repro.core import HotC, HotCConfig
from repro.faas import FaasPlatform, FunctionSpec
from repro.faults import FaultPlan, FaultSpec
from repro.health import ContainerHealthConfig
from repro.workloads import default_catalog

N_REQUESTS = 1000
DURATION_MS = 300_000.0

DEGRADATION = FaultSpec(
    memory_leak_rate=0.4,
    memory_leak_mb=24.0,
    state_poison_rate=0.03,
    perf_decay_rate=0.5,
    perf_decay_factor=1.08,
)


def run(with_health: bool):
    catalog = default_catalog()
    config = HotCConfig(
        control_interval_ms=1_000.0,
        container_health=(
            ContainerHealthConfig(max_reuses=25, leak_slope_mb=8.0)
            if with_health
            else None
        ),
    )
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=7,
        provider_factory=lambda e: HotC(e, config),
    )
    platform.deploy(FunctionSpec(name="api", image="python:3.6", exec_ms=40))

    plan = FaultPlan(seed=7, spec=DEGRADATION)
    plan.install(platform.sim, [platform.engine])
    platform.provider.start_control_loop()

    step = DURATION_MS / N_REQUESTS
    for index in range(N_REQUESTS):
        platform.submit("api", delay=index * step)
    platform.run(until=DURATION_MS + 60_000.0)
    platform.provider.stop_control_loop()
    platform.run()
    return platform


def percentile(values, q):
    values = sorted(values)
    return values[min(len(values) - 1, int(q * len(values)))]


def main() -> None:
    print(
        "Same seeded workload, same degradation lottery, health plane "
        "off vs on\n"
    )
    for with_health in (False, True):
        platform = run(with_health)
        lat = [
            t.total_latency
            for t in platform.traces
            if t.total_latency is not None
        ]
        depths = [t.reuse_count for t in platform.traces]
        label = (
            "container health plane" if with_health else "plain HotC reuse"
        )
        print(f"--- {label} ---")
        print(f"  requests served : {len(platform.traces)}")
        print(f"  failed          : {platform.traces.failed_count()}")
        print(f"  p50 latency     : {percentile(lat, 0.50):8.1f} ms")
        print(f"  p99 latency     : {percentile(lat, 0.99):8.1f} ms")
        print(f"  max reuse depth : {max(depths)}")
        plane = platform.provider.container_health
        if plane is not None:
            print(
                f"  verdicts        : {plane.suspects} suspect, "
                f"{plane.quarantines} quarantined, "
                f"{plane.recycles} recycled"
            )
        print()
    print(
        "Without the plane, decaying containers are reused forever — the\n"
        "compounding slowdown drags the tail, and every poisoned runtime\n"
        "costs a failed exec + retry before the watchdog discards it.\n"
        "With it, drifting containers turn SUSPECT (served by the EWMA\n"
        "residual), contaminated ones are quarantined on first failure,\n"
        "leaks are caught by their RSS slope, and the token-bucket\n"
        "recycle loop swaps each one for a prewarmed replacement."
    )


if __name__ == "__main__":
    main()
