#!/usr/bin/env python3
"""Quickstart: feel the cold start, then fix it with HotC.

Deploys a tiny serverless function on the simulated OpenFaaS-like
platform twice — once with the default cold-boot-per-request behaviour
and once behind the HotC middleware — and prints the per-request
latency of both arms.

Run:  python examples/quickstart.py
"""

from repro.core import HotC
from repro.faas import FaasPlatform, FunctionSpec
from repro.workloads import default_catalog


def run_arm(use_hotc: bool) -> None:
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(),
        seed=42,
        provider_factory=HotC if use_hotc else None,
    )
    platform.deploy(
        FunctionSpec(
            name="hello",
            image="python:3.6",
            language="python",
            exec_ms=25.0,  # 25 ms of business logic
        )
    )
    # Stage the image locally, as any real deployment would.
    platform.sim.process(platform.engine.ensure_image("python:3.6"))
    platform.run()

    # One request every 2 seconds for 8 requests.
    for index in range(8):
        platform.submit("hello", delay=index * 2_000.0)
    platform.run()

    label = "with HotC   " if use_hotc else "without HotC"
    latencies = platform.traces.latencies()
    cold = platform.traces.cold_count()
    print(f"{label}: cold starts = {cold}/8")
    for number, (latency, is_cold) in enumerate(
        zip(latencies, platform.traces.cold_flags()), start=1
    ):
        marker = "  <-- cold start" if is_cold else ""
        print(f"  request {number}: {latency:8.1f} ms{marker}")
    print(f"  mean latency: {latencies.mean():.1f} ms\n")


def main() -> None:
    print("HotC quickstart: 8 requests, 2s apart, 25ms of real work each\n")
    run_arm(use_hotc=False)
    run_arm(use_hotc=True)
    print(
        "The default platform pays container boot + runtime init on every\n"
        "request; HotC pays it once and reuses the live runtime afterwards."
    )


if __name__ == "__main__":
    main()
