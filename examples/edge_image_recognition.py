#!/usr/bin/env python3
"""Edge image recognition (the paper's Fig 8 scenario).

Runs the two image-recognition applications — inception-v3 in Python
and the Go Tensorflow-API app — on the Dell T430 server profile and on
a Raspberry Pi 3 (with overlay-network containers, as in the paper),
with and without HotC, and reports the execution-time reduction.

Run:  python examples/edge_image_recognition.py
"""

from repro.containers import NetworkConfig
from repro.experiments.fig08_image_recognition import measure_app
from repro.hardware import RASPBERRY_PI3, T430_SERVER
from repro.workloads import tf_api_app, v3_app


def main() -> None:
    print("Image recognition with and without HotC (mean of 10 runs)\n")
    for profile in (T430_SERVER, RASPBERRY_PI3):
        network = (
            NetworkConfig(mode="overlay")
            if profile is RASPBERRY_PI3
            else NetworkConfig(mode="bridge")
        )
        print(f"--- {profile.description} ---")
        for spec in (v3_app(network=network), tf_api_app(network=network)):
            default_ms = measure_app(spec, profile, use_hotc=False, runs=10, seed=7)
            hotc_ms = measure_app(spec, profile, use_hotc=True, runs=10, seed=7)
            reduction = 100 * (1 - hotc_ms / default_ms)
            print(
                f"  {spec.name:<12} default {default_ms / 1000:6.2f} s   "
                f"HotC {hotc_ms / 1000:6.2f} s   (-{reduction:.1f}%)"
            )
        print()
    print(
        "On the Pi the application itself runs ~12x slower, so the cold\n"
        "start is a smaller share of the total - HotC still removes it."
    )


if __name__ == "__main__":
    main()
