#!/usr/bin/env python3
"""Tuning the adaptive pool: predictors and keep-alive policies head-on.

Part 1 replays a volatile demand series through the three prediction
strategies (exponential smoothing, Markov-only, ES+Markov) and prints
their errors — the paper's Fig 10 comparison.

Part 2 runs the same bursty workload against four providers — cold-boot,
AWS-style fixed keep-alive, histogram keep-alive, and HotC with the
adaptive controller — and reports cold starts, mean latency, and
container boots (a resource-waste proxy).

Run:  python examples/adaptive_pool_tuning.py
"""


from repro.core import (
    CombinedPredictor,
    ExponentialSmoothing,
    FixedKeepAliveProvider,
    HistogramKeepAliveProvider,
    HotC,
    HotCConfig,
)
from repro.experiments.fig10_prediction import demand_series, _markov_only_forecasts
from repro.faas import FaasPlatform
from repro.metrics import mean_absolute_percentage_error
from repro.workloads import BurstPattern, WorkloadGenerator, default_catalog, qr_encoder_app


def part1_predictors() -> None:
    series = demand_series(seed=3, length=48)
    arms = {
        "exp smoothing (a=0.8)": ExponentialSmoothing(alpha=0.8).fit_series(series),
        "markov only": _markov_only_forecasts(series),
        "ES + Markov (HotC)": CombinedPredictor(alpha=0.8).fit_series(series),
    }
    print("Part 1 - one-step-ahead prediction error on a volatile demand series")
    for name, forecasts in arms.items():
        error = mean_absolute_percentage_error(series[1:], forecasts[:-1])
        print(f"  {name:<24} MAPE {100 * error:5.1f}%")
    print()


def part2_policies() -> None:
    providers = {
        "cold-boot": None,
        "fixed keep-alive 15min": lambda e: FixedKeepAliveProvider(e),
        "histogram keep-alive": lambda e: HistogramKeepAliveProvider(e),
        "HotC adaptive": lambda e: HotC(
            e, HotCConfig(control_interval_ms=30_000.0)
        ),
    }
    pattern = BurstPattern(base_requests=4, n_rounds=12, burst_rounds=(4, 8),
                           burst_factor=8, round_ms=30_000.0)
    print("Part 2 - bursty workload (4 req / 30s, 8x bursts at rounds 4 and 8)")
    print(f"  {'policy':<24} {'cold':>5} {'mean ms':>9} {'boots':>6}")
    for name, factory in providers.items():
        catalog = default_catalog()
        platform = FaasPlatform(
            catalog.make_registry(), seed=5, provider_factory=factory
        )
        spec = qr_encoder_app(name="qr", language="python")
        platform.deploy(spec)
        platform.sim.process(platform.engine.ensure_image(spec.image))
        platform.run()
        adaptive = isinstance(platform.provider, HotC)
        if adaptive:
            platform.provider.start_control_loop()
            # The control loop re-arms forever; bound the run.
            run_until = platform.sim.now + 12 * 30_000.0 + 120_000.0
        else:
            run_until = None
        result = WorkloadGenerator(platform).run(pattern, "qr", run_until=run_until)
        if adaptive:
            platform.provider.stop_control_loop()
            platform.run()
        print(
            f"  {name:<24} {result.total_cold():>5} "
            f"{result.mean_latency():>9.1f} {platform.engine.stats.boots:>6}"
        )
    print(
        "\nFixed keep-alive matches HotC on cold starts here but holds\n"
        "containers for 15 minutes regardless of demand; HotC sizes the\n"
        "pool from its forecast instead."
    )


if __name__ == "__main__":
    part1_predictors()
    part2_policies()
