#!/usr/bin/env python3
"""Multi-host HotC: reuse-aware scheduling vs round-robin.

The paper's future work (Section VII) calls for load balancing when
reusing hot runtimes across a distributed backend.  This example runs
the same workload — a steady stream followed by a parallel burst —
against a 3-host cluster under both placement policies and shows where
the containers end up.

Run:  python examples/multi_host_cluster.py
"""

from repro.core import make_cluster_platform
from repro.faas import FunctionSpec
from repro.workloads import default_catalog


def run(placement: str):
    catalog = default_catalog()
    platform = make_cluster_platform(
        catalog.make_registry(), n_hosts=3, seed=21, placement=placement
    )
    platform.deploy(FunctionSpec(name="api", image="python:3.6", exec_ms=30))
    for host in platform.provider.hosts:
        platform.sim.process(host.engine.ensure_image("python:3.6"))
    platform.run()

    # Phase 1: a steady stream, one request every 4 s.
    for index in range(10):
        platform.submit("api", delay=index * 4_000.0)
    # Phase 2: a 9-wide parallel burst at t = 60 s.
    for _ in range(9):
        platform.submit("api", delay=60_000.0)
    platform.run()
    return platform


def main() -> None:
    print("3-host cluster: 10 steady requests, then a 9-wide burst\n")
    for placement in ("reuse-aware", "round-robin"):
        platform = run(placement)
        traces = platform.traces
        provider = platform.provider
        steady = traces.traces[:10]
        print(f"--- placement: {placement} ---")
        print(f"  steady-phase cold starts : {sum(t.cold_start for t in steady)}")
        print(f"  total cold starts        : {traces.cold_count()}/{len(traces)}")
        print(f"  mean latency             : {traces.mean_latency():.0f} ms")
        print(f"  containers per host      : {provider.pool_sizes()}")
        print(f"  routing                  : {provider.stats.reuse_routed} reuse, "
              f"{provider.stats.cold_routed} cold\n")
    print(
        "Reuse-aware routing serves the steady stream from one warm host\n"
        "and spreads only the genuinely concurrent burst; round-robin\n"
        "pays a cold start on every host it rotates through."
    )


if __name__ == "__main__":
    main()
