#!/usr/bin/env python3
"""Replay a (scaled) day of the campus trace and price it.

Combines three parts of the reproduction: the Fig 11 synthetic trace,
the provider zoo (cold-boot / fixed keep-alive / HotC), and the billing
model of Section I — how much money the cold starts cost at Lambda-like
rates.

Run:  python examples/day_trace_replay.py
"""

from repro.core import FixedKeepAliveProvider, HotC, HotCConfig
from repro.faas import FaasPlatform
from repro.metrics import BillingModel
from repro.workloads import (
    TracePattern,
    WorkloadGenerator,
    default_catalog,
    qr_encoder_app,
    youtube_campus_trace,
)

# Replay minutes 680-880 of the day (covers the T710 burst and the
# early decline) at 1% volume, one trace-minute per 2 simulated seconds.
SEGMENT = (680, 880)
SCALE = 0.01
SLOT_MS = 2_000.0


def run_provider(label, factory, adaptive=False):
    catalog = default_catalog()
    platform = FaasPlatform(
        catalog.make_registry(), seed=13, provider_factory=factory
    )
    spec = qr_encoder_app(name="svc", language="python")
    platform.deploy(spec)
    platform.sim.process(platform.engine.ensure_image(spec.image))
    platform.run()

    counts = youtube_campus_trace(seed=4).segment(*SEGMENT)
    pattern = TracePattern(counts, slot_ms=SLOT_MS, scale=SCALE)
    run_until = None
    if adaptive:
        platform.provider.start_control_loop()
        run_until = platform.sim.now + len(counts) * SLOT_MS + 120_000.0
    result = WorkloadGenerator(platform).run(pattern, "svc", run_until=run_until)
    if adaptive:
        platform.provider.stop_control_loop()
        platform.run()

    bill = BillingModel().report(result.all_traces, mem_mb=spec.mem_mb)
    print(
        f"  {label:<18} requests={result.total_requests:>3}  "
        f"cold={result.total_cold():>3}  mean={result.mean_latency():6.1f} ms  "
        f"billed overhead={100 * bill.overhead_fraction:4.1f}%  "
        f"cost=${bill.total_usd * 1e6:.2f}e-6"
    )


def main() -> None:
    print(
        f"Campus trace minutes {SEGMENT[0]}-{SEGMENT[1]} at {SCALE:.0%} volume "
        f"({SLOT_MS / 1000:.0f}s per trace-minute)\n"
    )
    run_provider("cold-boot", None)
    run_provider("fixed keep-alive", lambda e: FixedKeepAliveProvider(e))
    run_provider(
        "HotC adaptive",
        lambda e: HotC(e, HotCConfig(control_interval_ms=10_000.0)),
        adaptive=True,
    )
    print(
        "\nCold starts both slow requests down and inflate the bill:\n"
        "the provider charges for initiation time on every cold request."
    )


if __name__ == "__main__":
    main()
