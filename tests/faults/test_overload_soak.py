"""Overload chaos soak: a 10x burst with a host dying mid-burst.

Marked ``chaos`` (opt in with ``--chaos`` / ``REPRO_CHAOS=1``).  Each
seeded run drives three phases through a two-host cluster with
admission control attached:

1. **warmup** — steady in-limit load lets AIMD climb to its ceiling;
2. **storm** — a burst of 10x the concurrency limit while one host is
   taken down mid-burst;
3. **recovery** — steady load again after the outage clears.

Invariants asserted across every seed:

* the admission queue depth never exceeds the configured cap (sampled
  continuously and via the peak counter);
* every request reaches a terminal outcome, and no *answered* request
  was granted admission after its deadline (a request past its deadline
  can only terminate as SHED/DEADLINE/FAILED);
* the AIMD limit is actually cut by the storm and recovers to within
  20% of its pre-fault value once the fault clears.
"""

import pytest

from repro.admission import AdmissionConfig, AdmissionController, AIMDConfig
from repro.core import HotCConfig, PoolLimits, make_cluster_platform
from repro.faas.tracing import RequestOutcome
from repro.faults import FaultKind, FaultPlan, ScheduledFault

SEEDS = [1, 2, 3, 4, 5]
TICK_MS = 500.0
QUEUE_CAP = 16
DEADLINE_MS = 10_000.0

WARMUP_END = 10_000.0
OUTAGE_AT = 10_500.0
OUTAGE_MS = 4_000.0
STORM_END = 30_000.0
RECOVERY_END = 55_000.0

ANSWERED = (RequestOutcome.SUCCESS, RequestOutcome.RETRIED)


def hotc_config():
    return HotCConfig(
        control_interval_ms=TICK_MS,
        limits=PoolLimits(max_containers=24),
        boot_timeout_ms=5_000.0,
        breaker_cooldown_ms=3_000.0,
    )


def admission_config():
    return AdmissionConfig(
        max_queue_depth=QUEUE_CAP,
        aimd=AIMDConfig(
            initial_limit=8.0,
            max_limit=16.0,
            increase=1.0,
            decrease=0.5,
            shed_burst=4,
        ),
        default_deadline_ms=DEADLINE_MS,
    )


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_overload_soak(registry, fn_python, seed, chaos_report):
    platform = make_cluster_platform(
        registry, n_hosts=2, seed=seed, hotc_config=hotc_config()
    )
    platform.deploy(fn_python.with_overrides(exec_ms=60.0))
    name = fn_python.name
    ctrl = AdmissionController(admission_config())
    platform.attach_admission(ctrl)
    cluster = platform.provider

    plan = FaultPlan(
        seed=seed,
        scheduled=(
            ScheduledFault(
                at_ms=OUTAGE_AT,
                kind=FaultKind.HOST_OUTAGE,
                host="host-1",
                duration_ms=OUTAGE_MS,
            ),
        ),
    )
    plan.install(platform.sim, [h.engine for h in cluster.hosts])
    cluster.start_control_loops()

    limit_trace = []

    def monitor():
        while True:
            yield platform.sim.timeout(50.0)
            cluster.check_consistency()
            depth = ctrl.queue_depth(name)
            assert depth <= QUEUE_CAP, (
                f"queue depth {depth} exceeds cap {QUEUE_CAP} "
                f"at t={platform.sim.now}"
            )
            limit_trace.append(ctrl.limit(name))

    platform.sim.process(monitor(), name="overload-monitor")

    # Phase 1: steady in-limit load; AIMD climbs to its ceiling.
    for i in range(200):
        platform.submit(name, delay=i * 50.0)
    platform.run(until=WARMUP_END)
    pre_fault = ctrl.limit(name)
    assert pre_fault >= 8  # the warmup never cut the limit

    # Phase 2: 10x burst; host-1 dies mid-burst (t=10.5s, 4s outage).
    burst = 10 * pre_fault
    for i in range(burst):
        platform.submit(name, delay=i * 10.0)
    platform.run(until=STORM_END)
    assert plan.stats.host_outages == 1
    min_limit = min(limit_trace)
    assert min_limit < pre_fault, "the storm never cut the AIMD limit"

    # Phase 3: the fault cleared; steady load drives additive recovery.
    for i in range(200):
        platform.submit(name, delay=i * 50.0)
    platform.run(until=RECOVERY_END)
    post_fault = ctrl.limit(name)
    assert post_fault >= 0.8 * pre_fault, (
        f"AIMD limit stuck at {post_fault} (pre-fault {pre_fault})"
    )

    cluster.stop_control_loops()
    platform.run(until=platform.sim.now + 60_000.0)
    platform.sim.process(cluster.shutdown(), name="shutdown")
    platform.run(until=platform.sim.now + 60_000.0)

    traces = platform.traces
    assert len(traces) == 400 + burst
    assert traces.all_terminal()
    assert ctrl.stats.queue_depth_peak <= QUEUE_CAP
    assert traces.shed_count() > 0, "the 10x burst shed nothing"
    # No request waited past its deadline and still got service: every
    # answered request was granted admission within its deadline.
    for trace in traces:
        if trace.outcome in ANSWERED:
            granted_at = trace.t1_gateway_in + trace.queue_ms
            assert granted_at <= trace.deadline + 1e-9, (
                f"request {trace.request_id} granted at {granted_at} "
                f"past deadline {trace.deadline}"
            )
        else:
            assert trace.outcome in (
                RequestOutcome.SHED,
                RequestOutcome.DEADLINE,
                RequestOutcome.FAILED,
            )
    # Admission bookkeeping fully unwound.
    assert ctrl.inflight(name) == 0
    assert ctrl.queue_depth_total() == 0
    cluster.check_consistency()

    chaos_report(
        seed=seed,
        plan=plan,
        platform=platform,
        admission=ctrl.stats.as_dict(),
        pre_fault_limit=pre_fault,
        min_limit=min_limit,
        post_fault_limit=post_fault,
        hosts_lost=cluster.stats.hosts_lost,
        failovers=cluster.stats.failovers,
    )


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_overload_soak_reproducible(registry, fn_python, seed):
    """Same seed, same storm: outcomes and shed counts match exactly."""

    def run_once():
        platform = make_cluster_platform(
            registry, n_hosts=2, seed=seed, hotc_config=hotc_config()
        )
        platform.deploy(fn_python.with_overrides(exec_ms=60.0))
        name = fn_python.name
        ctrl = AdmissionController(admission_config())
        platform.attach_admission(ctrl)
        cluster = platform.provider
        plan = FaultPlan(
            seed=seed,
            scheduled=(
                ScheduledFault(
                    at_ms=OUTAGE_AT,
                    kind=FaultKind.HOST_OUTAGE,
                    host="host-1",
                    duration_ms=OUTAGE_MS,
                ),
            ),
        )
        plan.install(platform.sim, [h.engine for h in cluster.hosts])
        cluster.start_control_loops()
        for i in range(200):
            platform.submit(name, delay=i * 50.0)
        platform.run(until=WARMUP_END)
        for i in range(10 * ctrl.limit(name)):
            platform.submit(name, delay=i * 10.0)
        platform.run(until=STORM_END)
        cluster.stop_control_loops()
        platform.run(until=platform.sim.now + 60_000.0)
        platform.sim.process(cluster.shutdown(), name="shutdown")
        platform.run(until=platform.sim.now + 60_000.0)
        return (
            platform.traces.outcome_counts(),
            platform.traces.shed_reasons(),
            ctrl.stats.as_dict(),
        )

    assert run_once() == run_once()
