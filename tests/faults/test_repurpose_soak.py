"""Chaos soak for inter-key repurposing under fault storms.

Marked ``chaos`` (opt in with ``--chaos`` / ``REPRO_CHAOS=1``): drives a
seeded workload of same-base (repurposable) functions through a cluster
while a randomized :class:`~repro.faults.FaultPlan` kills boots, pooled
containers and whole hosts, and asserts on top of the usual soak
invariants that no donor container is ever double-claimed — the
repurpose path yields a re-spec timeout between claiming a donor and
handing it out, and a host-failover drain racing that window must never
let a second request walk off with the same container.
"""

import numpy as np
import pytest

from repro.containers import Registry, derive_image, make_base_image
from repro.core import HotCConfig, KeyPolicy, PoolLimits, make_cluster_platform
from repro.faas import FunctionSpec
from repro.faults import FaultPlan
from repro.sim.rng import derive_seed

SEEDS = [1, 2, 3, 4, 5]
DURATION_MS = 60_000.0
N_REQUESTS = 250

PY_BASE = make_base_image("python", "3.6", size_mb=330, language="python")
NODE_BASE = make_base_image("node", "10", size_mb=290, language="node")


def build_registry_and_functions():
    """Six functions over two shared bases, each with its own image.

    Distinct derived images mean exact and relaxed keys never match
    across functions — every warm reuse between functions must go
    through the repurpose path.
    """
    images, specs = [PY_BASE, NODE_BASE], []
    for index in range(6):
        base = PY_BASE if index % 2 == 0 else NODE_BASE
        image = derive_image(
            base, name=f"app/fn-{index}", tag="1", extra_mb=10.0 + 2.0 * index
        )
        images.append(image)
        specs.append(
            FunctionSpec(
                name=f"fn-{index}",
                image=image.reference,
                language=base.language,
                exec_ms=80.0,
            )
        )
    return Registry(images), specs


def hotc_config():
    # prewarm off: the controller's scale-down otherwise pins every
    # key's pool at exactly its forecast need, leaving no donation
    # headroom — this soak wants idle donors to accumulate so the
    # repurpose claim window actually races the fault storm.  The
    # control loop still runs: its observations drive the donor veto.
    return HotCConfig(
        control_interval_ms=1_000.0,
        limits=PoolLimits(max_containers=12),
        boot_timeout_ms=5_000.0,
        breaker_cooldown_ms=3_000.0,
        fallback_key_policy=KeyPolicy.RELAXED,
        prewarm=False,
        repurpose=True,
    )


def submit_workload(platform, seed, functions):
    """Phase-shifted demand: popularity moves between same-base functions.

    The first third hammers one function per base; demand then shifts
    to the *other* functions of each base, so the decaying forecasts of
    the phase-1 keys free their now-idle containers for donation — the
    exact over-provisioning the repurpose path is meant to harvest.
    """
    rng = np.random.default_rng(derive_seed(seed, "repurpose-chaos"))
    phase1 = functions[:2]
    phase2 = functions[2:]
    t = 0.0
    for index in range(N_REQUESTS):
        t += float(rng.exponential(DURATION_MS / N_REQUESTS))
        if t < DURATION_MS / 3:
            pool = phase1
        elif t < 2 * DURATION_MS / 3:
            pool = phase2
        else:
            pool = functions
        name = pool[int(rng.integers(len(pool)))]
        platform.submit(name, delay=t)
    return t


def wrap_claim_tracking(hosts):
    """Track every container handed out by any host's pool.

    A container is *claimed* when ``acquire``/``acquire_donor`` returns
    it and unclaimed when it re-enters pool bookkeeping (release,
    re-registration after a donor adoption, removal, or a dead
    discard).  Claiming an already-claimed container is the
    double-claim bug the donor re-spec window could introduce.
    """
    claimed = {}

    def claim(container, how, host_name):
        cid = container.container_id
        assert cid not in claimed, (
            f"container {cid} double-claimed via {how} on {host_name}; "
            f"outstanding claim: {claimed[cid]}"
        )
        claimed[cid] = (how, host_name)

    for host in hosts:
        pool = host.pool
        name = host.engine.name

        def acquire(key, now, _orig=pool.acquire, _name=name):
            container = _orig(key, now=now)
            if container is not None:
                claim(container, "acquire", _name)
            return container

        def acquire_donor(key, now, reuse, _orig=pool.acquire_donor, _name=name):
            container = _orig(key, now=now, reuse=reuse)
            if container is not None:
                claim(container, f"acquire_donor:{reuse}", _name)
            return container

        def release(container, now, _orig=pool.release):
            claimed.pop(container.container_id, None)
            return _orig(container, now=now)

        def register(container, key, now, available=False, _orig=pool.register):
            claimed.pop(container.container_id, None)
            return _orig(container, key, now=now, available=available)

        def remove(container, _orig=pool.remove):
            claimed.pop(container.container_id, None)
            return _orig(container)

        def discard_dead(container, reuse="hit", _orig=pool.discard_dead):
            claimed.pop(container.container_id, None)
            return _orig(container, reuse=reuse)

        pool.acquire = acquire
        pool.acquire_donor = acquire_donor
        pool.release = release
        pool.register = register
        pool.remove = remove
        pool.discard_dead = discard_dead
    return claimed


def spawn_invariant_monitor(platform, hosts, interval_ms=500.0, provider=None):
    def monitor():
        while True:
            yield platform.sim.timeout(interval_ms)
            if provider is not None:
                provider.check_consistency()
            for host in hosts:
                host.pool.check_consistency()
                cap = host.config.limits.max_containers
                live = host.pool.total_live
                pending = host._pending_total()
                assert live + pending <= cap, (
                    f"{host.engine.name}: {live} live + {pending} pending "
                    f"boots exceeds cap {cap} at t={platform.sim.now}"
                )

    platform.sim.process(monitor(), name="invariant-monitor")


def assert_quiescent(platform, hosts):
    for host in hosts:
        host.pool.check_consistency()
        assert all(v == 0 for v in host._busy.values()), (
            f"{host.engine.name}: busy leak {host._busy}"
        )
        assert host._pending_boots == {}, (
            f"{host.engine.name}: pending-boot leak {host._pending_boots}"
        )
    assert platform.traces.all_terminal()


def drain_and_shutdown(platform, cluster):
    cluster.stop_control_loops()
    platform.run(until=platform.sim.now + 120_000.0)
    platform.sim.process(cluster.shutdown())
    platform.run(until=platform.sim.now + 60_000.0)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
class TestRepurposeChaos:
    def test_soak(self, seed, chaos_report):
        registry, specs = build_registry_and_functions()
        platform = make_cluster_platform(
            registry,
            n_hosts=3,
            seed=seed,
            hotc_config=hotc_config(),
        )
        for spec in specs:
            platform.deploy(spec)
        cluster = platform.provider
        claimed = wrap_claim_tracking(cluster.hosts)
        spawn_invariant_monitor(platform, cluster.hosts, provider=cluster)

        plan = FaultPlan.random(
            seed=seed,
            duration_ms=DURATION_MS,
            hosts=tuple(h.engine.name for h in cluster.hosts),
            pool_deaths=4,
            outages=2,
        )
        plan.install(platform.sim, [h.engine for h in cluster.hosts])
        cluster.start_control_loops()

        last = submit_workload(platform, seed, [s.name for s in specs])
        platform.run(until=last + 30_000.0)
        drain_and_shutdown(platform, cluster)

        assert len(platform.traces) == N_REQUESTS
        assert_quiescent(platform, cluster.hosts)
        cluster.check_consistency()
        assert sum(cluster._inflight.values()) == 0
        assert cluster._by_container == {}
        assert claimed == {}, f"claims leaked past shutdown: {claimed}"
        assert plan.stats.total > 0, "the storm injected nothing"
        repurposed = sum(h.pool.stats.repurposed for h in cluster.hosts)
        relaxed = sum(h.pool.stats.relaxed_hits for h in cluster.hosts)
        assert repurposed > 0, "the repurpose path never engaged"
        # The counters the drain race could corrupt stayed sane.
        for host in cluster.hosts:
            stats = host.pool.stats
            assert stats.repurposed >= 0
            assert stats.relaxed_hits >= 0
            assert stats.hits >= 0
        chaos_report(
            seed=seed,
            plan=plan,
            platform=platform,
            repurposed=repurposed,
            relaxed_hits=relaxed,
            hosts_lost=cluster.stats.hosts_lost,
            failovers=cluster.stats.failovers,
        )

    def test_soak_reproducible(self, seed):
        """Same seed, same storm: reuse counters must match exactly."""

        def run_once():
            registry, specs = build_registry_and_functions()
            platform = make_cluster_platform(
                registry,
                n_hosts=3,
                seed=seed,
                hotc_config=hotc_config(),
            )
            for spec in specs:
                platform.deploy(spec)
            cluster = platform.provider
            plan = FaultPlan.random(
                seed=seed,
                duration_ms=DURATION_MS,
                hosts=tuple(h.engine.name for h in cluster.hosts),
                pool_deaths=4,
                outages=2,
            )
            plan.install(platform.sim, [h.engine for h in cluster.hosts])
            cluster.start_control_loops()
            last = submit_workload(platform, seed, [s.name for s in specs])
            platform.run(until=last + 30_000.0)
            drain_and_shutdown(platform, cluster)
            return (
                plan.stats.as_dict(),
                platform.traces.outcome_counts(),
                tuple(
                    (h.pool.stats.repurposed, h.pool.stats.relaxed_hits)
                    for h in cluster.hosts
                ),
            )

        assert run_once() == run_once()
