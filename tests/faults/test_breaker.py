"""Circuit breaker state machine: closed -> open -> half-open -> closed."""

import pytest

from repro.core import CircuitBreaker


class TestClosed:
    def test_allows_by_default(self):
        breaker = CircuitBreaker(threshold=3, cooldown_ms=1_000)
        assert breaker.allow(0.0)
        assert not breaker.is_open(0.0)

    def test_failures_below_threshold_stay_closed(self):
        breaker = CircuitBreaker(threshold=3, cooldown_ms=1_000)
        assert breaker.record_failure(0.0) is False
        assert breaker.record_failure(1.0) is False
        assert breaker.allow(2.0)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown_ms=1_000)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        # Still one failure away from the threshold.
        assert breaker.allow(2.0)
        assert not breaker.is_open(2.0)


class TestOpen:
    def test_threshold_opens_and_reports_transition(self):
        breaker = CircuitBreaker(threshold=2, cooldown_ms=1_000)
        assert breaker.record_failure(0.0) is False
        assert breaker.record_failure(1.0) is True  # the opening failure
        assert not breaker.allow(500.0)
        assert breaker.is_open(500.0)

    def test_cooldown_elapses_into_half_open(self):
        breaker = CircuitBreaker(threshold=1, cooldown_ms=1_000)
        breaker.record_failure(0.0)
        assert not breaker.allow(999.0)
        assert breaker.allow(1_000.0)  # the half-open probe

    def test_disabled_breaker_never_opens(self):
        breaker = CircuitBreaker(threshold=0, cooldown_ms=1_000)
        for _ in range(10):
            assert breaker.record_failure(0.0) is False
        assert breaker.allow(0.0)
        assert not breaker.is_open(0.0)

    def test_rejects_nonpositive_cooldown(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=1, cooldown_ms=0)


class TestHalfOpen:
    def test_single_probe_slot(self):
        breaker = CircuitBreaker(threshold=1, cooldown_ms=1_000)
        breaker.record_failure(0.0)
        assert breaker.allow(1_500.0)  # claims the probe
        assert not breaker.allow(1_500.0)  # second caller refused

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown_ms=1_000)
        breaker.record_failure(0.0)
        assert breaker.allow(1_500.0)
        breaker.record_success()
        assert breaker.allow(1_500.0)
        assert breaker.allow(1_500.0)  # fully closed: no probe limit

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown_ms=1_000)
        breaker.record_failure(0.0)
        assert breaker.allow(1_500.0)
        assert breaker.record_failure(1_500.0) is True  # re-opened
        assert not breaker.allow(2_000.0)  # fresh cooldown from t=1500
        assert breaker.allow(2_500.0)

    def test_is_open_does_not_consume_the_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown_ms=1_000)
        breaker.record_failure(0.0)
        # The non-mutating check (prewarm path) must not claim the slot.
        assert not breaker.is_open(1_500.0)
        assert breaker.allow(1_500.0)
