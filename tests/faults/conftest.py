"""Shared fixtures for fault-injection tests."""

import json
import os

import pytest

from repro.containers import Registry, make_base_image
from repro.faas import FunctionSpec


@pytest.fixture
def chaos_report(request):
    """Append one JSONL record per soak when ``REPRO_CHAOS_REPORT`` is
    set to a file path (CI uploads the file as a workflow artifact).

    Usage: ``chaos_report(seed=seed, plan=plan, platform=platform)``.
    A no-op when the environment variable is unset, so local runs write
    nothing.
    """
    path = os.environ.get("REPRO_CHAOS_REPORT", "")

    def write(seed, plan, platform, **extra):
        if not path:
            return
        record = {
            "test": request.node.nodeid,
            "seed": seed,
            "injected": plan.stats.as_dict(),
            "outcomes": platform.traces.outcome_counts(),
            "requests": len(platform.traces),
            "retries": platform.traces.retry_total(),
        }
        record.update(extra)
        with open(path, "a", encoding="utf-8") as fp:
            fp.write(json.dumps(record, sort_keys=True) + "\n")

    return write


@pytest.fixture
def registry():
    return Registry(
        [
            make_base_image("python", "3.6", size_mb=330, language="python"),
            make_base_image("golang", "1.11", size_mb=310, language="go"),
        ]
    )


@pytest.fixture
def fn_python():
    return FunctionSpec(name="py-fn", image="python:3.6", exec_ms=20.0)


@pytest.fixture
def fn_go():
    return FunctionSpec(name="go-fn", image="golang:1.11", language="go", exec_ms=20.0)
