"""Container-degradation fault kinds: leak, poison, decay, crash loop.

Engine-level unit tests for the four aging afflictions (MEMORY_LEAK,
STATE_POISON, PERF_DECAY, CRASH_LOOP): the scripted injector hooks, the
boot-time lottery, the per-exec effects, and the bit-identity guarantee
that all-zero degradation rates consume no RNG and change nothing.
"""

import numpy as np
import pytest

from repro.containers import (
    ContainerConfig,
    ContainerEngine,
    ContainerState,
    ExecSpec,
    Registry,
    make_base_image,
)
from repro.faults import (
    ExecCrash,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ScheduledFault,
    StatePoisonError,
)
from repro.hardware import T430_SERVER
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def engine(sim):
    registry = Registry(
        [make_base_image("python", "3.6", size_mb=330, language="python")]
    )
    engine = ContainerEngine(sim, registry, profile=T430_SERVER, rng=None)
    engine.attach_fault_injector(FaultInjector())
    return engine


def run_process(sim, generator):
    proc = sim.process(generator)
    sim.run()
    if not proc.ok:
        raise proc.value
    return proc.value


def boot(sim, engine):
    return run_process(
        sim, engine.boot_container(ContainerConfig(image="python:3.6"))
    )


def execute(sim, engine, container, exec_ms=20.0):
    return run_process(
        sim,
        engine.execute(
            container, ExecSpec(app_id="fn", exec_ms=exec_ms, language="python")
        ),
    )


class TestSpecValidation:
    def test_degradation_rates_are_probabilities(self):
        for field in (
            "memory_leak_rate",
            "state_poison_rate",
            "perf_decay_rate",
            "crash_loop_rate",
        ):
            with pytest.raises(ValueError):
                FaultSpec(**{field: 1.01})

    def test_magnitude_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(memory_leak_mb=0.0)
        with pytest.raises(ValueError):
            FaultSpec(perf_decay_factor=1.0)
        with pytest.raises(ValueError):
            FaultSpec(crash_loop_after=0)

    def test_degradation_rates_break_is_zero(self):
        assert FaultSpec().is_zero
        assert not FaultSpec(memory_leak_rate=0.1).is_zero
        assert not FaultSpec(state_poison_rate=0.1).is_zero
        assert not FaultSpec(perf_decay_rate=0.1).is_zero
        assert not FaultSpec(crash_loop_rate=0.1).is_zero

    def test_degradation_kinds_not_schedulable(self):
        for kind in (
            FaultKind.MEMORY_LEAK,
            FaultKind.STATE_POISON,
            FaultKind.PERF_DECAY,
            FaultKind.CRASH_LOOP,
        ):
            with pytest.raises(ValueError):
                ScheduledFault(at_ms=0.0, kind=kind)

    def test_plan_random_threads_degradation_params(self):
        plan = FaultPlan.random(
            seed=1,
            duration_ms=60_000,
            memory_leak_rate=0.2,
            memory_leak_mb=16.0,
            state_poison_rate=0.01,
            perf_decay_rate=0.05,
            perf_decay_factor=1.07,
            crash_loop_rate=0.02,
            crash_loop_after=3,
        )
        assert plan.spec.memory_leak_rate == 0.2
        assert plan.spec.memory_leak_mb == 16.0
        assert plan.spec.state_poison_rate == 0.01
        assert plan.spec.perf_decay_rate == 0.05
        assert plan.spec.perf_decay_factor == 1.07
        assert plan.spec.crash_loop_rate == 0.02
        assert plan.spec.crash_loop_after == 3

    def test_plan_random_defaults_keep_degradation_off(self):
        plan = FaultPlan.random(seed=1, duration_ms=60_000)
        assert plan.spec.memory_leak_rate == 0.0
        assert plan.spec.state_poison_rate == 0.0
        assert plan.spec.perf_decay_rate == 0.0
        assert plan.spec.crash_loop_rate == 0.0


class TestZeroRateBitIdentity:
    def test_zero_rates_consume_no_rng(self):
        """The boot lottery and poison draw must not touch the RNG
        stream when every degradation rate is zero — otherwise adding
        the feature would shift every existing seeded run."""
        injector = FaultInjector(spec=FaultSpec(), rng=np.random.default_rng(7))
        before = injector.rng.bit_generator.state

        class FakeContainer:
            leak_slope_mb = 0.0
            decay_factor = 1.0
            crash_loop_after = None

        injector.assign_degradation(FakeContainer())
        assert not injector.exec_poison()
        assert injector.rng.bit_generator.state == before

    def test_nonzero_rates_do_draw(self):
        injector = FaultInjector(
            spec=FaultSpec(memory_leak_rate=0.5),
            rng=np.random.default_rng(7),
        )
        before = injector.rng.bit_generator.state

        class FakeContainer:
            leak_slope_mb = 0.0
            decay_factor = 1.0
            crash_loop_after = None

        injector.assign_degradation(FakeContainer())
        assert injector.rng.bit_generator.state != before


class TestScriptedHooks:
    def test_leak_next_boots_afflicts_container(self, sim, engine):
        engine.fault_injector.leak_next_boots(12.0)
        leaky = boot(sim, engine)
        clean = boot(sim, engine)
        assert leaky.leak_slope_mb == 12.0
        assert clean.leak_slope_mb == 0.0
        assert engine.fault_injector.stats.memory_leaks == 1

    def test_decay_next_boots_afflicts_container(self, sim, engine):
        engine.fault_injector.decay_next_boots(1.5)
        decayed = boot(sim, engine)
        assert decayed.decay_factor == 1.5
        assert engine.fault_injector.stats.perf_decays == 1

    def test_crashloop_next_boots_afflicts_container(self, sim, engine):
        engine.fault_injector.crashloop_next_boots(after=2)
        looping = boot(sim, engine)
        assert looping.crash_loop_after == 2
        assert engine.fault_injector.stats.crash_loops == 1

    def test_forced_hooks_skip_probabilistic_draw(self):
        """A forced leak must not also burn that kind's RNG draw."""
        injector = FaultInjector(
            spec=FaultSpec(memory_leak_rate=0.5),
            rng=np.random.default_rng(7),
        )
        injector.leak_next_boots(4.0)
        before = injector.rng.bit_generator.state

        class FakeContainer:
            leak_slope_mb = 0.0
            decay_factor = 1.0
            crash_loop_after = None

        container = FakeContainer()
        injector.assign_degradation(container)
        assert container.leak_slope_mb == 4.0
        assert injector.rng.bit_generator.state == before


class TestMemoryLeak:
    def test_rss_grows_per_exec(self, sim, engine):
        engine.fault_injector.leak_next_boots(8.0)
        container = boot(sim, engine)
        assert container.rss_mb == 0.0
        for expected in (8.0, 16.0, 24.0):
            execute(sim, engine, container)
            assert container.rss_mb == expected

    def test_clean_container_stays_flat(self, sim, engine):
        container = boot(sim, engine)
        execute(sim, engine, container)
        execute(sim, engine, container)
        assert container.rss_mb == 0.0


class TestStatePoison:
    def test_poisoned_exec_fails_before_lifecycle(self, sim, engine):
        engine.fault_injector.poison_next_execs(1)
        container = boot(sim, engine)
        execute(sim, engine, container)  # succeeds, leaves dirt behind
        assert container.poisoned
        with pytest.raises(StatePoisonError):
            execute(sim, engine, container)
        # The refusal happens before the EXECUTING transition, so the
        # container stays RUNNING and a watchdog can discard it cleanly.
        assert container.state is ContainerState.RUNNING
        assert engine.stats.poison_failures == 1
        assert engine.fault_injector.stats.state_poisons == 1

    def test_poison_repeats_until_discarded(self, sim, engine):
        engine.fault_injector.poison_next_execs(1)
        container = boot(sim, engine)
        execute(sim, engine, container)
        for _ in range(3):
            with pytest.raises(StatePoisonError):
                execute(sim, engine, container)
        assert engine.stats.poison_failures == 3


class TestPerfDecay:
    def test_exec_time_compounds_per_reuse(self, sim, engine):
        engine.fault_injector.decay_next_boots(2.0)
        container = boot(sim, engine)
        observed = []
        for _ in range(3):
            execute(sim, engine, container, exec_ms=100.0)
            observed.append(container.last_exec_ms)
        # factor ** exec_count: each reuse doubles the exec time
        # (whatever constant language overhead the latency model adds).
        assert observed[1] == pytest.approx(2.0 * observed[0])
        assert observed[2] == pytest.approx(2.0 * observed[1])

    def test_healthy_container_does_not_decay(self, sim, engine):
        container = boot(sim, engine)
        execute(sim, engine, container, exec_ms=100.0)
        first = container.last_exec_ms
        execute(sim, engine, container, exec_ms=100.0)
        assert container.last_exec_ms == first


class TestCrashLoop:
    def test_crashes_past_trigger_and_destroys(self, sim, engine):
        engine.fault_injector.crashloop_next_boots(after=2)
        container = boot(sim, engine)
        execute(sim, engine, container)
        execute(sim, engine, container)
        assert container.exec_count == 2
        with pytest.raises(ExecCrash):
            execute(sim, engine, container)
        assert container.state is ContainerState.REMOVED
        assert engine.stats.exec_crashes == 1
        assert engine.live_count == 0

    def test_crash_lands_mid_exec(self, sim, engine):
        engine.fault_injector.crashloop_next_boots(after=0)
        container = boot(sim, engine)
        start = sim.now
        with pytest.raises(ExecCrash):
            execute(sim, engine, container, exec_ms=100.0)
        # Half the exec ran before the crash — time advanced, but by
        # less than a full successful execution would have taken.
        assert sim.now > start
