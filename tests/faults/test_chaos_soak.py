"""Chaos soak: randomized fault storms must never corrupt bookkeeping.

Marked ``chaos`` (opt in with ``--chaos`` / ``REPRO_CHAOS=1``): each run
drives a seeded Poisson workload through a platform while a randomized
:class:`~repro.faults.FaultPlan` kills boots, executions, pooled
containers and whole hosts, then asserts the global invariants:

* no demand-accounting (``_busy``) or pending-boot leak,
* ``total_live`` never exceeds ``max_containers`` (+ in-flight boots),
* pool counters always match ground truth (``check_consistency``),
* no dead container is ever handed to a request,
* every request trace reaches a terminal outcome.
"""

import numpy as np
import pytest

from repro.core import HotC, HotCConfig, PoolLimits, make_cluster_platform
from repro.faas import FaasPlatform
from repro.faults import FaultPlan
from repro.sim.rng import derive_seed

SEEDS = [1, 2, 3, 4, 5]
DURATION_MS = 60_000.0


def hotc_config():
    return HotCConfig(
        control_interval_ms=1_000.0,
        limits=PoolLimits(max_containers=12),
        boot_timeout_ms=5_000.0,
        breaker_cooldown_ms=3_000.0,
    )


def submit_workload(platform, seed, functions, n_requests=250):
    rng = np.random.default_rng(derive_seed(seed, "chaos-workload"))
    t = 0.0
    for _ in range(n_requests):
        t += float(rng.exponential(DURATION_MS / n_requests))
        name = functions[int(rng.integers(len(functions)))]
        platform.submit(name, delay=t)
    return t


def wrap_acquire_with_liveness_check(provider):
    """Fail loudly if acquire ever returns a non-reusable container."""
    original = provider.acquire

    def checked(config):
        container, cold = yield from original(config)
        assert container.is_reusable, (
            f"dead container handed out: {container.container_id} "
            f"in state {container.state}"
        )
        return container, cold

    provider.acquire = checked


def spawn_invariant_monitor(platform, hosts, interval_ms=500.0, provider=None):
    """Sample pool invariants on every host throughout the run."""

    def monitor():
        while True:
            yield platform.sim.timeout(interval_ms)
            if provider is not None:
                provider.check_consistency()
            for host in hosts:
                host.pool.check_consistency()
                cap = host.config.limits.max_containers
                live = host.pool.total_live
                pending = host._pending_total()
                assert live + pending <= cap, (
                    f"{host.engine.name}: {live} live + {pending} pending "
                    f"boots exceeds cap {cap} at t={platform.sim.now}"
                )

    platform.sim.process(monitor(), name="invariant-monitor")


def assert_quiescent(platform, hosts, provider=None):
    """End-of-run invariants once every request has settled."""
    if provider is not None:
        provider.check_consistency()
    for host in hosts:
        host.pool.check_consistency()
        assert all(v == 0 for v in host._busy.values()), (
            f"{host.engine.name}: busy leak {host._busy}"
        )
        assert host._pending_boots == {}, (
            f"{host.engine.name}: pending-boot leak {host._pending_boots}"
        )
    assert platform.traces.all_terminal()


def drain_and_shutdown(platform, provider, stop_loops):
    stop_loops()
    # Let in-flight requests, retries and absorbed boots settle.
    platform.run(until=platform.sim.now + 120_000.0)
    platform.sim.process(provider.shutdown())
    platform.run(until=platform.sim.now + 60_000.0)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
class TestSingleHostChaos:
    def test_soak(self, registry, fn_python, fn_go, seed, chaos_report):
        platform = FaasPlatform(
            registry,
            seed=seed,
            provider_factory=lambda e: HotC(e, hotc_config()),
        )
        for fn in (fn_python, fn_go):
            platform.deploy(fn.with_overrides(exec_ms=80.0))
        provider = platform.provider
        wrap_acquire_with_liveness_check(provider)
        spawn_invariant_monitor(platform, [provider], provider=provider)

        plan = FaultPlan.random(
            seed=seed, duration_ms=DURATION_MS, hosts=("host-0",)
        )
        plan.install(platform.sim, [platform.engine])
        provider.start_control_loop()

        last = submit_workload(platform, seed, [fn_python.name, fn_go.name])
        platform.run(until=last + 30_000.0)
        drain_and_shutdown(
            platform, provider, provider.stop_control_loop
        )

        assert len(platform.traces) == 250
        assert_quiescent(platform, [provider], provider=provider)
        assert platform.engine.live_count == 0
        assert plan.stats.total > 0, "the storm injected nothing"
        # Recovery machinery actually engaged.
        stats = platform.engine.stats
        assert stats.boot_retries + stats.request_retries > 0
        chaos_report(
            seed=seed,
            plan=plan,
            platform=platform,
            boots=stats.boots,
            kills=stats.kills,
        )

    def test_soak_reproducible(self, registry, fn_python, fn_go, seed):
        """Same seed, same storm: outcome counters must match exactly."""

        def run_once():
            platform = FaasPlatform(
                registry,
                seed=seed,
                provider_factory=lambda e: HotC(e, hotc_config()),
            )
            for fn in (fn_python, fn_go):
                platform.deploy(fn.with_overrides(exec_ms=80.0))
            plan = FaultPlan.random(
                seed=seed, duration_ms=DURATION_MS, hosts=("host-0",)
            )
            plan.install(platform.sim, [platform.engine])
            platform.provider.start_control_loop()
            last = submit_workload(
                platform, seed, [fn_python.name, fn_go.name]
            )
            platform.run(until=last + 30_000.0)
            drain_and_shutdown(
                platform,
                platform.provider,
                platform.provider.stop_control_loop,
            )
            return (
                plan.stats.as_dict(),
                platform.traces.outcome_counts(),
                platform.engine.stats.boots,
                platform.engine.stats.kills,
            )

        assert run_once() == run_once()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
class TestClusterChaos:
    def test_soak(self, registry, fn_python, fn_go, seed, chaos_report):
        platform = make_cluster_platform(
            registry,
            n_hosts=3,
            seed=seed,
            hotc_config=hotc_config(),
        )
        for fn in (fn_python, fn_go):
            platform.deploy(fn.with_overrides(exec_ms=80.0))
        cluster = platform.provider
        wrap_acquire_with_liveness_check(cluster)
        spawn_invariant_monitor(platform, cluster.hosts, provider=cluster)

        plan = FaultPlan.random(
            seed=seed,
            duration_ms=DURATION_MS,
            hosts=tuple(h.engine.name for h in cluster.hosts),
            pool_deaths=4,
            outages=2,
        )
        plan.install(platform.sim, [h.engine for h in cluster.hosts])
        cluster.start_control_loops()

        last = submit_workload(platform, seed, [fn_python.name, fn_go.name])
        platform.run(until=last + 30_000.0)
        drain_and_shutdown(
            platform, cluster, cluster.stop_control_loops
        )

        assert len(platform.traces) == 250
        assert_quiescent(platform, cluster.hosts, provider=cluster)
        assert sum(cluster._inflight.values()) == 0
        assert cluster._by_container == {}
        for host in cluster.hosts:
            assert host.engine.live_count == 0
        if cluster.stats.hosts_lost:
            assert cluster.stats.failovers >= 1
        chaos_report(
            seed=seed,
            plan=plan,
            platform=platform,
            hosts_lost=cluster.stats.hosts_lost,
            failovers=cluster.stats.failovers,
        )
