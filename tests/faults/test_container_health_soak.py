"""Container-health soak: degradation storms under the recycle loop.

Marked ``chaos`` (opt in with ``--chaos`` / ``REPRO_CHAOS=1``): five
seeded runs drive a Poisson workload through HotC with the container
health plane enabled while every boot rolls the degradation lottery
(leaks, poison, decay, crash loops) on top of a regular fault storm.
Invariants asserted throughout:

* a condemned container never serves again — its exec count is frozen
  at the moment of the verdict,
* acquire never hands out a SUSPECT or QUARANTINED container,
* recycles obey the token bucket: every window of the recycle-time
  series stays under ``burst + rate * window``,
* pool bookkeeping stays consistent (``check_consistency`` sampled
  mid-run and at quiescence, including the quarantine set).
"""

import numpy as np
import pytest

from repro.core import HotC, HotCConfig, PoolLimits
from repro.faas import FaasPlatform
from repro.faults import FaultPlan
from repro.health import ContainerHealthConfig
from repro.sim.rng import derive_seed

SEEDS = [1, 2, 3, 4, 5]
DURATION_MS = 60_000.0
RECYCLE_RATE_PER_S = 2.0
RECYCLE_BURST = 3


def hotc_config():
    return HotCConfig(
        control_interval_ms=1_000.0,
        limits=PoolLimits(max_containers=12),
        boot_timeout_ms=5_000.0,
        breaker_cooldown_ms=3_000.0,
        container_health=ContainerHealthConfig(
            max_reuses=10,
            max_age_ms=45_000.0,
            leak_slope_mb=6.0,
            rss_limit_mb=128.0,
            recycle_rate_per_s=RECYCLE_RATE_PER_S,
            recycle_burst=RECYCLE_BURST,
        ),
    )


def degradation_plan(seed, hosts=("host-0",)):
    return FaultPlan.random(
        seed=seed,
        duration_ms=DURATION_MS,
        hosts=hosts,
        memory_leak_rate=0.25,
        memory_leak_mb=16.0,
        state_poison_rate=0.02,
        perf_decay_rate=0.1,
        perf_decay_factor=1.08,
        crash_loop_rate=0.05,
        crash_loop_after=4,
    )


def submit_workload(platform, seed, functions, n_requests=250):
    rng = np.random.default_rng(derive_seed(seed, "health-workload"))
    t = 0.0
    for _ in range(n_requests):
        t += float(rng.exponential(DURATION_MS / n_requests))
        name = functions[int(rng.integers(len(functions)))]
        platform.submit(name, delay=t)
    return t


def wrap_acquire_with_health_check(provider):
    """Acquire must never hand out a tainted or condemned container."""
    original = provider.acquire

    def checked(config):
        container, cold = yield from original(config)
        assert container.is_reusable, (
            f"dead container handed out: {container.container_id}"
        )
        assert not container.tainted, (
            f"SUSPECT container handed out: {container.container_id}"
        )
        assert not container.condemned, (
            f"QUARANTINED container handed out: {container.container_id}"
        )
        return container, cold

    provider.acquire = checked


def instrument_plane(provider):
    """Record condemnation freezes and recycle timestamps."""
    plane = provider.container_health
    condemned_at = {}
    recycle_times = []

    original_condemn = plane.condemn

    def condemn(container, record, now, reason):
        condemned_at.setdefault(
            container.container_id, (container, container.exec_count)
        )
        original_condemn(container, record, now, reason)

    plane.condemn = condemn

    original_recycling = plane.note_recycling

    def note_recycling(container, now, reason):
        recycle_times.append(now)
        original_recycling(container, now, reason)

    plane.note_recycling = note_recycling
    return condemned_at, recycle_times


def assert_condemned_never_served_again(condemned_at):
    for cid, (container, frozen) in condemned_at.items():
        assert container.exec_count == frozen, (
            f"{cid}: served {container.exec_count - frozen} request(s) "
            "after being condemned"
        )


def assert_token_bucket_respected(recycle_times):
    """Every window of the series stays under burst + rate * window."""
    for i, start in enumerate(recycle_times):
        for j in range(i, len(recycle_times)):
            window_ms = recycle_times[j] - start
            count = j - i + 1
            budget = RECYCLE_BURST + RECYCLE_RATE_PER_S * window_ms / 1000.0
            assert count <= budget + 1e-9, (
                f"{count} recycles in {window_ms:.0f} ms exceeds the "
                f"token bucket budget {budget:.2f}"
            )


def spawn_invariant_monitor(platform, provider, interval_ms=500.0):
    def monitor():
        while True:
            yield platform.sim.timeout(interval_ms)
            provider.check_consistency()
            cap = provider.config.limits.max_containers
            live = provider.pool.total_live
            pending = provider._pending_total()
            assert live + pending <= cap, (
                f"{live} live + {pending} pending exceeds cap {cap} "
                f"at t={platform.sim.now}"
            )

    platform.sim.process(monitor(), name="invariant-monitor")


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
class TestContainerHealthSoak:
    def test_soak(self, registry, fn_python, fn_go, seed, chaos_report):
        platform = FaasPlatform(
            registry,
            seed=seed,
            provider_factory=lambda e: HotC(e, hotc_config()),
        )
        for fn in (fn_python, fn_go):
            platform.deploy(fn.with_overrides(exec_ms=80.0))
        provider = platform.provider
        wrap_acquire_with_health_check(provider)
        condemned_at, recycle_times = instrument_plane(provider)
        spawn_invariant_monitor(platform, provider)

        plan = degradation_plan(seed)
        plan.install(platform.sim, [platform.engine])
        provider.start_control_loop()

        last = submit_workload(platform, seed, [fn_python.name, fn_go.name])
        platform.run(until=last + 30_000.0)
        provider.stop_control_loop()
        platform.run(until=platform.sim.now + 120_000.0)

        # Token-bucket accounting only holds before the shutdown flush
        # (shutdown drains the queue unconditionally by design).
        pre_shutdown_recycles = list(recycle_times)
        platform.sim.process(provider.shutdown())
        platform.run(until=platform.sim.now + 60_000.0)

        assert len(platform.traces) == 250
        assert platform.traces.all_terminal()
        provider.check_consistency()
        assert all(v == 0 for v in provider._busy.values())
        assert provider._recycle_queue == []
        assert platform.engine.live_count == 0

        # The storm actually exercised the degradation kinds...
        stats = plan.stats
        assert (
            stats.memory_leaks
            + stats.state_poisons
            + stats.perf_decays
            + stats.crash_loops
            > 0
        ), "the lottery afflicted nothing"
        # ...and the plane answered.
        plane = provider.container_health
        assert plane.quarantines > 0
        assert plane.recycles > 0

        assert_condemned_never_served_again(condemned_at)
        assert_token_bucket_respected(pre_shutdown_recycles)

        chaos_report(
            seed=seed,
            plan=plan,
            platform=platform,
            suspects=plane.suspects,
            quarantines=plane.quarantines,
            recycles=plane.recycles,
            recycled=provider.pool.stats.recycled,
            condemned=len(condemned_at),
        )

    def test_soak_reproducible(self, registry, fn_python, fn_go, seed):
        """Same seed, same storm, same verdicts — bit-for-bit."""

        def run_once():
            platform = FaasPlatform(
                registry,
                seed=seed,
                provider_factory=lambda e: HotC(e, hotc_config()),
            )
            for fn in (fn_python, fn_go):
                platform.deploy(fn.with_overrides(exec_ms=80.0))
            plan = degradation_plan(seed)
            plan.install(platform.sim, [platform.engine])
            provider = platform.provider
            provider.start_control_loop()
            last = submit_workload(
                platform, seed, [fn_python.name, fn_go.name]
            )
            platform.run(until=last + 30_000.0)
            provider.stop_control_loop()
            platform.run(until=platform.sim.now + 120_000.0)
            platform.sim.process(provider.shutdown())
            platform.run(until=platform.sim.now + 60_000.0)
            plane = provider.container_health
            return (
                plan.stats.as_dict(),
                platform.traces.outcome_counts(),
                plane.suspects,
                plane.quarantines,
                plane.recycles,
                provider.pool.stats.recycled,
            )

        assert run_once() == run_once()
