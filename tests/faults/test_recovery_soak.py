"""Recovery soak: controller crashes mid-storm must conserve requests.

Marked ``chaos`` (opt in with ``--chaos`` / ``REPRO_CHAOS=1``): a
3-host cluster with admission, health monitoring and crash/recovery all
attached rides out a storm that mixes the classic fault kinds with the
gray-failure ones (slowdowns, partitions, heartbeat loss) and at least
three control-plane crashes.  After the dust settles:

* **conservation** — every submitted request reaches exactly one
  terminal outcome (shed + done + missed + failed == submitted),
* **no leaked busy slots** — demand accounting and the cluster's
  in-flight routing map drain to zero,
* **no double-claimed containers** — a lease wrapper asserts no
  container is ever handed to two requests at once, across crashes,
* **reconciliation closed** — every recovery's post-verify sweep found
  nothing it could not repair (``manager.unrepaired == []``).
"""

import numpy as np
import pytest

from repro.admission import AdmissionConfig, AdmissionController, AIMDConfig
from repro.core import HotCConfig, PoolLimits, make_cluster_platform
from repro.faults import FaultPlan
from repro.health import HealthMonitor
from repro.recovery import RecoveryConfig, RecoveryManager
from repro.sim.rng import derive_seed

SEEDS = [1, 2, 3, 4, 5]
DURATION_MS = 60_000.0
N_REQUESTS = 250
CRASHES = 3


def hotc_config():
    return HotCConfig(
        control_interval_ms=1_000.0,
        limits=PoolLimits(max_containers=12),
        boot_timeout_ms=5_000.0,
        breaker_cooldown_ms=3_000.0,
    )


def admission_config():
    return AdmissionConfig(
        max_queue_depth=32,
        aimd=AIMDConfig(initial_limit=8.0, max_limit=32.0),
        default_deadline_ms=45_000.0,
    )


def fault_plan(seed, hosts):
    return FaultPlan.random(
        seed=seed,
        duration_ms=DURATION_MS,
        hosts=hosts,
        pool_deaths=4,
        outages=1,
        gray_slowdowns=2,
        partitions=1,
        heartbeat_losses=2,
        controller_crashes=CRASHES,
    )


def submit_workload(platform, seed, functions):
    rng = np.random.default_rng(derive_seed(seed, "recovery-workload"))
    t = 0.0
    for _ in range(N_REQUESTS):
        t += float(rng.exponential(DURATION_MS / N_REQUESTS))
        name = functions[int(rng.integers(len(functions)))]
        platform.submit(name, delay=t)
    return t


def wrap_with_lease_tracker(cluster):
    """Assert no container is ever claimed by two requests at once."""
    outstanding = set()
    original_acquire = cluster.acquire
    original_release = cluster.release
    original_discard = cluster.discard

    def acquire(config):
        container, cold = yield from original_acquire(config)
        cid = container.container_id
        assert cid not in outstanding, f"double-claimed {cid}"
        outstanding.add(cid)
        return container, cold

    def release(container):
        outstanding.discard(container.container_id)
        return original_release(container)

    def discard(container):
        outstanding.discard(container.container_id)
        return original_discard(container)

    cluster.acquire = acquire
    cluster.release = release
    cluster.discard = discard
    return outstanding


def build(registry, fn_python, fn_go, seed):
    platform = make_cluster_platform(
        registry, n_hosts=3, seed=seed, hotc_config=hotc_config()
    )
    for fn in (fn_python, fn_go):
        platform.deploy(fn.with_overrides(exec_ms=80.0))
    cluster = platform.provider
    platform.attach_admission(AdmissionController(admission_config()))
    monitor = HealthMonitor(platform.sim)
    cluster.attach_health(monitor)
    manager = RecoveryManager(
        cluster, RecoveryConfig(checkpoint_every_ticks=3)
    )
    return platform, cluster, monitor, manager


def run_storm(platform, cluster, monitor, manager, seed, functions):
    plan = fault_plan(seed, tuple(h.engine.name for h in cluster.hosts))
    plan.install(
        platform.sim, [h.engine for h in cluster.hosts], recovery=manager
    )
    monitor.start()
    cluster.start_control_loops()
    last = submit_workload(platform, seed, functions)
    platform.run(until=max(last, DURATION_MS) + 30_000.0)
    cluster.stop_control_loops()
    monitor.stop()
    platform.run(until=platform.sim.now + 120_000.0)
    platform.sim.process(cluster.shutdown())
    platform.run(until=platform.sim.now + 60_000.0)
    return plan


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
class TestRecoverySoak:
    def test_soak(self, registry, fn_python, fn_go, seed, chaos_report):
        platform, cluster, monitor, manager = build(
            registry, fn_python, fn_go, seed
        )
        outstanding = wrap_with_lease_tracker(cluster)
        plan = run_storm(
            platform,
            cluster,
            monitor,
            manager,
            seed,
            [fn_python.name, fn_go.name],
        )

        # Conservation: every request reached exactly one terminal state.
        assert len(platform.traces) == N_REQUESTS
        assert platform.traces.all_terminal()
        outcomes = platform.traces.outcome_counts()
        assert sum(outcomes.values()) == N_REQUESTS

        # The storm really crashed the controller and it came back.
        assert plan.stats.controller_crashes >= CRASHES
        assert manager.stats.crashes == plan.stats.controller_crashes
        assert manager.stats.recoveries == manager.stats.crashes
        assert manager.stats.checkpoints_taken >= 1
        assert not manager.crashed

        # Reconciliation closed every divergence it found.
        assert manager.unrepaired == []

        # No leaked busy slots or dangling routing state.
        assert outstanding == set()
        assert sum(cluster._inflight.values()) == 0
        assert cluster._by_container == {}
        for host in cluster.hosts:
            assert all(v == 0 for v in host._busy.values()), (
                f"{host.engine.name}: busy leak {host._busy}"
            )
            assert host._pending_boots == {}, (
                f"{host.engine.name}: pending-boot leak"
            )
        cluster.check_consistency()

        chaos_report(
            seed=seed,
            plan=plan,
            platform=platform,
            crashes=manager.stats.crashes,
            recoveries=manager.stats.recoveries,
            repairs=manager.stats.repairs,
            phantoms=manager.stats.phantoms_purged,
            checkpoints=manager.stats.checkpoints_taken,
        )

    def test_soak_reproducible(self, registry, fn_python, fn_go, seed):
        """Same seed, same storm, same recoveries — bit for bit."""

        def run_once():
            platform, cluster, monitor, manager = build(
                registry, fn_python, fn_go, seed
            )
            plan = run_storm(
                platform,
                cluster,
                monitor,
                manager,
                seed,
                [fn_python.name, fn_go.name],
            )
            return (
                plan.stats.as_dict(),
                platform.traces.outcome_counts(),
                manager.stats.crashes,
                manager.stats.repairs,
                tuple(manager.store.versions()),
            )

        assert run_once() == run_once()
