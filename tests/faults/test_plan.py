"""FaultPlan: seeded reproducibility and scheduled-fault execution."""

import pytest

from repro.core import HotC, HotCConfig
from repro.faas import FaasPlatform
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    ScheduledFault,
)


class TestSpecValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultSpec(boot_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(exec_crash_rate=-0.1)

    def test_zero_spec_is_zero(self):
        assert FaultSpec().is_zero
        assert not FaultSpec(boot_failure_rate=0.1).is_zero

    def test_scheduled_kind_restricted(self):
        with pytest.raises(ValueError):
            ScheduledFault(at_ms=0.0, kind=FaultKind.BOOT_FAILURE)
        with pytest.raises(ValueError):
            ScheduledFault(at_ms=0.0, kind=FaultKind.HOST_OUTAGE)  # no duration


class TestReproducibility:
    def test_same_seed_same_schedule(self):
        a = FaultPlan.random(seed=42, duration_ms=60_000, hosts=("h0", "h1"))
        b = FaultPlan.random(seed=42, duration_ms=60_000, hosts=("h0", "h1"))
        assert a.scheduled == b.scheduled

    def test_different_seed_different_schedule(self):
        a = FaultPlan.random(seed=1, duration_ms=60_000)
        b = FaultPlan.random(seed=2, duration_ms=60_000)
        assert a.scheduled != b.scheduled

    def test_schedule_sorted_by_time(self):
        plan = FaultPlan.random(seed=3, duration_ms=60_000, pool_deaths=5)
        times = [f.at_ms for f in plan.scheduled]
        assert times == sorted(times)

    def test_injector_draws_reproducible(self, registry, fn_python):
        def run_once():
            platform = FaasPlatform(
                registry, seed=5, jitter_sigma=0.0, provider_factory=HotC
            )
            platform.deploy(fn_python)
            plan = FaultPlan(
                seed=9, spec=FaultSpec(boot_failure_rate=0.5)
            )
            plan.install(platform.sim, [platform.engine])
            for i in range(20):
                platform.submit(fn_python.name, delay=i * 500.0)
            platform.run(until=60_000)
            return (
                plan.stats.as_dict(),
                platform.traces.outcome_counts(),
                platform.engine.stats.boots,
            )

        assert run_once() == run_once()


class TestZeroPlanIdentity:
    def test_zero_plan_changes_nothing(self, registry, fn_python):
        """An installed all-zero plan must be invisible: bit-identical
        traces and zero RNG draws compared to no injector at all."""

        def run(with_plan):
            platform = FaasPlatform(
                registry, seed=11, provider_factory=HotC
            )
            platform.deploy(fn_python)
            if with_plan:
                plan = FaultPlan.none()
                plan.install(platform.sim, [platform.engine])
            for i in range(10):
                platform.submit(fn_python.name, delay=i * 300.0)
            platform.run(until=30_000)
            return [
                (t.total_latency, t.cold_start, t.container_id)
                for t in platform.traces
            ]

        assert run(True) == run(False)


class TestScheduledFaults:
    def _platform(self, registry, fn_python):
        platform = FaasPlatform(
            registry,
            seed=0,
            jitter_sigma=0.0,
            provider_factory=lambda e: HotC(
                e, HotCConfig(control_interval_ms=0)
            ),
        )
        platform.deploy(fn_python)
        return platform

    def test_pool_death_kills_idle_container(self, registry, fn_python):
        platform = self._platform(registry, fn_python)
        platform.submit(fn_python.name)
        platform.run()
        assert platform.engine.live_count == 1
        plan = FaultPlan(
            seed=0,
            scheduled=(
                ScheduledFault(
                    at_ms=platform.sim.now + 100.0,
                    kind=FaultKind.POOL_DEATH,
                    host="host-0",
                ),
            ),
        )
        plan.install(platform.sim, [platform.engine])
        platform.run()
        assert platform.engine.live_count == 0
        assert plan.stats.pool_deaths == 1

    def test_outage_window_fails_boots_then_recovers(self, registry, fn_python):
        platform = self._platform(registry, fn_python)
        plan = FaultPlan(
            seed=0,
            scheduled=(
                ScheduledFault(
                    at_ms=1_000.0,
                    kind=FaultKind.HOST_OUTAGE,
                    host="host-0",
                    duration_ms=5_000.0,
                ),
            ),
        )
        injectors = plan.install(platform.sim, [platform.engine])
        platform.run(until=2_000.0)
        assert injectors["host-0"].host_is_down()
        assert platform.engine.is_down
        platform.run(until=7_000.0)
        assert not injectors["host-0"].host_is_down()
        # The host serves requests again after the outage.
        platform.submit(fn_python.name)
        platform.run(until=60_000.0)
        assert platform.traces.failed_count() == 0
        assert len(platform.traces) == 1
